"""Call tracing: one event per ocall, including host handler duration.

The tracer hooks an enclave at two points:

- it wraps the untrusted runtime's ``execute`` to time the *host handler*
  in isolation (what the SDK guidance calls the call's "duration");
- it registers as the enclave's completion hook to capture end-to-end
  latency and the execution mode the backend chose.

Installation is reversible and does not perturb the simulation: tracing
adds no simulated cycles (a real tracer would; sgx-perf reports ~2-5%
overhead, which could be modelled by passing ``probe_cycles``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest


@dataclass(frozen=True)
class CallEvent:
    """One completed ocall."""

    name: str
    issued_at_cycles: float
    completed_at_cycles: float
    host_cycles: float
    mode: str
    in_bytes: int
    out_bytes: int

    @property
    def latency_cycles(self) -> float:
        """End-to-end latency of this call, in cycles."""
        return self.completed_at_cycles - self.issued_at_cycles


@dataclass
class CallTracer:
    """Records every ocall completing on one enclave.

    Args:
        max_events: Ring-buffer bound; the oldest events are dropped once
            exceeded (0 means unbounded).
        probe_cycles: Simulated tracing overhead charged per call on the
            host side (0 by default — an ideal tracer).
    """

    max_events: int = 0
    probe_cycles: float = 0.0
    events: list[CallEvent] = field(default_factory=list)
    dropped: int = 0
    _enclave: "Enclave | None" = None
    _original_execute: object = None
    _host_cycles_by_request: dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, enclave: "Enclave") -> "CallTracer":
        """Attach to ``enclave``; returns self for chaining."""
        if self._enclave is not None:
            raise RuntimeError("tracer already installed")
        self._enclave = enclave
        urts = enclave.urts
        original = urts.execute
        self._original_execute = original
        tracer = self

        def traced_execute(request: "OcallRequest") -> Program:
            from repro.sim.instructions import Compute

            start = enclave.kernel.now
            if tracer.probe_cycles:
                yield Compute(tracer.probe_cycles, tag="tracer-probe")
            result = yield from original(request)
            tracer._host_cycles_by_request[id(request)] = enclave.kernel.now - start
            return result

        urts.execute = traced_execute  # type: ignore[method-assign]
        enclave.completion_hooks.append(self._on_complete)
        return self

    def uninstall(self) -> None:
        """Detach, restoring the enclave's original execute path."""
        if self._enclave is None:
            return
        self._enclave.urts.execute = self._original_execute  # type: ignore[method-assign]
        self._enclave.completion_hooks.remove(self._on_complete)
        self._enclave = None

    # ------------------------------------------------------------------
    # Hook
    # ------------------------------------------------------------------
    def _on_complete(self, request: "OcallRequest", completed_at: float) -> None:
        host_cycles = self._host_cycles_by_request.pop(id(request), 0.0)
        event = CallEvent(
            name=request.name,
            issued_at_cycles=request.issued_at,
            completed_at_cycles=completed_at,
            host_cycles=host_cycles,
            mode=request.mode,
            in_bytes=request.in_bytes,
            out_bytes=request.out_bytes,
        )
        self.events.append(event)
        if self.max_events and len(self.events) > self.max_events:
            self.events.pop(0)
            self.dropped += 1

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of recorded entries."""
        return len(self.events)

    def events_for(self, name: str) -> list[CallEvent]:
        """Recorded events for the named ocall."""
        return [e for e in self.events if e.name == name]

    def window_cycles(self) -> float:
        """Span from the first issue to the last completion."""
        if not self.events:
            return 0.0
        start = min(e.issued_at_cycles for e in self.events)
        end = max(e.completed_at_cycles for e in self.events)
        return end - start
