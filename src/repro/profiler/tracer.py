"""Call tracing: one event per ocall, including host handler duration.

The tracer hooks an enclave at two points:

- it wraps the untrusted runtime's ``execute`` to time the *host handler*
  in isolation (what the SDK guidance calls the call's "duration");
- it registers as the enclave's completion hook to capture end-to-end
  latency and the execution mode the backend chose.

Installation is reversible and does not perturb the simulation: tracing
adds no simulated cycles (a real tracer would; sgx-perf reports ~2-5%
overhead, which could be modelled by passing ``probe_cycles``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, NamedTuple

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest


class CallEvent(NamedTuple):
    """One completed ocall.

    A ``NamedTuple`` for cheap bulk construction: the tracer records raw
    ``(request, completed_at)`` pairs on the hot path and materializes
    ``CallEvent`` objects lazily when :attr:`CallTracer.events` is read.
    """

    name: str
    issued_at_cycles: float
    completed_at_cycles: float
    host_cycles: float
    mode: str
    in_bytes: int
    out_bytes: int

    @property
    def latency_cycles(self) -> float:
        """End-to-end latency of this call, in cycles."""
        return self.completed_at_cycles - self.issued_at_cycles


@dataclass
class CallTracer:
    """Records every ocall completing on one enclave.

    Args:
        max_events: Ring-buffer bound; the oldest events are dropped once
            exceeded (0 means unbounded).
        probe_cycles: Simulated tracing overhead charged per call on the
            host side (0 by default — an ideal tracer).
    """

    max_events: int = 0
    probe_cycles: float = 0.0
    dropped: int = 0
    _enclave: "Enclave | None" = None
    _original_execute: object = None
    #: CallEvent-shaped plain tuples not yet wrapped as CallEvents.
    _pending: list = field(default_factory=list)
    _events: list[CallEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, enclave: "Enclave") -> "CallTracer":
        """Attach to ``enclave``; returns self for chaining."""
        if self._enclave is not None:
            raise RuntimeError("tracer already installed")
        self._enclave = enclave
        urts = enclave.urts
        original = urts.execute
        self._original_execute = original
        tracer = self

        kernel = enclave.kernel
        probe_cycles = self.probe_cycles

        if probe_cycles:

            def traced_execute(request: "OcallRequest") -> Program:
                start = kernel.now
                yield Compute(probe_cycles, tag="tracer-probe")
                result = yield from original(request)
                request.host_cycles = kernel.now - start
                return result

            urts.execute = traced_execute  # type: ignore[method-assign]
        else:
            # The common case avoids a wrapper generator entirely: a
            # delegating wrapper costs one extra frame traversal per
            # instruction the handler yields.
            urts.execute = partial(urts.execute_timed, kernel=kernel)  # type: ignore[method-assign]
        enclave.completion_hooks.append(self._on_complete)
        return self

    def uninstall(self) -> None:
        """Detach, restoring the enclave's original execute path."""
        if self._enclave is None:
            return
        self._enclave.urts.execute = self._original_execute  # type: ignore[method-assign]
        self._enclave.completion_hooks.remove(self._on_complete)
        self._enclave = None

    # ------------------------------------------------------------------
    # Hook
    # ------------------------------------------------------------------
    def _on_complete(self, request: "OcallRequest", completed_at: float) -> None:
        # Hot path: one per ocall.  Record a CallEvent-shaped plain tuple:
        # cheaper to build than the NamedTuple (wrapped lazily by the
        # events property), and it retains only scalars — holding the
        # request itself alive until finalize would feed every completed
        # call's object graph to the garbage collector.
        pending = self._pending
        pending.append(
            (
                request.name,
                request.issued_at,
                completed_at,
                request.host_cycles,
                request.mode,
                request.in_bytes,
                request.out_bytes,
            )
        )
        if self.max_events and len(pending) + len(self._events) > self.max_events:
            if self._events:
                self._events.pop(0)
            else:
                pending.pop(0)
            self.dropped += 1

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[CallEvent]:
        """The recorded events, materializing any deferred entries."""
        pending = self._pending
        if pending:
            self._events.extend(map(CallEvent._make, pending))
            pending.clear()
        return self._events

    @property
    def count(self) -> int:
        """Number of recorded entries."""
        return len(self._pending) + len(self._events)

    def latency_samples(self) -> list[float]:
        """End-to-end latency (cycles) per call, without materializing."""
        return [e.latency_cycles for e in self._events] + [
            entry[2] - entry[1] for entry in self._pending
        ]

    def host_samples(self) -> list[float]:
        """Host-handler duration (cycles) per call, without materializing."""
        return [e.host_cycles for e in self._events] + [entry[3] for entry in self._pending]

    def events_for(self, name: str) -> list[CallEvent]:
        """Recorded events for the named ocall."""
        return [e for e in self.events if e.name == name]

    def window_cycles(self) -> float:
        """Span from the first issue to the last completion."""
        if not self.events:
            return 0.0
        start = min(e.issued_at_cycles for e in self.events)
        end = max(e.completed_at_cycles for e in self.events)
        return end - start
