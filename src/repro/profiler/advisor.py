"""Switchless-configuration advice from measured profiles.

Implements the Intel SDK guidance the paper quotes (§III-A): configure a
routine as switchless if it is *short* in duration and *frequently
called*.  The advisor quantifies both via the tracing profile and
estimates the cycles a switchless execution would save per call — the
transition cost minus the switchless handshake — weighted by the call
rate, so recommendations are ranked by expected benefit.

This is exactly the judgement an SGX developer is asked to make at build
time from intuition; the paper's point is that zc makes it unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.profiler.profile import CallProfile
from repro.sgx.costmodel import SgxCostModel


@dataclass(frozen=True)
class Recommendation:
    """One advisory verdict for an ocall site."""

    name: str
    switchless: bool
    reason: str
    estimated_saving_cycles_per_s: float


class SwitchlessAdvisor:
    """Turns profiles into a static switchless configuration.

    Args:
        cost: Transition cost model used for the benefit estimate.
        short_call_factor: A call is "short" if its mean host duration is
            below ``short_call_factor * T_es``.
        min_rate_per_s: A call is "frequent" above this rate.
    """

    def __init__(
        self,
        cost: SgxCostModel | None = None,
        short_call_factor: float = 1.0,
        min_rate_per_s: float = 1_000.0,
    ) -> None:
        if short_call_factor <= 0:
            raise ValueError("short_call_factor must be positive")
        if min_rate_per_s < 0:
            raise ValueError("min_rate_per_s must be >= 0")
        self.cost = cost if cost is not None else SgxCostModel()
        self.short_call_factor = short_call_factor
        self.min_rate_per_s = min_rate_per_s

    def _per_call_saving(self) -> float:
        """Cycles saved by one switchless execution vs a transition."""
        handshake = (
            self.cost.switchless_enqueue_cycles
            + self.cost.worker_pickup_cycles
            + self.cost.worker_complete_cycles
        )
        return max(self.cost.t_es - handshake, 0.0)

    def advise(self, profiles: dict[str, CallProfile]) -> list[Recommendation]:
        """One recommendation per profiled ocall, best savings first."""
        recommendations = []
        threshold = self.short_call_factor * self.cost.t_es
        saving = self._per_call_saving()
        for profile in profiles.values():
            short = profile.mean_host_cycles < threshold
            frequent = profile.rate_per_s >= self.min_rate_per_s
            if short and frequent:
                recommendations.append(
                    Recommendation(
                        name=profile.name,
                        switchless=True,
                        reason=(
                            f"short ({profile.mean_host_cycles:.0f} < "
                            f"{threshold:.0f} cycles) and frequent "
                            f"({profile.rate_per_s:.0f}/s)"
                        ),
                        estimated_saving_cycles_per_s=saving * profile.rate_per_s,
                    )
                )
            else:
                why = []
                if not short:
                    why.append(
                        f"long ({profile.mean_host_cycles:.0f} >= {threshold:.0f} cycles)"
                    )
                if not frequent:
                    why.append(
                        f"infrequent ({profile.rate_per_s:.0f}/s < "
                        f"{self.min_rate_per_s:.0f}/s)"
                    )
                recommendations.append(
                    Recommendation(
                        name=profile.name,
                        switchless=False,
                        reason=" and ".join(why),
                        estimated_saving_cycles_per_s=0.0,
                    )
                )
        recommendations.sort(key=lambda r: -r.estimated_saving_cycles_per_s)
        return recommendations

    def switchless_set(self, profiles: dict[str, CallProfile]) -> frozenset[str]:
        """The static EDL configuration the advisor would generate."""
        return frozenset(
            r.name for r in self.advise(profiles) if r.switchless
        )


def format_recommendations(recommendations: list[Recommendation]) -> str:
    """Text report of advisor recommendations."""
    rows = [
        [
            r.name,
            "switchless" if r.switchless else "regular",
            r.estimated_saving_cycles_per_s / 1e6,
            r.reason,
        ]
        for r in recommendations
    ]
    return format_table(
        ["ocall", "verdict", "saving_Mcyc/s", "reason"],
        rows,
        title="switchless configuration advice",
        precision=1,
    )
