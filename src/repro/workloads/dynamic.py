"""The §V-C dynamic (3-phase) paced workload driver.

Every ``τ`` the driver issues a batch of operations; the batch size is
doubled each period during the *increasing* phase, held at the peak during
the *constant* phase, and halved each period during the *decreasing*
phase.  A thread that finishes its batch early sleeps out the period; a
saturated thread stops its batch at the period boundary, so its *achieved*
ops fall short of the offered load — the achieved throughput is what the
figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.metrics import PeriodResult
from repro.sim.instructions import Sleep
from repro.sim.kernel import Kernel, Program


@dataclass(frozen=True)
class DynamicSpec:
    """Shape of the 3-phase load (the paper: τ=0.5 s, 3 phases of 20 s).

    Attributes:
        tau_seconds: Period length.
        periods_per_phase: Periods in each of the three phases.
        base_ops: Batch size of the first period.
        peak_ops: Cap on the batch size (the phase-1 doubling saturates
            here; the paper's phase 2 holds "the peak value from phase 1").
    """

    tau_seconds: float = 0.5
    periods_per_phase: int = 40
    base_ops: int = 64
    peak_ops: int = 65_536

    def __post_init__(self) -> None:
        if self.tau_seconds <= 0:
            raise ValueError("tau_seconds must be positive")
        if self.periods_per_phase < 1:
            raise ValueError("periods_per_phase must be >= 1")
        if self.base_ops < 1:
            raise ValueError("base_ops must be >= 1")
        if self.peak_ops < self.base_ops:
            raise ValueError("peak_ops must be >= base_ops")


def build_schedule(spec: DynamicSpec) -> list[int]:
    """Target ops per period across the three phases."""
    increasing: list[int] = []
    ops = spec.base_ops
    for _ in range(spec.periods_per_phase):
        increasing.append(ops)
        ops = min(ops * 2, spec.peak_ops)
    peak = increasing[-1]
    constant = [peak] * spec.periods_per_phase
    decreasing: list[int] = []
    ops = peak
    for _ in range(spec.periods_per_phase):
        decreasing.append(ops)
        ops = max(ops // 2, spec.base_ops)
    return increasing + constant + decreasing


def paced_thread(
    kernel: Kernel,
    op_factory: Callable[[], Program],
    schedule: list[int],
    tau_cycles: float,
    results: list[PeriodResult],
) -> Program:
    """Simulated program issuing up to ``schedule[i]`` ops in period ``i``.

    Appends one :class:`PeriodResult` per period to ``results``.  When the
    op rate cannot sustain the target, the batch is cut off at the period
    boundary (completed < target).
    """
    for target in schedule:
        period_start = kernel.now
        period_end = period_start + tau_cycles
        completed = 0
        while completed < target and kernel.now < period_end:
            yield from op_factory()
            completed += 1
        duration = max(kernel.now - period_start, 1.0)
        results.append(
            PeriodResult(
                t_end_cycles=kernel.now,
                target_ops=target,
                completed_ops=completed,
                duration_cycles=duration,
            )
        )
        if kernel.now < period_end:
            yield Sleep(period_end - kernel.now)
    return len(results)
