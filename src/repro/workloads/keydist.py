"""Key-distribution generators for key/value workloads.

The paper's kissdb benchmark writes sequential keys; real KV workloads
are skewed.  These seeded generators provide the standard YCSB-style
distributions so the kissdb benchmarks can exercise hot-key behaviour
(which changes the collision profile and therefore the ocall mix):

- :class:`UniformKeys` — uniform over the keyspace;
- :class:`ZipfKeys` — Zipf(s) via an inverse-CDF table (a small keyspace
  is expected; the table is O(n));
- :class:`SequentialKeys` — the paper's original pattern.

All generators are deterministic per seed and yield fixed-width
big-endian byte keys suitable for :class:`repro.apps.kissdb.KissDB`.
"""

from __future__ import annotations

import bisect
import itertools
import random


class SequentialKeys:
    """0, 1, 2, ... as fixed-width keys (the paper's SET pattern)."""

    def __init__(self, key_size: int = 8) -> None:
        if key_size < 1:
            raise ValueError("key_size must be >= 1")
        self.key_size = key_size
        self._counter = itertools.count()

    def next_key(self) -> bytes:
        """The next key from this distribution, as fixed-width bytes."""
        return next(self._counter).to_bytes(self.key_size, "big")


class UniformKeys:
    """Uniformly random keys over ``[0, keyspace)``."""

    def __init__(self, keyspace: int, seed: int = 0, key_size: int = 8) -> None:
        if keyspace < 1:
            raise ValueError("keyspace must be >= 1")
        if key_size < 1:
            raise ValueError("key_size must be >= 1")
        self.keyspace = keyspace
        self.key_size = key_size
        self._rng = random.Random(seed)

    def next_key(self) -> bytes:
        """The next key from this distribution, as fixed-width bytes."""
        return self._rng.randrange(self.keyspace).to_bytes(self.key_size, "big")


class ZipfKeys:
    """Zipf-distributed keys: rank ``k`` has probability ∝ 1/k^s.

    Args:
        keyspace: Number of distinct keys (ranks 1..keyspace).
        s: Skew exponent; YCSB's default hot-spot workloads use ~0.99.
        seed: RNG seed (determinism).
        key_size: Byte width of emitted keys.
    """

    def __init__(
        self, keyspace: int, s: float = 0.99, seed: int = 0, key_size: int = 8
    ) -> None:
        if keyspace < 1:
            raise ValueError("keyspace must be >= 1")
        if s < 0:
            raise ValueError("s must be >= 0")
        if key_size < 1:
            raise ValueError("key_size must be >= 1")
        self.keyspace = keyspace
        self.s = s
        self.key_size = key_size
        self._rng = random.Random(seed)
        weights = [1.0 / (rank**s) for rank in range(1, keyspace + 1)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float drift

    def next_rank(self) -> int:
        """Sample a 0-based key rank (0 is the hottest)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def next_key(self) -> bytes:
        """The next key from this distribution, as fixed-width bytes."""
        return self.next_rank().to_bytes(self.key_size, "big")

    def hot_fraction(self, top_k: int) -> float:
        """Probability mass on the ``top_k`` hottest keys (analytic)."""
        if not 1 <= top_k <= self.keyspace:
            raise ValueError("top_k must be in [1, keyspace]")
        return self._cdf[top_k - 1]
