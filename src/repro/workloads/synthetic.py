"""The §III synthetic f/g ocall benchmark.

``n`` ocalls are issued by 8 in-enclave threads: a fraction α/n to ``f``
(an empty function — the canonical switchless-friendly call) and β/n to
``g`` (a busy-wait of ``asm("pause")`` instructions — a *long* call).
The paper sets α = 3β.

Because the Intel SDK selects switchless routines by *name*, the "half of
the f calls switchless" configuration C3 is expressed by issuing calls
under two aliases per function (``f``/``f2``, ``g``/``g2``) that share one
host handler; a configuration is then just the set of switchless names:

====  ==========================  =================================
name  switchless set              meaning (paper §III-A)
====  ==========================  =================================
C1    f, f2                       all f switchless, g regular
C2    g, g2                       all g switchless, f regular
C3    f, g                        half of f and half of g switchless
C4    f, f2, g, g2                everything switchless
C5    (empty)                     everything regular
====  ==========================  =================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import SwitchlessConfig, make_backend
from repro.hostos.procstat import ProcStat
from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, paper_machine
from repro.sim.kernel import Program
from repro.faults import FaultInjector, active_fault_plan
from repro.telemetry.session import active_session

SYNTHETIC_CONFIGS: dict[str, frozenset[str]] = {
    "C1": frozenset({"f", "f2"}),
    "C2": frozenset({"g", "g2"}),
    "C3": frozenset({"f", "g"}),
    "C4": frozenset({"f", "f2", "g", "g2"}),
    "C5": frozenset(),
}


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the synthetic benchmark.

    Attributes:
        total_calls: Total ocalls (paper: 100,000).
        f_fraction: Fraction going to ``f`` (paper: α = 3β, i.e. 0.75).
        g_pauses: Duration of ``g`` in pause instructions (Fig. 3 sweeps
            0..500; Fig. 2 uses 500).
        n_threads: In-enclave caller threads (paper: 8).
        f_host_cycles: Host cost of the empty function (call glue only).
    """

    total_calls: int = 100_000
    f_fraction: float = 0.75
    g_pauses: int = 500
    n_threads: int = 8
    f_host_cycles: float = 50.0

    def __post_init__(self) -> None:
        if self.total_calls < 1:
            raise ValueError("total_calls must be >= 1")
        if not 0 <= self.f_fraction <= 1:
            raise ValueError("f_fraction must be in [0, 1]")
        if self.g_pauses < 0:
            raise ValueError("g_pauses must be >= 0")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")


@dataclass(frozen=True)
class SyntheticResult:
    """Outcome of one synthetic-benchmark run."""

    config: str
    workers: int
    elapsed_seconds: float
    cpu_usage_pct: float
    switchless_calls: int
    fallback_calls: int
    regular_calls: int


def _call_plan(spec: SyntheticSpec, thread_index: int) -> list[str]:
    """The deterministic per-thread call sequence.

    Calls follow a repeating f,f,f,g pattern (α = 3β); successive calls to
    the same function alternate between the two aliases so that C3 runs
    exactly half of each function switchlessly.
    """
    per_thread = spec.total_calls // spec.n_threads
    if thread_index < spec.total_calls % spec.n_threads:
        per_thread += 1
    f_period = round(1 / (1 - spec.f_fraction)) if spec.f_fraction < 1 else 0
    plan: list[str] = []
    f_count = g_count = 0
    for i in range(per_thread):
        is_g = f_period and (i % f_period == f_period - 1)
        if is_g:
            plan.append("g" if g_count % 2 == 0 else "g2")
            g_count += 1
        else:
            plan.append("f" if f_count % 2 == 0 else "f2")
            f_count += 1
    return plan


def run_synthetic(
    config: str,
    workers: int,
    spec: SyntheticSpec | None = None,
    machine: MachineSpec | None = None,
    cost: SgxCostModel | None = None,
) -> SyntheticResult:
    """Run one configuration cell of Fig. 2 / Fig. 3.

    ``config`` is one of the paper's static Intel configurations C1–C5,
    or the extension modes ``"zc"`` (ZC-SWITCHLESS decides at runtime;
    ``workers`` is ignored) and ``"no_sl"``.
    """
    if config not in SYNTHETIC_CONFIGS and config not in ("zc", "no_sl"):
        raise ValueError(f"unknown config {config!r}; pick C1..C5, 'zc' or 'no_sl'")
    spec = spec if spec is not None else SyntheticSpec()
    machine = machine if machine is not None else paper_machine()
    cost = cost if cost is not None else SgxCostModel()

    kernel = Kernel(machine)
    session = active_session()
    capture = (
        session.attach(kernel, label=f"{config}-w{workers}")
        if session is not None
        else None
    )
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts, cost=cost)
    g_cycles = spec.g_pauses * cost.pause_cycles

    def f_handler() -> Program:
        yield Compute(spec.f_host_cycles, tag="host-f")
        return None

    def g_handler() -> Program:
        yield Compute(g_cycles, tag="host-g")
        return None

    urts.register_many({"f": f_handler, "f2": f_handler, "g": g_handler, "g2": g_handler})
    if config == "zc":
        backend = make_backend("zc")
    elif config == "no_sl":
        backend = enclave.backend  # the default RegularBackend
    else:
        backend = make_backend(
            "intel",
            SwitchlessConfig(
                switchless_ocalls=SYNTHETIC_CONFIGS[config], num_uworkers=workers
            ),
        )
    enclave.set_backend(backend)
    if capture is not None:
        capture.bind_enclave(enclave)
    plan = active_fault_plan()
    faults = FaultInjector(plan).attach(kernel, enclave) if plan is not None else None

    def caller(thread_index: int) -> Program:
        for name in _call_plan(spec, thread_index):
            yield from enclave.ocall(name)

    stat = ProcStat(kernel)
    start_sample = stat.sample()
    threads = [
        kernel.spawn(caller(i), name=f"enclave-{i}", kind="app")
        for i in range(spec.n_threads)
    ]
    kernel.join(*threads)
    end_sample = stat.sample()
    elapsed = kernel.seconds(kernel.now)
    usage = stat.usage_between(start_sample, end_sample).usage_pct
    if faults is not None:
        # Before stop(): cancels not-yet-fired fault/respawn timers so
        # teardown never advances time to a future fault instant.
        faults.detach()
    enclave.stop_backend()
    if capture is not None:
        # After stop(): worker exit-cleanup cycles belong to the ledger.
        capture.finalize()

    stats = enclave.stats
    return SyntheticResult(
        config=config,
        workers=workers,
        elapsed_seconds=elapsed,
        cpu_usage_pct=usage,
        switchless_calls=stats.total_switchless,
        fallback_calls=stats.total_fallback,
        regular_calls=stats.total_regular,
    )
