"""Workload generators for the evaluation.

- :mod:`repro.workloads.synthetic` — the §III motivation benchmark:
  ``n`` ocalls split between an empty function ``f`` and a pause-loop
  function ``g``, issued by 8 in-enclave threads, under the C1–C5
  switchless configurations.
- :mod:`repro.workloads.dynamic` — the §V-C 3-phase (increase / constant /
  decrease) paced load driver used by the lmbench dynamic benchmark.
"""

from repro.workloads.dynamic import DynamicSpec, build_schedule, paced_thread
from repro.workloads.keydist import SequentialKeys, UniformKeys, ZipfKeys
from repro.workloads.synthetic import (
    SYNTHETIC_CONFIGS,
    SyntheticResult,
    SyntheticSpec,
    run_synthetic,
)

__all__ = [
    "DynamicSpec",
    "SYNTHETIC_CONFIGS",
    "SequentialKeys",
    "SyntheticResult",
    "SyntheticSpec",
    "UniformKeys",
    "ZipfKeys",
    "build_schedule",
    "paced_thread",
    "run_synthetic",
]
