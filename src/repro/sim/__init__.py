"""Discrete-event simulation substrate for the ZC-SWITCHLESS reproduction.

This package implements a deterministic, cycle-granularity simulator of a
multicore (SMT-capable) machine:

- :mod:`repro.sim.machine` — the hardware description (:class:`MachineSpec`).
- :mod:`repro.sim.instructions` — the instruction objects simulated threads
  yield (``Compute``, ``Spin``, ``Block``, ``Sleep``, ``YieldCPU``).
- :mod:`repro.sim.primitives` — synchronisation primitives (``Event``,
  ``Gate``) usable from simulated threads.
- :mod:`repro.sim.kernel` — the event loop, the OS-style preemptive
  scheduler, logical CPUs with an SMT sibling-speed model, and per-core
  CPU-cycle accounting.

Simulated threads are plain Python generators that yield instruction
objects; ``yield from`` composes sub-programs.  Code between two yields
executes atomically with respect to other simulated threads, which models
the atomic built-ins the paper relies on for its worker state machine.
"""

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.instructions import Block, Compute, Sleep, Spin, YieldCPU
from repro.sim.kernel import Kernel, SchedTrace, SimThread, ThreadState
from repro.sim.machine import MachineSpec, paper_machine, server_machine
from repro.sim.primitives import Event, Gate

__all__ = [
    "Block",
    "Compute",
    "DeadlockError",
    "Event",
    "Gate",
    "Kernel",
    "MachineSpec",
    "SchedTrace",
    "SimThread",
    "SimulationError",
    "Sleep",
    "Spin",
    "ThreadState",
    "YieldCPU",
    "paper_machine",
    "server_machine",
]
