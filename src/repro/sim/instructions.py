"""Instruction objects yielded by simulated threads.

A simulated thread is a generator.  Each ``yield`` hands one of these
instruction objects to the kernel, which charges CPU time, parks or
preempts the thread as appropriate, and resumes the generator with the
instruction's result:

===========  =========================  ======================
instruction  CPU while waiting          value sent back
===========  =========================  ======================
Compute      busy (occupies the core)   ``None``
Spin         busy (busy-wait loop)      ``True`` if the event
                                        fired, ``False`` on
                                        timeout
Block        none (core is released)    the event's value
Sleep        none                       ``None``
YieldCPU     none (requeued)            ``None``
===========  =========================  ======================

``Spin`` deliberately models an entire pause/retry loop as a single
instruction: the kernel charges exactly the cycles spent spinning and wakes
the spinner early when the event fires, so a 20,000-retry busy-wait costs
O(1) simulator events instead of 20,000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.primitives import Event


@dataclass
class Compute:
    """Occupy the CPU for ``cycles`` nominal cycles of work.

    Nominal cycles are scaled by the SMT model: with a busy sibling the
    wall-clock duration is ``cycles / smt_factor``.
    """

    cycles: float
    tag: str | None = None

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("Compute.cycles must be >= 0")


@dataclass
class Spin:
    """Busy-wait on ``event`` for at most ``timeout`` nominal cycles.

    The core is occupied for the whole wait (this is the pause-loop the
    paper's wasted-cycle analysis is about).  Resumes with ``True`` as soon
    as the event fires, or ``False`` after the timeout elapses.
    """

    event: "Event"
    timeout: float
    tag: str | None = None

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError("Spin.timeout must be >= 0")


@dataclass
class Block:
    """Release the CPU and sleep until ``event`` fires.

    Resumes with the value passed to ``Event.fire``.  If the event has
    already fired the thread continues immediately without releasing the
    core.
    """

    event: "Event"


@dataclass
class Sleep:
    """Release the CPU for ``cycles`` cycles (timed sleep, no busy-wait)."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("Sleep.cycles must be >= 0")


@dataclass
class YieldCPU:
    """Voluntarily move to the back of the ready queue (sched_yield)."""


Instruction = Compute | Spin | Block | Sleep | YieldCPU
