"""Timer queues for the DES kernel: calendar queue and legacy heap.

The kernel's event loop needs exactly one ordered structure: pending
timers, popped strictly by ``(when, seq)`` — simulated deadline first,
creation order as the tie-break.  Two interchangeable implementations
live here:

- :class:`CalendarQueue` (the default) — a bucketed timer wheel with an
  overflow heap.  Pushes within the wheel horizon are O(1) list appends;
  the current bucket is a small binary heap; timers beyond the horizon
  wait in an overflow heap and migrate as the wheel advances.  Runs of
  same-timestamp timers are extracted as one batch, and lazily-cancelled
  entries are compacted away once they outnumber live ones.
- :class:`TimerHeap` — the seed kernel's single binary heap with lazy
  cancellation, kept as the reference implementation: the dual-run
  equivalence suite executes the same workloads on both backends and
  asserts byte-identical simulated outcomes.

Both store ``(when, seq, Timer)`` tuples so ordering comparisons stay in
C (float, then int) instead of calling a Python ``__lt__`` — on the
meta-bench the old ``_Timer.__lt__`` was the single hottest function.

Cancellation is lazy everywhere: :meth:`Timer.cancel` flags the entry
and notifies its queue, which skips flagged entries on pop.  The
calendar queue additionally *compacts*: when cancelled entries exceed
half the stored total (and a small floor), every bucket and the overflow
heap are rebuilt live-only, so the serve router's mass cancel/re-arm
completion-timeout pattern keeps the structure O(live) instead of
accumulating one dead entry per request.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable

#: Compaction floor: below this many cancelled entries, never compact
#: (tiny queues churn more from rebuilds than from skipping).
COMPACT_MIN_CANCELLED = 256


class Timer:
    """A cancellable handle to one scheduled callback.

    The queue stores ``(when, seq, timer)`` tuples; the handle itself is
    never compared.  ``cancel()`` is lazy — the entry stays stored until
    popped or compacted away.
    """

    __slots__ = ("when", "seq", "fn", "cancelled", "_queue")

    def __init__(self, when: float, seq: int, fn: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self._queue: "TimerHeap | CalendarQueue | None" = None

    def cancel(self) -> None:
        """Cancel this timer (lazily skipped, later compacted away)."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Timer when={self.when} seq={self.seq} {state}>"


class TimerHeap:
    """The legacy backend: one binary heap, lazy cancellation only.

    Kept as the behavioural reference for the calendar queue (see the
    dual-run equivalence tests) and selectable with
    ``Kernel(..., timers="heap")``.
    """

    __slots__ = ("_heap", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Timer]] = []
        self._cancelled = 0

    def push(self, timer: Timer) -> None:
        """Store ``timer``; O(log n)."""
        timer._queue = self
        heappush(self._heap, (timer.when, timer.seq, timer))

    def pop(self) -> Timer | None:
        """Remove and return the minimum live timer, or None when empty."""
        heap = self._heap
        while heap:
            timer = heappop(heap)[2]
            if timer.cancelled:
                self._cancelled -= 1
                continue
            return timer
        return None

    def _note_cancel(self) -> None:
        self._cancelled += 1

    def stored(self) -> int:
        """Entries currently stored, including cancelled ones."""
        return len(self._heap)

    def live(self) -> int:
        """Entries that would still fire."""
        return len(self._heap) - self._cancelled

    def __len__(self) -> int:
        return self.live()

    def stats(self) -> dict[str, int]:
        """Counters for tests and the profiler."""
        return {"stored": self.stored(), "live": self.live(), "compactions": 0}


class CalendarQueue:
    """Bucketed timer wheel with an overflow heap and compaction.

    The wheel covers ``n_buckets`` consecutive buckets of
    ``bucket_cycles`` simulated cycles each, starting at the *current*
    bucket (the one being drained).  Each slot is a plain list; only the
    current slot is heap-ordered (heapified the moment the wheel advances
    into it), so pushes into future buckets are plain appends.  Timers
    beyond the horizon go to an overflow heap and migrate into the wheel
    as it advances.  Pop order is globally exact ``(when, seq)``:
    buckets partition time, the current bucket is a heap, and overflow
    entries always lie past every wheel entry.

    Same-timestamp runs: when the top of the current bucket is followed
    by more entries at the identical timestamp, the whole run is
    extracted into a batch buffer in one pass and served from there.
    Later pushes at the same timestamp carry larger ``seq`` values, so
    serving the buffer before re-reading the heap preserves exact order.
    """

    __slots__ = (
        "_width",
        "_n",
        "_buckets",
        "_cur",
        "_horizon",
        "_overflow",
        "_wheel_count",
        "_occupied",
        "_batch",
        "_batch_pos",
        "_stored",
        "_cancelled",
        "compactions",
        "migrations",
    )

    def __init__(self, bucket_cycles: float = 16_384.0, n_buckets: int = 512) -> None:
        if bucket_cycles <= 0:
            raise ValueError("bucket_cycles must be positive")
        if n_buckets < 2:
            raise ValueError("n_buckets must be >= 2")
        self._width = float(bucket_cycles)
        self._n = n_buckets
        self._buckets: list[list[tuple[float, int, Timer]]] = [
            [] for _ in range(n_buckets)
        ]
        #: Absolute index of the bucket currently being drained.
        self._cur = 0
        #: First cycle *not* covered by the wheel window.
        self._horizon = n_buckets * self._width
        self._overflow: list[tuple[float, int, Timer]] = []
        self._wheel_count = 0
        #: Min-heap of absolute indices of occupied *future* buckets —
        #: an index enters when its bucket first turns non-empty, so
        #: :meth:`_advance` jumps straight to the next occupied bucket
        #: instead of scanning empties (sparse wheels would otherwise pay
        #: an O(n_buckets) walk per advance).  Entries can go stale
        #: (bucket emptied by compaction, or already passed); _advance
        #: skips those lazily and compaction rebuilds the heap.
        self._occupied: list[int] = []
        #: Extracted same-timestamp run, served before the heap.
        self._batch: list[tuple[float, int, Timer]] = []
        self._batch_pos = 0
        self._stored = 0
        self._cancelled = 0
        self.compactions = 0
        self.migrations = 0

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    def push(self, timer: Timer) -> None:
        """Store ``timer``: O(1) within the horizon, O(log o) beyond."""
        timer._queue = self
        entry = (timer.when, timer.seq, timer)
        bucket = int(timer.when // self._width)
        if bucket <= self._cur:
            # Lands in (or before) the bucket being drained; the current
            # slot is heap-ordered, so a push behind the drain point
            # still pops in exact (when, seq) order.
            heappush(self._buckets[self._cur % self._n], entry)
            self._wheel_count += 1
        elif timer.when < self._horizon:
            slot = self._buckets[bucket % self._n]
            if not slot:
                heappush(self._occupied, bucket)
            slot.append(entry)
            self._wheel_count += 1
        else:
            heappush(self._overflow, entry)
        self._stored += 1

    def pop(self) -> Timer | None:
        """Remove and return the minimum live timer, or None when empty."""
        while True:
            # Serve the extracted same-timestamp batch first.
            pos = self._batch_pos
            batch = self._batch
            if pos < len(batch):
                self._batch_pos = pos + 1
                timer = batch[pos][2]
                self._stored -= 1
                if timer.cancelled:
                    self._cancelled -= 1
                    continue
                return timer
            if batch:
                self._batch = []
                self._batch_pos = 0
            current = self._buckets[self._cur % self._n]
            if not current and not self._advance():
                return None
            current = self._buckets[self._cur % self._n]
            entry = heappop(current)
            self._wheel_count -= 1
            timer = entry[2]
            if timer.cancelled:
                self._stored -= 1
                self._cancelled -= 1
                continue
            # Extract the rest of the same-timestamp run in one pass.
            when = entry[0]
            if current and current[0][0] == when:
                batch = self._batch
                while current and current[0][0] == when:
                    batch.append(heappop(current))
                    self._wheel_count -= 1
            self._stored -= 1
            return timer

    def _advance(self) -> bool:
        """Move ``_cur`` to the next non-empty bucket; heapify it.

        Returns False when the queue holds no wheel or overflow entries.
        Advancing migrates overflow timers that the sliding horizon now
        covers; when the wheel is empty the window *rebases* directly to
        the overflow minimum instead of scanning empty buckets.
        """
        width = self._width
        n = self._n
        buckets = self._buckets
        if self._wheel_count == 0:
            if not self._overflow:
                return False
            # Rebase the window onto the earliest overflow timer.
            self._cur = int(self._overflow[0][0] // width)
        else:
            cur = self._cur
            occupied = self._occupied
            moved = False
            while occupied:
                bucket = heappop(occupied)
                if bucket > cur and buckets[bucket % n]:
                    self._cur = bucket
                    moved = True
                    break
            if not moved:  # pragma: no cover - occupied tracks every fill
                for step in range(1, n + 1):
                    if buckets[(cur + step) % n]:
                        self._cur = cur + step
                        break
        self._horizon = (self._cur + n) * width
        self._migrate()
        current = buckets[self._cur % n]
        if not current:  # pragma: no cover - rebase always lands on one
            return self._advance()
        heapify(current)
        return True

    def _migrate(self) -> None:
        """Pull overflow entries the advanced horizon now covers."""
        overflow = self._overflow
        horizon = self._horizon
        if not overflow or overflow[0][0] >= horizon:
            return
        width = self._width
        n = self._n
        buckets = self._buckets
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            bucket = int(entry[0] // width)
            slot = buckets[bucket % n]
            if not slot and bucket > self._cur:
                heappush(self._occupied, bucket)
            slot.append(entry)
            self._wheel_count += 1
            self.migrations += 1

    # ------------------------------------------------------------------
    # Cancellation and compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > self._stored
        ):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry; rebuilds buckets in place."""
        live = 0
        cur_slot = self._cur % self._n
        occupied = []
        for index, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            kept = [entry for entry in bucket if not entry[2].cancelled]
            self._buckets[index] = kept
            live += len(kept)
            if kept and index != cur_slot:
                # Every entry of a non-current slot shares one absolute
                # bucket (the wheel window holds no modulo collisions),
                # so the first entry names the slot's index.
                occupied.append(int(kept[0][0] // self._width))
        heapify(occupied)
        self._occupied = occupied
        self._wheel_count = live
        current = self._buckets[cur_slot]
        if current:
            heapify(current)
        kept_overflow = [e for e in self._overflow if not e[2].cancelled]
        heapify(kept_overflow)
        self._overflow = kept_overflow
        kept_batch = [
            e for e in self._batch[self._batch_pos :] if not e[2].cancelled
        ]
        self._batch = kept_batch
        self._batch_pos = 0
        self._stored = live + len(kept_overflow) + len(kept_batch)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stored(self) -> int:
        """Entries currently stored, including cancelled ones."""
        return self._stored

    def live(self) -> int:
        """Entries that would still fire."""
        return self._stored - self._cancelled

    def __len__(self) -> int:
        return self.live()

    def stats(self) -> dict[str, int]:
        """Counters for tests and the profiler."""
        return {
            "stored": self._stored,
            "live": self.live(),
            "compactions": self.compactions,
            "migrations": self.migrations,
            "overflow": len(self._overflow),
        }


#: Names accepted by ``Kernel(..., timers=...)``.
TIMER_BACKENDS = ("wheel", "heap")


def make_timer_queue(
    backend: str, timeslice_cycles: float
) -> "CalendarQueue | TimerHeap":
    """Build the requested backend, sizing the wheel off the timeslice.

    The wheel window spans two scheduler quanta: slice-end timers (one
    quantum out, re-armed constantly under load) stay O(1) pushes, while
    anything farther — rare in practice — takes the overflow heap.
    """
    if backend == "heap":
        return TimerHeap()
    if backend != "wheel":
        raise ValueError(f"timers must be one of {TIMER_BACKENDS}")
    n_buckets = 512
    width = max(timeslice_cycles * 2.0 / n_buckets, 1.0)
    return CalendarQueue(bucket_cycles=width, n_buckets=n_buckets)
