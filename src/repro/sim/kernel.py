"""The discrete-event kernel: event loop, OS scheduler and CPU accounting.

The kernel advances simulated time in CPU cycles and multiplexes simulated
threads (generator coroutines) over the machine's logical CPUs:

- a global FIFO ready queue with round-robin preemption (one timeslice per
  dispatch, renewed for free when nobody else is runnable);
- an SMT model in which a logical CPU runs at full speed when its sibling
  is idle and at ``MachineSpec.smt_factor`` when the sibling is busy;
- exact busy/idle cycle accounting per core, per thread, and per activity
  kind (compute vs. spin), which is what the paper's wasted-cycle
  scheduler and the CPU-usage figures consume.

Event wake-ups are delivered through a microtask queue processed between
timer callbacks, so generator stepping never re-enters: a thread that fires
an event keeps running until its next yield, and the woken thread is
stepped afterwards at the same simulated timestamp.

Raw-speed design (see docs/performance.md for the measured profile):

- **Timers** live in a pluggable queue (:mod:`repro.sim.timerqueue`).
  The default is a calendar queue — O(1) pushes within a two-timeslice
  horizon, overflow heap beyond it, same-timestamp batch extraction and
  lazy-cancel compaction.  ``Kernel(..., timers="heap")`` selects the
  legacy single binary heap; the dual-run equivalence suite proves both
  backends produce byte-identical simulated outcomes.
- **Telemetry is zero-cost when detached.**  Instead of ``if bus is not
  None`` checks on every dispatch/park/finish/accounting call, the kernel
  binds lean or instrumented variants of its hot functions whenever
  ``trace``/``sched_bus``/``ledger`` change (they are properties); the
  detached path executes no telemetry branches, string formatting or dict
  building at all.
- **Accounting is slotted.**  Per-thread compute/spin cycles are two
  float slots (``cycles_by`` remains as a read-only dict view) and
  per-core per-kind cycles use a run-length accumulator folded into the
  dict only when the running thread's kind changes or the counter is
  read.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from functools import partial
from typing import Any, Callable, Generator

from repro.sim.errors import DeadlockError, LivelockError, SimulationError
from repro.sim.instructions import Block, Compute, Instruction, Sleep, Spin, YieldCPU
from repro.sim.machine import MachineSpec
from repro.sim.primitives import Event, Gate
from repro.sim.timerqueue import TIMER_BACKENDS, Timer, make_timer_queue

Program = Generator[Instruction, Any, Any]

#: Upper bound on consecutive zero-duration generator steps of one thread.
_LIVELOCK_LIMIT = 100_000

#: Backwards-compatible name: the timer handle moved to repro.sim.timerqueue.
_Timer = Timer


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    DONE = "done"


class _Activity:
    """Work currently occupying a logical CPU (a Compute or a Spin)."""

    __slots__ = (
        "kind",
        "work_total",
        "work_done",
        "last_update",
        "speed",
        "timer",
        "spin_event",
        "tag",
    )

    def __init__(
        self,
        kind: str,
        work_total: float,
        speed: float,
        now: float,
        spin_event: Event | None = None,
        tag: str | None = None,
    ) -> None:
        self.kind = kind  # "compute" or "spin"
        self.work_total = work_total
        self.work_done = 0.0
        self.last_update = now
        self.speed = speed
        self.timer: Timer | None = None
        self.spin_event = spin_event
        self.tag = tag


class SimThread:
    """A simulated OS thread wrapping a generator coroutine.

    Attributes:
        name: Human-readable identifier (unique suffix added by the kernel).
        kind: Accounting bucket, e.g. ``"app"``, ``"worker"``,
            ``"scheduler"``; CPU usage can be broken down per kind.
        daemon: Daemon threads (worker pools) are allowed to be still
            parked when :meth:`Kernel.join` returns.
        state: Current :class:`ThreadState`.
        result: Return value of the generator once ``DONE``.
        done_event: Fires (with ``result``) when the thread finishes.
        cpu_cycles: Wall cycles spent on a core.
        cycles_by: Wall cycles split by activity kind (compute/spin) — a
            read-only dict view over the ``cycles_compute``/``cycles_spin``
            slots the accounting hot path writes.
    """

    __slots__ = (
        "name",
        "kind",
        "daemon",
        "affinity",
        "gen",
        "state",
        "result",
        "done_event",
        "core",
        "slice_end",
        "cpu_cycles",
        "cycles_compute",
        "cycles_spin",
        "ledger_cells",
        "_pending",
        "_resume_value",
        "_spin_result",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        daemon: bool,
        gen: Program,
        done_event: Event,
        affinity: frozenset[int] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.daemon = daemon
        #: Logical CPUs this thread may run on (None = any), as set by
        #: sched_setaffinity; switchless deployments pin worker threads.
        self.affinity = affinity
        self.gen = gen
        self.state = ThreadState.NEW
        self.result: Any = None
        self.done_event = done_event
        self.core: "LogicalCPU | None" = None
        self.slice_end = 0.0
        self.cpu_cycles = 0.0
        self.cycles_compute = 0.0
        self.cycles_spin = 0.0
        #: Lazily created by the kernel when a telemetry ledger is
        #: attached: {activity_kind: {tag: [wall, work]}}, folded into the
        #: ledger's table at snapshot time (see CycleLedger).
        self.ledger_cells: dict[str, dict[str | None, list[float]]] | None = None
        self._pending: Compute | Spin | None = None
        self._resume_value: Any = None
        self._spin_result: bool | None = None

    @property
    def cycles_by(self) -> dict[str, float]:
        """Cycles split by activity kind, as the historical dict shape."""
        return {"compute": self.cycles_compute, "spin": self.cycles_spin}

    def allowed_on(self, cpu_index: int) -> bool:
        """Whether the affinity mask admits ``cpu_index``."""
        return self.affinity is None or cpu_index in self.affinity

    @property
    def done(self) -> bool:
        """Whether the thread has finished."""
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name!r} {self.state.value}>"


class LogicalCPU:
    """One logical CPU (hardware thread) of the simulated machine."""

    __slots__ = (
        "index",
        "kernel",
        "sibling",
        "thread",
        "activity",
        "busy_cycles",
        "_busy_by_kind",
        "_acc_kind",
        "_acc_cycles",
        "_complete_cb",
        "_slice_cb",
    )

    def __init__(self, index: int, kernel: "Kernel") -> None:
        self.index = index
        self.kernel = kernel
        self.sibling: LogicalCPU | None = None
        self.thread: SimThread | None = None
        self.activity: _Activity | None = None
        self.busy_cycles = 0.0
        # Per-kind busy cycles use a run-length accumulator: consecutive
        # accounting intervals for the same thread kind (the overwhelmingly
        # common case — a core runs one kind for many slices) add to two
        # scalar slots and fold into the dict only on a kind change or a
        # counter read.
        self._busy_by_kind: dict[str, float] = {}
        self._acc_kind: str | None = None
        self._acc_cycles = 0.0
        # Preallocated timer callbacks: every Compute/Spin schedules (and
        # every SMT speed change reschedules) a timer on this CPU, so a
        # fresh ``functools.partial`` per timer is measurable allocator
        # churn on the activity path.
        self._complete_cb = partial(kernel._on_work_complete, self)
        self._slice_cb = partial(kernel._on_slice_end, self)

    @property
    def busy_by_kind(self) -> dict[str, float]:
        """Busy cycles per thread kind (folds the accumulator first)."""
        self._fold_kind()
        return self._busy_by_kind

    def _fold_kind(self) -> None:
        kind = self._acc_kind
        if kind is not None:
            table = self._busy_by_kind
            table[kind] = table.get(kind, 0.0) + self._acc_cycles
            self._acc_kind = None
            self._acc_cycles = 0.0

    @property
    def idle(self) -> bool:
        """Whether no thread occupies this CPU."""
        return self.thread is None

    def speed(self) -> float:
        """Current execution speed given SMT sibling occupancy."""
        if self.sibling is not None and self.sibling.thread is not None:
            return self.kernel.spec.smt_factor
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = self.thread.name if self.thread else "idle"
        return f"<cpu{self.index} {who}>"


class SchedTrace:
    """Optional ring buffer of scheduling events, for debugging.

    Entries are ``(time_cycles, event, thread_name, cpu_index)`` tuples;
    ``event`` is one of ``dispatch``, ``preempt``, ``park``, ``finish``.
    Enable with ``Kernel(..., trace=SchedTrace())`` — tracing costs host
    time only, never simulated cycles.
    """

    __slots__ = ("max_entries", "entries", "dropped")

    def __init__(self, max_entries: int = 10_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.entries: deque[tuple[float, str, str, int]] = deque(maxlen=max_entries)
        self.dropped = 0

    def record(self, when: float, event: str, thread: str, cpu: int) -> None:
        """Record one sample/event."""
        if len(self.entries) == self.max_entries:
            self.dropped += 1
        self.entries.append((when, event, thread, cpu))

    def for_thread(self, name: str) -> list[tuple[float, str, str, int]]:
        """Entries belonging to the named thread."""
        return [e for e in self.entries if e[2] == name]

    def render(self, limit: int = 50) -> str:
        """The most recent entries as readable lines."""
        lines = [
            f"{when:>14.0f}  cpu{cpu}  {event:<9s} {thread}"
            for when, event, thread, cpu in list(self.entries)[-limit:]
        ]
        return "\n".join(lines)


class Kernel:
    """Deterministic discrete-event kernel for one simulated machine.

    ``timers`` selects the timer-queue backend: ``"wheel"`` (default, the
    calendar queue) or ``"heap"`` (the legacy binary heap, kept for the
    dual-run equivalence proof).  Both produce identical simulations.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        trace: "SchedTrace | None" = None,
        timers: str = "wheel",
    ) -> None:
        self.spec = spec if spec is not None else MachineSpec()
        self.now = 0.0
        #: Optional telemetry hooks (see :mod:`repro.telemetry`); all stay
        #: None unless a TelemetrySession attaches.  ``bus`` is read by
        #: runtime components (router, backends, enclaves) that gate their
        #: own emits on it.  ``sched_bus`` is the bus again iff
        #: ``bus.capture_sched`` — pre-resolved by whoever attaches.
        #: ``sched_bus``/``ledger``/``trace`` are properties: assigning
        #: them rebinds the kernel's hot functions, so the detached path
        #: carries no telemetry branches at all (see _bind_hot_paths).
        self.bus: Any = None
        self._sched_bus: Any = None
        self._ledger: Any = None
        self._trace = trace
        #: Optional fault injector (see :mod:`repro.faults`).  None on
        #: healthy runs; runtime components gate every fault-tolerance
        #: timeout/check on this single attribute so un-faulted runs stay
        #: byte-identical to builds without the fault layer.
        self.faults: Any = None
        if timers not in TIMER_BACKENDS:
            raise ValueError(f"timers must be one of {TIMER_BACKENDS}")
        self.timer_backend = timers
        self._timers = make_timer_queue(timers, self.spec.timeslice_cycles)
        self._seq = itertools.count()
        self._micro: deque[Callable[[], None]] = deque()
        self._ready: deque[SimThread] = deque()
        #: Whether a _try_dispatch microtask is already queued.  Dispatch
        #: is idempotent over the state it sees, so queueing one per
        #: wake-up only reruns a no-op; a single pending entry suffices
        #: (anything that changes placement state re-queues it).
        self._dispatch_queued = False
        #: Lowest CPU index that may be idle; every CPU below it is busy.
        #: Maintained so the dispatch scan skips the busy prefix instead of
        #: re-walking all logical CPUs per ready thread.
        self._idle_scan_start = 0
        self.threads: list[SimThread] = []
        self.cpus = [LogicalCPU(i, self) for i in range(self.spec.n_logical)]
        for cpu in self.cpus:
            sib = self.spec.sibling_of(cpu.index)
            if sib is not None:
                cpu.sibling = self.cpus[sib]
        self._name_counts: dict[str, int] = {}
        self.events_processed = 0
        self._bind_hot_paths()

    # ------------------------------------------------------------------
    # Telemetry attach points (rebinding the hot paths)
    # ------------------------------------------------------------------
    @property
    def trace(self) -> "SchedTrace | None":
        """Scheduling trace ring buffer; assigning rebinds hot paths."""
        return self._trace

    @trace.setter
    def trace(self, value: "SchedTrace | None") -> None:
        self._trace = value
        self._bind_hot_paths()

    @property
    def sched_bus(self) -> Any:
        """Bus for sched.* events; assigning rebinds hot paths."""
        return self._sched_bus

    @sched_bus.setter
    def sched_bus(self, value: Any) -> None:
        self._sched_bus = value
        self._bind_hot_paths()

    @property
    def ledger(self) -> Any:
        """Cycle ledger; assigning rebinds the accounting path."""
        return self._ledger

    @ledger.setter
    def ledger(self, value: Any) -> None:
        self._ledger = value
        self._bind_hot_paths()

    def _bind_hot_paths(self) -> None:
        """Select lean or instrumented variants of the hot functions.

        Called whenever ``trace``/``sched_bus``/``ledger`` change.  The
        bound methods live in the instance dict, shadowing nothing (the
        class only defines the suffixed variants), so every internal call
        site — ``self._run_on(...)`` etc. — dispatches straight to the
        right variant with zero per-event telemetry checks.
        """
        if self._trace is None and self._sched_bus is None:
            self._run_on = self._run_on_lean
            self._release_core = self._release_core_lean
            self._finish_thread = self._finish_thread_lean
        else:
            self._run_on = self._run_on_instrumented
            self._release_core = self._release_core_instrumented
            self._finish_thread = self._finish_thread_instrumented
        if self._ledger is None:
            self._apply_progress = self._apply_progress_lean
        else:
            self._apply_progress = self._apply_progress_ledger

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def gate(self, value: Any = None, name: str = "") -> Gate:
        """Create a level-triggered :class:`Gate` holding ``value``."""
        return Gate(self, value, name)

    def spawn(
        self,
        program: Program,
        name: str = "thread",
        kind: str = "app",
        daemon: bool = False,
        affinity: frozenset[int] | set[int] | None = None,
    ) -> SimThread:
        """Create a thread running ``program`` and place it on the ready queue.

        ``affinity`` restricts the thread to the given logical CPUs
        (sched_setaffinity-style); None means any CPU.
        """
        if affinity is not None:
            affinity = frozenset(affinity)
            invalid = [c for c in affinity if not 0 <= c < len(self.cpus)]
            if invalid or not affinity:
                raise ValueError(f"invalid affinity mask {sorted(affinity)}")
        count = self._name_counts.get(name, 0)
        self._name_counts[name] = count + 1
        unique = name if count == 0 else f"{name}#{count}"
        thread = SimThread(
            unique, kind, daemon, program, self.event(f"done:{unique}"), affinity
        )
        self.threads.append(thread)
        self._make_ready(thread)
        return thread

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    def cycles(self, seconds: float) -> float:
        """Convert seconds to cycles using the machine frequency."""
        return self.spec.cycles(seconds)

    def seconds(self, cycles: float) -> float:
        """Convert cycles to seconds using the machine frequency."""
        return self.spec.seconds(cycles)

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.spec.seconds(self.now)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(
        self,
        until_time: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events until the queue drains or a stop condition holds.

        Args:
            until_time: Stop once the next timer lies beyond this absolute
                cycle count; ``kernel.now`` is advanced to ``until_time``.
            stop_when: Callable checked after each processed timer and
                microtask batch; return True to stop.
            max_events: Safety bound on processed timers.
        """
        micro = self._micro
        timers = self._timers
        pop = timers.pop
        processed = 0
        while True:
            while micro:
                micro.popleft()()
            if stop_when is not None and stop_when():
                return
            timer = pop()
            if timer is None:
                if micro:
                    continue
                break
            when = timer.when
            if until_time is not None and when > until_time:
                timers.push(timer)
                if until_time > self.now:
                    self.now = until_time
                return
            if when < self.now:
                raise SimulationError("timer scheduled in the past")
            self.now = when
            timer.fn()
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")

    def join(self, *threads: SimThread, max_events: int | None = None) -> None:
        """Run until every given thread is done.

        Raises :class:`DeadlockError` if the event queue drains while some
        of the joined threads are still parked.

        The stop condition is amortised O(1): finished threads are popped
        off the front of a pending deque instead of re-scanning every
        target per processed event (``join`` over a large batch made the
        stop check itself a hot function).
        """
        pending = deque(t for t in threads if not t.done)

        def all_done() -> bool:
            while pending and pending[0].state is ThreadState.DONE:
                pending.popleft()
            return not pending

        self.run(stop_when=all_done, max_events=max_events)
        stuck = [t for t in threads if not t.done]
        if stuck:
            states = ", ".join(f"{t.name}={t.state.value}" for t in stuck)
            raise DeadlockError(f"event queue drained with threads parked: {states}")

    def run_until_idle(self) -> None:
        """Run until no timers or microtasks remain."""
        self.run()

    def _at(self, delay: float, fn: Callable[[], None]) -> Timer:
        if delay < 0:
            raise SimulationError("cannot schedule a timer in the past")
        timer = Timer(self.now + delay, next(self._seq), fn)
        self._timers.push(timer)
        return timer

    def call_at(self, when: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` at absolute cycle ``when`` (driver-side hook)."""
        return self._at(when - self.now, fn)

    def timer_stats(self) -> dict[str, int]:
        """Timer-queue internals (stored/live/compactions), for tests."""
        return self._timers.stats()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _make_ready(self, thread: SimThread) -> None:
        if thread.state is ThreadState.READY:
            # Already queued: re-queuing would leave a stale duplicate
            # behind once the first entry dispatches, double-counting the
            # thread in the ready-queue length and forcing _try_dispatch
            # to skip it later.  Every queued thread appears exactly once.
            return
        if thread.state is ThreadState.DONE:
            # A killed thread can still sit in an Event's blocked list;
            # its wake-up must not resurrect it.
            return
        thread.state = ThreadState.READY
        self._ready.append(thread)
        if not self._dispatch_queued:
            self._dispatch_queued = True
            self._micro.append(self._try_dispatch)

    def _idle_core_for(self, thread: SimThread) -> LogicalCPU | None:
        """Pick an idle logical CPU the thread's affinity admits.

        Like Linux, the dispatcher prefers an idle CPU whose SMT sibling is
        also idle, so hyperthread contention only appears once every
        physical core has work.

        The scan starts at ``_idle_scan_start`` — the busy prefix below it
        was verified busy by an earlier scan and CPUs only go idle through
        :meth:`_release_core`, which lowers the hint.  On a saturated
        machine (the common case under load) the scan is O(1): the hint
        sits past the last CPU and the loop body never runs.  The selection
        itself is unchanged: lowest-index idle CPU with an idle sibling,
        else the lowest-index idle CPU.
        """
        fallback: LogicalCPU | None = None
        cpus = self.cpus
        n = len(cpus)
        first_idle_seen = False
        for i in range(self._idle_scan_start, n):
            cpu = cpus[i]
            if cpu.thread is not None:
                continue
            if not first_idle_seen:
                first_idle_seen = True
                self._idle_scan_start = i
            if not thread.allowed_on(cpu.index):
                continue
            if cpu.sibling is None or cpu.sibling.thread is None:
                return cpu
            if fallback is None:
                fallback = cpu
        if not first_idle_seen:
            self._idle_scan_start = n
        return fallback

    def _try_dispatch(self) -> None:
        """Place ready threads on idle cores, FIFO, respecting affinity.

        Threads whose allowed CPUs are all busy stay queued (in order)
        without blocking later, compatible threads.
        """
        self._dispatch_queued = False
        ready = self._ready
        if not ready:
            return
        deferred: deque[SimThread] = deque()
        run_on = self._run_on
        while ready:
            thread = ready.popleft()
            if thread.state is not ThreadState.READY:
                continue
            core = self._idle_core_for(thread)
            if core is None:
                deferred.append(thread)
                continue
            run_on(core, thread)
        self._ready = deferred

    # The _run_on/_release_core/_finish_thread lean and instrumented
    # variants must stay in lockstep: the instrumented one is the lean body
    # plus trace/bus emits at the exact points the seed kernel emitted.

    def _run_on_lean(self, core: LogicalCPU, thread: SimThread) -> None:
        thread.state = ThreadState.RUNNING
        thread.core = core
        core.thread = thread
        thread.slice_end = self.now + self.spec.timeslice_cycles
        self._sibling_changed(core)
        pending = thread._pending
        thread._pending = None
        if pending is None:
            value = thread._resume_value
            thread._resume_value = None
            self._step(thread, value)
        elif pending.__class__ is Spin or isinstance(pending, Spin):
            if thread._spin_result is not None or pending.event.fired:
                thread._spin_result = None
                self._step(thread, True)
            else:
                self._start_work(
                    core, thread, "spin", pending.timeout, pending.event, tag=pending.tag
                )
        else:
            self._start_work(core, thread, "compute", pending.cycles, tag=pending.tag)

    def _run_on_instrumented(self, core: LogicalCPU, thread: SimThread) -> None:
        thread.state = ThreadState.RUNNING
        thread.core = core
        core.thread = thread
        thread.slice_end = self.now + self.spec.timeslice_cycles
        if self._trace is not None:
            self._trace.record(self.now, "dispatch", thread.name, core.index)
        bus = self._sched_bus
        if bus is not None:
            bus.emit("sched.dispatch", thread=thread.name, cpu=core.index)
        self._sibling_changed(core)
        pending = thread._pending
        thread._pending = None
        if pending is None:
            value = thread._resume_value
            thread._resume_value = None
            self._step(thread, value)
        elif isinstance(pending, Spin):
            if thread._spin_result is not None or pending.event.fired:
                thread._spin_result = None
                self._step(thread, True)
            else:
                self._start_work(
                    core, thread, "spin", pending.timeout, pending.event, tag=pending.tag
                )
        else:
            self._start_work(core, thread, "compute", pending.cycles, tag=pending.tag)

    def _release_core_lean(self, thread: SimThread) -> None:
        core = thread.core
        if core is None:
            return
        thread.core = None
        core.thread = None
        core.activity = None
        if core.index < self._idle_scan_start:
            self._idle_scan_start = core.index
        self._sibling_changed(core)
        if not self._dispatch_queued:
            self._dispatch_queued = True
            self._micro.append(self._try_dispatch)

    def _release_core_instrumented(self, thread: SimThread) -> None:
        core = thread.core
        if core is None:
            return
        if thread.state is not ThreadState.DONE:
            event = "preempt" if thread.state is ThreadState.RUNNING else "park"
            if self._trace is not None:
                self._trace.record(self.now, event, thread.name, core.index)
            bus = self._sched_bus
            if bus is not None:
                bus.emit(f"sched.{event}", thread=thread.name, cpu=core.index)
        thread.core = None
        core.thread = None
        core.activity = None
        if core.index < self._idle_scan_start:
            self._idle_scan_start = core.index
        self._sibling_changed(core)
        if not self._dispatch_queued:
            self._dispatch_queued = True
            self._micro.append(self._try_dispatch)

    def _sibling_changed(self, core: LogicalCPU) -> None:
        """Re-time the sibling's running activity after occupancy changed."""
        sib = core.sibling
        if sib is None or sib.activity is None:
            return
        self._apply_progress(sib)
        activity = sib.activity
        if activity.timer is not None:
            activity.timer.cancel()
        activity.speed = sib.speed()
        self._schedule_activity_timer(sib)

    # ------------------------------------------------------------------
    # Generator stepping
    # ------------------------------------------------------------------
    def _step(self, thread: SimThread, value: Any) -> None:
        """Advance ``thread`` until it parks on an instruction or finishes."""
        core = thread.core
        if core is None:
            raise SimulationError(f"stepping off-core thread {thread.name}")
        send = thread.gen.send
        steps = 0
        while True:
            steps += 1
            if steps > _LIVELOCK_LIMIT:
                raise LivelockError(
                    f"thread {thread.name!r} executed {steps} zero-time steps"
                )
            try:
                instr = send(value)
            except StopIteration as stop:
                self._finish_thread(thread, stop.value)
                return
            # Exact-type dispatch: the instruction dataclasses are final in
            # practice, and ``type is`` beats isinstance chains on the
            # hottest call in the simulator.  Unknown (subclassed) types
            # fall through to the isinstance chain below.
            cls = instr.__class__
            if cls is Compute:
                if instr.cycles <= 0:
                    value = None
                    continue
                self._start_work(core, thread, "compute", instr.cycles, tag=instr.tag)
                return
            if cls is Spin:
                if instr.event.fired:
                    value = True
                    continue
                if instr.timeout <= 0:
                    value = False
                    continue
                instr.event._spinners.append(thread)
                self._start_work(
                    core, thread, "spin", instr.timeout, instr.event, tag=instr.tag
                )
                return
            if cls is Block:
                if instr.event.fired:
                    value = instr.event.value
                    continue
                thread.state = ThreadState.BLOCKED
                instr.event._blocked.append(thread)
                self._release_core(thread)
                return
            if cls is Sleep:
                if instr.cycles <= 0:
                    value = None
                    continue
                thread.state = ThreadState.SLEEPING
                self._release_core(thread)
                self._at(instr.cycles, partial(self._wake_sleeper, thread))
                return
            if cls is YieldCPU:
                if self._ready:
                    self._release_core(thread)
                    self._make_ready(thread)
                    return
                value = None
                continue
            handled = self._step_subclass(thread, core, instr)
            if handled is _PARKED:
                return
            value = handled

    def _step_subclass(self, thread: SimThread, core: LogicalCPU, instr: Any) -> Any:
        """Slow path of :meth:`_step` for subclassed instructions.

        Returns the next ``value`` to send, or the ``_PARKED`` sentinel when
        the thread parked on the instruction.
        """
        if isinstance(instr, Compute):
            if instr.cycles <= 0:
                return None
            self._start_work(core, thread, "compute", instr.cycles, tag=instr.tag)
            return _PARKED
        if isinstance(instr, Spin):
            if instr.event.fired:
                return True
            if instr.timeout <= 0:
                return False
            instr.event._spinners.append(thread)
            self._start_work(
                core, thread, "spin", instr.timeout, instr.event, tag=instr.tag
            )
            return _PARKED
        if isinstance(instr, Block):
            if instr.event.fired:
                return instr.event.value
            thread.state = ThreadState.BLOCKED
            instr.event._blocked.append(thread)
            self._release_core(thread)
            return _PARKED
        if isinstance(instr, Sleep):
            if instr.cycles <= 0:
                return None
            thread.state = ThreadState.SLEEPING
            self._release_core(thread)
            self._at(instr.cycles, partial(self._wake_sleeper, thread))
            return _PARKED
        if isinstance(instr, YieldCPU):
            if self._ready:
                self._release_core(thread)
                self._make_ready(thread)
                return _PARKED
            return None
        raise SimulationError(f"unknown instruction yielded: {instr!r}")

    def _finish_thread_lean(self, thread: SimThread, result: Any) -> None:
        thread.state = ThreadState.DONE
        thread.result = result
        if thread.core is not None:
            self._release_core(thread)
        thread.done_event.fire(result)

    def _finish_thread_instrumented(self, thread: SimThread, result: Any) -> None:
        thread.state = ThreadState.DONE
        thread.result = result
        if self._trace is not None:
            cpu = thread.core.index if thread.core is not None else -1
            self._trace.record(self.now, "finish", thread.name, cpu)
        bus = self._sched_bus
        if bus is not None:
            bus.emit("sched.finish", thread=thread.name)
        if thread.core is not None:
            self._release_core(thread)
        thread.done_event.fire(result)

    def _wake_sleeper(self, thread: SimThread) -> None:
        if thread.state is ThreadState.SLEEPING:
            thread._resume_value = None
            self._make_ready(thread)

    def kill(self, thread: SimThread) -> None:
        """Forcibly terminate ``thread`` at the current instant.

        Models an asynchronous thread death (the fault injector's worker
        crash): in-flight work is credited up to ``now``, the generator is
        closed, the core released and ``done_event`` fired with ``None``.
        The thread may still be referenced by event wait lists or the
        ready queue; those entries become inert (:meth:`_make_ready`
        ignores DONE threads, :meth:`_try_dispatch` skips non-READY
        entries), so :meth:`ready_queue_length` can transiently over-count
        by the number of freshly killed READY threads.  Killing a DONE
        thread is a no-op.
        """
        if thread.state is ThreadState.DONE:
            return
        core = thread.core
        if core is not None and core.activity is not None:
            self._apply_progress(core)
            activity = core.activity
            if activity.timer is not None:
                activity.timer.cancel()
            if activity.kind == "spin" and activity.spin_event is not None:
                spinners = activity.spin_event._spinners
                if thread in spinners:
                    spinners.remove(thread)
            core.activity = None
        thread._pending = None
        thread._spin_result = None
        thread.gen.close()
        self._finish_thread(thread, None)

    # ------------------------------------------------------------------
    # Activities (on-core work)
    # ------------------------------------------------------------------
    def _start_work(
        self,
        core: LogicalCPU,
        thread: SimThread,
        kind: str,
        work: float,
        spin_event: Event | None = None,
        tag: str | None = None,
    ) -> None:
        activity = _Activity(kind, work, core.speed(), self.now, spin_event, tag)
        core.activity = activity
        self._schedule_activity_timer(core)

    def _schedule_activity_timer(self, core: LogicalCPU) -> None:
        activity = core.activity
        thread = core.thread
        if activity is None or thread is None:
            raise SimulationError("scheduling timer on idle core")
        # Clamp: floating-point progress accounting can leave a remainder
        # of ~1 ulp below zero after an SMT speed change.
        work_left = activity.work_total - activity.work_done
        if work_left < 0.0:
            work_left = 0.0
        wall_remaining = work_left / activity.speed
        if self.now + wall_remaining <= thread.slice_end:
            activity.timer = self._at(wall_remaining, core._complete_cb)
        else:
            activity.timer = self._at(thread.slice_end - self.now, core._slice_cb)

    # The two _apply_progress variants must stay in lockstep: the ledger
    # one is the lean body plus the per-thread ledger-cell charge.

    def _apply_progress_lean(self, core: LogicalCPU) -> None:
        activity = core.activity
        thread = core.thread
        if activity is None or thread is None:
            return
        now = self.now
        dt = now - activity.last_update
        if dt <= 0:
            return
        activity.work_done += dt * activity.speed
        activity.last_update = now
        core.busy_cycles += dt
        kind = thread.kind
        if kind == core._acc_kind:
            core._acc_cycles += dt
        else:
            core._fold_kind()
            core._acc_kind = kind
            core._acc_cycles = dt
        thread.cpu_cycles += dt
        if activity.spin_event is None:
            thread.cycles_compute += dt
        else:
            thread.cycles_spin += dt

    def _apply_progress_ledger(self, core: LogicalCPU) -> None:
        activity = core.activity
        thread = core.thread
        if activity is None or thread is None:
            return
        now = self.now
        dt = now - activity.last_update
        if dt <= 0:
            return
        work = dt * activity.speed
        activity.work_done += work
        activity.last_update = now
        core.busy_cycles += dt
        kind = thread.kind
        if kind == core._acc_kind:
            core._acc_cycles += dt
        else:
            core._fold_kind()
            core._acc_kind = kind
            core._acc_cycles = dt
        thread.cpu_cycles += dt
        if activity.spin_event is None:
            thread.cycles_compute += dt
        else:
            thread.cycles_spin += dt
        # Charge into per-thread nested dicts rather than the ledger's
        # (thread.kind, activity.kind, tag) table: this runs once per
        # accounting interval, and two cached-hash subscripts (with a
        # zero-cost try/except for the rare first miss) are measurably
        # cheaper than building and hashing a key tuple.
        # CycleLedger.snapshot folds these into the table.
        try:
            cell = thread.ledger_cells[activity.kind][activity.tag]
        except (KeyError, TypeError):
            cells = thread.ledger_cells
            if cells is None:
                cells = thread.ledger_cells = {}
            cell = cells.setdefault(activity.kind, {}).setdefault(
                activity.tag, [0.0, 0.0]
            )
        cell[0] += dt
        cell[1] += work

    def _on_work_complete(self, core: LogicalCPU) -> None:
        activity = core.activity
        thread = core.thread
        if activity is None or thread is None:
            return
        self._apply_progress(core)
        core.activity = None
        if activity.spin_event is not None:
            event = activity.spin_event
            if thread in event._spinners:
                event._spinners.remove(thread)
            result: Any = thread._spin_result if thread._spin_result is not None else False
            thread._spin_result = None
            self._step(thread, result)
        else:
            self._step(thread, None)

    def _on_slice_end(self, core: LogicalCPU) -> None:
        activity = core.activity
        thread = core.thread
        if activity is None or thread is None:
            return
        self._apply_progress(core)
        if not self._ready:
            thread.slice_end = self.now + self.spec.timeslice_cycles
            self._schedule_activity_timer(core)
            return
        remaining = max(activity.work_total - activity.work_done, 0.0)
        if activity.kind == "spin":
            assert activity.spin_event is not None
            thread._pending = Spin(activity.spin_event, remaining, tag=activity.tag)
        else:
            thread._pending = Compute(remaining, tag=activity.tag)
        core.activity = None
        self._release_core(thread)
        self._make_ready(thread)

    # ------------------------------------------------------------------
    # Event delivery
    # ------------------------------------------------------------------
    def _on_event_fired(self, event: Event) -> None:
        for thread in event._blocked:
            thread._resume_value = event.value
            self._make_ready(thread)
        event._blocked.clear()
        for thread in event._spinners:
            thread._spin_result = True
            if (
                thread.state is ThreadState.RUNNING
                and thread.core is not None
                and thread.core.activity is not None
                and thread.core.activity.spin_event is event
            ):
                self._micro.append(partial(self._interrupt_spin, thread.core, thread))
        event._spinners.clear()

    def _interrupt_spin(self, core: LogicalCPU, thread: SimThread) -> None:
        if core.thread is not thread or thread.state is not ThreadState.RUNNING:
            return
        activity = core.activity
        if activity is None or activity.kind != "spin":
            return
        if thread._spin_result is None:
            return
        self._apply_progress(core)
        if activity.timer is not None:
            activity.timer.cancel()
        core.activity = None
        thread._spin_result = None
        self._step(thread, True)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def flush_accounting(self) -> None:
        """Credit all in-progress activities up to ``now``.

        Call before reading per-thread or per-core cycle counters so that
        work in flight is included.
        """
        apply_progress = self._apply_progress
        for core in self.cpus:
            apply_progress(core)

    def cpu_snapshot(self) -> dict[str, Any]:
        """Return cumulative CPU accounting up to the current instant.

        The snapshot includes work in progress: running activities are
        credited up to ``now`` before totals are read.
        """
        self.flush_accounting()
        per_core = [core.busy_cycles for core in self.cpus]
        by_kind: dict[str, float] = {}
        for core in self.cpus:
            for kind, cycles in core.busy_by_kind.items():
                by_kind[kind] = by_kind.get(kind, 0.0) + cycles
        busy_total = sum(per_core)
        capacity = self.now * len(self.cpus)
        return {
            "now": self.now,
            "busy_total": busy_total,
            "idle_total": max(capacity - busy_total, 0.0),
            "per_core": per_core,
            "by_kind": by_kind,
        }

    def cpu_utilisation(self) -> float:
        """Overall fraction of CPU capacity used since time zero."""
        snap = self.cpu_snapshot()
        capacity = snap["now"] * len(self.cpus)
        if capacity <= 0:
            return 0.0
        return snap["busy_total"] / capacity

    def ready_queue_length(self) -> int:
        """Number of threads waiting in the ready queue, O(1).

        :meth:`_make_ready` never double-queues a READY thread and queued
        threads only change state by being dispatched (which pops them),
        so every entry is live and the deque length is the exact count —
        no O(n) state filter, no stale-entry double counting.
        """
        return len(self._ready)


#: Sentinel returned by :meth:`Kernel._step_subclass` when the thread parked.
_PARKED = object()
