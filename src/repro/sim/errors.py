"""Exception types raised by the simulation substrate."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while joined threads are parked.

    A deadlock in the simulated program (e.g. a thread blocked on an event
    nobody will ever fire) manifests as an empty timer heap with live,
    non-daemon threads still blocked.  Surfacing this loudly is far more
    useful than returning control silently.
    """


class EventAlreadyFired(SimulationError):
    """Raised when ``Event.fire`` is called twice on a one-shot event."""


class LivelockError(SimulationError):
    """Raised when a thread executes too many zero-time steps in a row.

    This catches simulated-program bugs such as a loop that blocks on an
    already-fired event forever: simulated time would never advance, so the
    kernel bounds the number of consecutive zero-duration generator steps.
    """
