"""Hardware description of the simulated machine.

The defaults model the paper's experimental platform: a 4-core Intel Xeon
E3-1275 v6 at 3.8 GHz with hyperthreading (8 logical CPUs).  All costs are
expressed in CPU cycles so the simulator never deals in wall-clock units;
``MachineSpec.cycles`` / ``MachineSpec.seconds`` convert.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the simulated machine.

    Attributes:
        n_cores: Number of physical cores.
        smt: Hardware threads per core (1 disables hyperthreading).
        freq_hz: Core frequency in Hz; used to convert cycles to seconds.
        smt_factor: Relative execution speed of a logical CPU whose SMT
            sibling is busy.  1.0 means perfect scaling (no interference);
            the default 0.62 reflects the throughput loss two active
            hyperthreads typically see on Skylake-class cores.
        timeslice_cycles: Preemption quantum of the simulated OS scheduler.
            The default corresponds to 1 ms at 3.8 GHz.
        dispatch_overhead_cycles: Cycles charged when a thread is dispatched
            from the ready queue (context-switch cost).
    """

    n_cores: int = 4
    smt: int = 2
    freq_hz: float = 3.8e9
    smt_factor: float = 0.62
    timeslice_cycles: float = 3.8e6
    dispatch_overhead_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.smt not in (1, 2):
            raise ValueError("smt must be 1 or 2")
        if not 0.0 < self.smt_factor <= 1.0:
            raise ValueError("smt_factor must be in (0, 1]")
        if self.freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        if self.timeslice_cycles <= 0:
            raise ValueError("timeslice_cycles must be positive")
        if self.dispatch_overhead_cycles < 0:
            raise ValueError("dispatch_overhead_cycles must be >= 0")

    @property
    def n_logical(self) -> int:
        """Number of logical CPUs (physical cores x SMT ways)."""
        return self.n_cores * self.smt

    def cycles(self, seconds: float) -> float:
        """Convert a duration in seconds to CPU cycles."""
        return seconds * self.freq_hz

    def seconds(self, cycles: float) -> float:
        """Convert a duration in CPU cycles to seconds."""
        return cycles / self.freq_hz

    def sibling_of(self, logical_cpu: int) -> int | None:
        """Return the SMT sibling of ``logical_cpu``, or None without SMT."""
        if self.smt == 1:
            return None
        return logical_cpu ^ 1


def paper_machine(**overrides: object) -> MachineSpec:
    """The evaluation machine of the paper (Xeon E3-1275 v6, 4C/8T, 3.8 GHz)."""
    defaults: dict[str, object] = {
        "n_cores": 4,
        "smt": 2,
        "freq_hz": 3.8e9,
    }
    defaults.update(overrides)
    return MachineSpec(**defaults)  # type: ignore[arg-type]


def server_machine(**overrides: object) -> MachineSpec:
    """A modern SGX2 server (Ice-Lake-SP class): 16C/32T @ 2.6 GHz.

    Useful for what-if studies: with 32 logical CPUs the zc worker cap
    (`N/2`) rises to 16 and spinning workers are a much smaller fraction
    of the machine — the switchless trade-offs shift accordingly (see
    ``bench_ext_bigserver``).
    """
    defaults: dict[str, object] = {
        "n_cores": 16,
        "smt": 2,
        "freq_hz": 2.6e9,
    }
    defaults.update(overrides)
    return MachineSpec(**defaults)  # type: ignore[arg-type]
