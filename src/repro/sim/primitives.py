"""Synchronisation primitives for simulated threads.

``Event`` is the one-shot building block the kernel understands natively
(threads ``Block`` or ``Spin`` on events).  ``Gate`` builds a level-
triggered condition variable on top of events; it is what the switchless
worker state machines use to model fields written with atomic stores and
polled by other threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.errors import EventAlreadyFired

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel


class Event:
    """A one-shot event that simulated threads can block or spin on.

    Created via :meth:`repro.sim.kernel.Kernel.event`.  Firing an event a
    second time raises :class:`EventAlreadyFired`; level-triggered state
    belongs in :class:`Gate`.
    """

    __slots__ = ("_kernel", "name", "fired", "value", "_blocked", "_spinners")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        self.fired = False
        self.value: Any = None
        self._blocked: list[Any] = []  # SimThread instances parked in Block
        self._spinners: list[Any] = []  # SimThread instances in Spin

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every blocked or spinning waiter.

        Waiters are woken at the current simulated time; the wake-ups are
        processed by the kernel's microtask queue so that generator stepping
        never re-enters.
        """
        if self.fired:
            raise EventAlreadyFired(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        self._kernel._on_event_fired(self)

    def fire_if_unfired(self, value: Any = None) -> bool:
        """Fire the event unless it already fired; returns whether it fired now."""
        if self.fired:
            return False
        self.fire(value)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<Event {self.name!r} {state}>"


class Gate:
    """A level-triggered condition on a value.

    ``Gate`` holds a current value; threads obtain one-shot events that fire
    when the value satisfies a predicate (or equals a target).  This is the
    simulation analogue of a shared variable written with an atomic store
    and polled by another thread: the waiter spins or blocks on the event,
    the writer calls :meth:`set`.
    """

    __slots__ = ("_kernel", "name", "_value", "_waiters")

    def __init__(self, kernel: "Kernel", value: Any = None, name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        self._value = value
        self._waiters: list[tuple[Callable[[Any], bool], Event]] = []

    @property
    def value(self) -> Any:
        """The gate's current value."""
        return self._value

    def set(self, value: Any) -> None:
        """Store a new value and fire any waiter whose predicate now holds."""
        self._value = value
        if not self._waiters:
            return
        remaining: list[tuple[Callable[[Any], bool], Event]] = []
        for predicate, event in self._waiters:
            if event.fired:
                continue
            if predicate(value):
                event.fire(value)
            else:
                remaining.append((predicate, event))
        self._waiters = remaining

    def wait_for(self, predicate: Callable[[Any], bool]) -> Event:
        """Return a one-shot event that fires once ``predicate(value)`` holds.

        If the predicate already holds the event is returned pre-fired, so
        ``Block``/``Spin`` on it complete immediately.
        """
        event = self._kernel.event(name=f"gate:{self.name}")
        if predicate(self._value):
            event.fired = True
            event.value = self._value
        else:
            self._waiters.append((predicate, event))
        return event

    def wait_value(self, target: Any) -> Event:
        """Shorthand for :meth:`wait_for` with an equality predicate."""
        return self.wait_for(lambda v: v == target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gate {self.name!r} value={self._value!r}>"
