#!/usr/bin/env python
"""A secure counter service: switchless in *both* call directions.

Untrusted request handlers **ecall** into the enclave to increment sealed
counters; the enclave periodically persists its state with fwrite
**ocalls**.  Both directions run configless through ZC-SWITCHLESS
(`make_backend("zc")` for ocalls, `ZcEcallRuntime` for ecalls — §IV-D's
symmetry made concrete), and the comparison against full transitions
shows the benefit on a realistic request/response service.

Run:  python examples/secure_counter_service.py
"""

from repro.api import make_backend
from repro.core import ZcConfig, ZcEcallRuntime
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine

N_REQUESTS = 4_000
N_HOST_THREADS = 2
PERSIST_EVERY = 256
#: Shorter scheduler quantum than the paper's 10 ms default so both
#: schedulers reach steady state within this short demo run.
ZC_CONFIG = ZcConfig(quantum_seconds=0.002)


class CounterEnclave:
    """The trusted side: sealed counters + periodic persistence."""

    def __init__(self, enclave):
        self.enclave = enclave
        self.counters = {}
        self.updates_since_persist = 0
        self.persists = 0
        enclave.trts.register("increment", self.increment)

    def increment(self, counter_id: int):
        """Trusted handler: bump a counter, persisting periodically."""
        yield Compute(900, tag="seal-update")  # MAC over the counter record
        value = self.counters.get(counter_id, 0) + 1
        self.counters[counter_id] = value
        self.updates_since_persist += 1
        if self.updates_since_persist >= PERSIST_EVERY:
            self.updates_since_persist = 0
            self.persists += 1
            blob = b"".join(
                key.to_bytes(4, "big") + val.to_bytes(8, "big")
                for key, val in sorted(self.counters.items())
            )
            fd = yield from self.enclave.ocall("fopen", "/counters.sealed", "w")
            yield from self.enclave.ocall("fwrite", fd, blob, in_bytes=len(blob))
            yield from self.enclave.ocall("fclose", fd)
        return value


def run(mode: str) -> float:
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode == "zc":
        enclave.set_backend(make_backend("zc", ZC_CONFIG))
        ZcEcallRuntime(ZC_CONFIG).attach(enclave)
    service = CounterEnclave(enclave)

    def host_worker(index: int):
        """An untrusted request-handling thread."""
        for i in range(N_REQUESTS // N_HOST_THREADS):
            counter_id = (index * 7 + i) % 16
            yield Compute(1_500, tag="request-parse")
            yield from enclave.ecall_named("increment", counter_id, in_bytes=4, out_bytes=8)

    threads = [
        kernel.spawn(host_worker(i), name=f"host-{i}") for i in range(N_HOST_THREADS)
    ]
    kernel.join(*threads)
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    total = sum(service.counters.values())
    assert total == N_REQUESTS, f"lost updates: {total} != {N_REQUESTS}"
    switchless_ecalls = enclave.ecall_stats.total_switchless
    print(
        f"{mode:>8}: {N_REQUESTS} increments in {elapsed_ms:7.2f} ms "
        f"({elapsed_ms * 1e6 / N_REQUESTS:6.0f} ns/req, "
        f"{switchless_ecalls} switchless ecalls, "
        f"{service.persists} persists via ocalls)"
    )
    enclave.stop_backend()
    kernel.run()
    return elapsed_ms


def main():
    print(
        f"secure counter service: {N_HOST_THREADS} host threads, "
        f"{N_REQUESTS} increment requests\n"
    )
    regular = run("regular")
    zc = run("zc")
    print(f"\nzc (both directions switchless) is {regular / zc:.2f}x faster")


if __name__ == "__main__":
    main()
