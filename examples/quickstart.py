#!/usr/bin/env python
"""Quickstart: run ocalls through ZC-SWITCHLESS on a simulated SGX machine.

Builds the full stack in ~20 lines — machine, host OS, enclave, backend —
then issues the same ocalls under the regular (always-transition) path and
under ZC-SWITCHLESS, and prints the latency difference and call statistics.

Run:  python examples/quickstart.py
"""

from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import DevNull, DevZero, HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, paper_machine


def build_stack(use_zc: bool):
    """One simulated machine with a POSIX host and a single enclave."""
    kernel = Kernel(paper_machine())  # 4 cores / 8 threads @ 3.8 GHz
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    fs.mount_device("/dev/zero", DevZero())
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig()))
    return kernel, enclave


def workload(kernel, enclave, n_ops=2000):
    """An enclave thread writing one word to /dev/null n_ops times."""

    def program():
        fd = yield from enclave.ocall("open", "/dev/null", "w")
        for _ in range(n_ops):
            yield from enclave.ocall("write", fd, bytes(8), in_bytes=8)
        yield from enclave.ocall("close", fd)

    # Two concurrent enclave threads, as in the paper's benchmarks.
    threads = [kernel.spawn(program(), name=f"app-{i}") for i in range(2)]
    kernel.join(*threads)
    return kernel.seconds(kernel.now)


def main():
    for label, use_zc in (("regular ocalls (no_sl)", False), ("ZC-SWITCHLESS", True)):
        kernel, enclave = build_stack(use_zc)
        elapsed = workload(kernel, enclave)
        stats = enclave.stats
        write_stats = stats.by_name["write"]
        print(f"{label}:")
        print(f"  elapsed            : {elapsed * 1e3:8.2f} ms (simulated)")
        print(f"  mean write latency : {write_stats.mean_latency_cycles:8.0f} cycles")
        print(
            f"  calls              : {stats.total_calls} "
            f"(switchless={stats.total_switchless}, "
            f"fallback={stats.total_fallback}, regular={stats.total_regular})"
        )
        enclave.stop_backend()
        kernel.run()
        print()


if __name__ == "__main__":
    main()
