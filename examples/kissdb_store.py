#!/usr/bin/env python
"""kissdb demo: a key/value store doing all its I/O through ocalls.

Populates a KISSDB database from inside the enclave, reads it back, and
compares SET latency across the three execution modes the paper evaluates
(regular ocalls, Intel switchless with a static config, ZC-SWITCHLESS).

Run:  python examples/kissdb_store.py
"""

from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, paper_machine
from repro.switchless import SwitchlessConfig

N_KEYS = 1500


def build_enclave(mode: str):
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode == "intel":
        enclave.set_backend(
            make_backend("intel",
                SwitchlessConfig(
                    switchless_ocalls=frozenset({"fseeko", "fread", "fwrite"}),
                    num_uworkers=2,
                )
            )
        )
    elif mode == "zc":
        enclave.set_backend(make_backend("zc", ZcConfig()))
    return kernel, enclave


def run_mode(mode: str) -> float:
    kernel, enclave = build_enclave(mode)
    db = KissDB(enclave, "/demo.db", hash_table_size=128)

    def client():
        yield from db.open()
        for i in range(N_KEYS):
            yield from db.put(i.to_bytes(8, "big"), (i * i).to_bytes(8, "little"))
        # Verify a few round trips while still inside the enclave.
        for i in (0, 7, N_KEYS - 1):
            value = yield from db.get(i.to_bytes(8, "big"))
            assert value == (i * i).to_bytes(8, "little"), "lookup mismatch!"
        missing = yield from db.get((10**9).to_bytes(8, "big"))
        assert missing is None
        yield from db.close()

    thread = kernel.spawn(client(), name="kissdb-client")
    kernel.join(thread)
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    seeks = enclave.stats.by_name["fseeko"].calls
    writes = enclave.stats.by_name["fwrite"].calls
    print(
        f"{mode:>6}: {N_KEYS} SETs in {elapsed_ms:7.2f} ms  "
        f"({elapsed_ms * 1e3 / N_KEYS:6.1f} us/SET, "
        f"{seeks} fseeko / {writes} fwrite ocalls, "
        f"{db.table_count} hash-table pages)"
    )
    enclave.stop_backend()
    kernel.run()
    return elapsed_ms


def main():
    print(f"kissdb: inserting {N_KEYS} 8-byte key/value pairs per mode\n")
    results = {mode: run_mode(mode) for mode in ("no_sl", "intel", "zc")}
    print(f"\nzc speedup over no_sl: {results['no_sl'] / results['zc']:.2f}x")


if __name__ == "__main__":
    main()
