#!/usr/bin/env python
"""Secure file encryption: the paper's OpenSSL-style pipeline, end to end.

Encrypts a file with *real* AES-256-CBC inside the simulated enclave and
verifies the plaintext round-trips bit-exactly.  Then runs the paper's
two-thread pipeline (one encryptor, one decryptor) long enough for the
ZC scheduler to reach steady state, and compares simulated runtime
against regular ocalls — the Fig. 10 effect in miniature, combining
switchless execution with the ``rep movsb`` memcpy on the misaligned
ciphertext stream.

Run:  python examples/file_encryption.py
"""

from repro.apps import CryptoFileApp
from repro.api import make_backend
from repro.core import ZcConfig
from repro.crypto import RealAesCbcEngine
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, paper_machine

KEY = bytes.fromhex(
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
)
IV = bytes(range(16))
PLAINTEXT = (b"The quick brown fox jumps over the lazy dog. " * 2000)[: 16 * 4096]
PASSES = 8  # pipeline passes per thread, so the run spans several quanta
#: A shorter scheduler quantum than the paper's 10 ms default keeps this
#: demo quick while still reaching the scheduler's steady state (2
#: workers for 2 caller threads) within the first millisecond or two.
ZC_CONFIG = ZcConfig(quantum_seconds=0.002)


def build(mode: str):
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    fs.create("/secret.txt", PLAINTEXT)
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode == "zc":
        enclave.set_backend(make_backend("zc", ZC_CONFIG))
    return kernel, fs, enclave


def verify_round_trip():
    """Correctness pass: real AES, bitwise round-trip, no plaintext leak."""
    kernel, fs, enclave = build("no_sl")
    app = CryptoFileApp(enclave, lambda: RealAesCbcEngine(KEY, IV), chunk_bytes=4096)

    def pipeline():
        yield from app.encrypt_file("/secret.txt", "/secret.enc", IV)
        yield from app.decrypt_file("/secret.enc", "/roundtrip.txt")

    kernel.join(kernel.spawn(pipeline(), name="verify"))
    assert fs.contents("/roundtrip.txt") == PLAINTEXT, "round-trip mismatch!"
    assert PLAINTEXT[:64] not in fs.contents("/secret.enc"), "plaintext leak!"
    print(f"verified: {len(PLAINTEXT)} B AES-256-CBC round-trip is bit-exact\n")


def run_mode(mode: str) -> float:
    kernel, fs, enclave = build(mode)
    app = CryptoFileApp(enclave, lambda: RealAesCbcEngine(KEY, IV), chunk_bytes=4096)

    def prepare():
        yield from app.encrypt_file("/secret.txt", "/pre.enc", IV)

    kernel.join(kernel.spawn(prepare(), name="prepare"))
    start = kernel.now

    def encryptor():
        for i in range(PASSES):
            yield from app.encrypt_file("/secret.txt", f"/out-{i}.enc", IV)

    def decryptor():
        for _ in range(PASSES):
            yield from app.decrypt_file("/pre.enc")

    enc = kernel.spawn(encryptor(), name="encryptor")
    dec = kernel.spawn(decryptor(), name="decryptor")
    kernel.join(enc, dec)
    elapsed_ms = kernel.seconds(kernel.now - start) * 1e3
    print(
        f"{mode:>6}: {PASSES}x{len(PLAINTEXT)} B per thread in "
        f"{elapsed_ms:7.2f} ms simulated "
        f"(memcpy: {type(enclave.memcpy_model).__name__}, "
        f"switchless {enclave.stats.switchless_fraction() * 100:.0f}%)"
    )
    enclave.stop_backend()
    kernel.run()
    return elapsed_ms


def main():
    print("AES-256-CBC file pipeline (real cipher, simulated enclave I/O)\n")
    verify_round_trip()
    no_sl = run_mode("no_sl")
    zc = run_mode("zc")
    print(
        f"\nzc (switchless + rep-movsb memcpy) is {no_sl / zc:.2f}x faster "
        f"than regular ocalls with the SDK memcpy"
    )


if __name__ == "__main__":
    main()
