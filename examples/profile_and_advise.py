#!/usr/bin/env python
"""Profile an enclave workload, then generate switchless advice.

The paper's §III-A problem: selecting switchless routines at build time
requires knowing each ocall's frequency and duration, which developers
rarely do.  This example shows the measurement-driven alternative (and
why zc makes even that unnecessary):

1. run the kissdb workload with a CallTracer attached;
2. aggregate the trace into per-ocall profiles;
3. let the SwitchlessAdvisor derive the static Intel configuration;
4. re-run with that configuration and with zc, and compare.

Run:  python examples/profile_and_advise.py
"""

from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost
from repro.profiler import CallTracer, SwitchlessAdvisor, build_profiles
from repro.profiler.advisor import format_recommendations
from repro.profiler.profile import format_profiles
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, paper_machine
from repro.switchless import SwitchlessConfig

N_KEYS = 1200


def build(backend=None):
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if backend is not None:
        enclave.set_backend(backend)
    return kernel, enclave


def kissdb_workload(kernel, enclave):
    db = KissDB(enclave, "/profiled.db", hash_table_size=128)

    def client():
        yield from db.open()
        for i in range(N_KEYS):
            yield from db.put(i.to_bytes(8, "big"), i.to_bytes(8, "little"))
        yield from db.close()

    thread = kernel.spawn(client(), name="client")
    kernel.join(thread)
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    enclave.stop_backend()
    kernel.run()
    return elapsed_ms


def main():
    # Step 1+2: trace the workload under regular ocalls and profile it.
    kernel, enclave = build()
    tracer = CallTracer().install(enclave)
    baseline_ms = kissdb_workload(kernel, enclave)
    profiles = build_profiles(tracer.events, tracer.window_cycles())
    print(format_profiles(profiles))
    print()

    # Step 3: derive the static configuration a developer would need.
    advisor = SwitchlessAdvisor(min_rate_per_s=10_000)
    recommendations = advisor.advise(profiles)
    print(format_recommendations(recommendations))
    chosen = advisor.switchless_set(profiles)
    print(f"\nadvised EDL switchless set: {sorted(chosen)}\n")

    # Step 4: measure advised-Intel and configless zc.
    kernel, enclave = build(
        make_backend("intel",
            SwitchlessConfig(switchless_ocalls=chosen, num_uworkers=2)
        )
    )
    advised_ms = kissdb_workload(kernel, enclave)

    kernel, enclave = build(make_backend("zc", ZcConfig()))
    zc_ms = kissdb_workload(kernel, enclave)

    print(f"baseline (no switchless) : {baseline_ms:7.2f} ms")
    print(f"Intel, advisor-configured: {advised_ms:7.2f} ms")
    print(f"zc, no configuration     : {zc_ms:7.2f} ms")
    print(
        "\nzc reaches advised-Intel performance "
        f"({advised_ms / zc_ms:.2f}x) with zero configuration effort."
    )


if __name__ == "__main__":
    main()
