#!/usr/bin/env python
"""Watch the ZC scheduler adapt the worker pool to a changing load.

Drives a square-wave workload (bursts of hot ocalls separated by idle
gaps) and prints the scheduler's worker-count decisions and the fraction
of the program's lifetime spent at each count — the §V-B analysis the
paper reports as "0,1,2,3,4 workers for x% of the lifetime".

Run:  python examples/adaptive_workers.py
"""

from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import DevNull, HostFileSystem, PosixHost
from repro.profiler import CallTracer
from repro.profiler.timeline import bucket_events, render_timeline
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, Sleep, paper_machine

BURST_S = 0.03
GAP_S = 0.03
BURSTS = 3


def main():
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    backend = make_backend("zc", ZcConfig())
    enclave.set_backend(backend)
    tracer = CallTracer().install(enclave)

    def caller():
        fd = yield from enclave.ocall("open", "/dev/null", "w")
        for _ in range(BURSTS):
            burst_end = kernel.now + kernel.cycles(BURST_S)
            while kernel.now < burst_end:
                yield Compute(1_000, tag="app-work")
                yield from enclave.ocall("write", fd, bytes(8), in_bytes=8)
            yield Sleep(kernel.cycles(GAP_S))
        yield from enclave.ocall("close", fd)

    threads = [kernel.spawn(caller(), name=f"app-{i}") for i in range(2)]
    kernel.join(*threads)

    print("scheduler decisions (time ms -> active workers):")
    assert backend.scheduler is not None
    for t_cycles, _, chosen in backend.scheduler.decisions:
        print(f"  {kernel.seconds(t_cycles) * 1e3:7.1f} ms -> {chosen} workers")

    print("\nlifetime share per worker count (paper §V-B style):")
    for count, frac in backend.stats.worker_count_histogram(kernel.now).items():
        print(f"  {count} workers: {frac * 100:5.1f}%")

    stats = backend.stats
    print(
        f"\ncalls: {stats.total_calls}  switchless: {stats.switchless_count} "
        f"({stats.switchless_fraction() * 100:.1f}%)  fallbacks: {stats.fallback_count}"
    )

    print("\ntraced timeline (the square wave, as the profiler sees it):")
    buckets = bucket_events(
        tracer.events, interval_cycles=kernel.cycles(0.004), t_end_cycles=kernel.now
    )
    print(render_timeline(buckets, kernel.spec.freq_hz))
    backend.stop()
    kernel.run()


if __name__ == "__main__":
    main()
