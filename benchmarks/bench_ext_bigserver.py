"""Extension bench: the switchless trade-offs on a modern 16C/32T server.

The paper's machine has 8 logical CPUs, so 4 static workers are half the
machine — the CPU-waste story is stark.  On an Ice-Lake-class 32-thread
server the same 4 workers are 12.5% of capacity, many more callers fit,
and zc's cap rises to N/2 = 16.  This bench re-runs the kissdb workload
with 8 client threads on both machines and reports how the zc scheduler
sizes its pool and what the static configurations cost, normalised per
machine.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.experiments.common import build_stack, intel_spec, no_sl_spec, zc_spec
from repro.sim import paper_machine, server_machine

KISSDB_OCALLS = frozenset({"fseeko", "fread", "fwrite", "ftell"})
N_CLIENTS = 8
KEYS_PER_CLIENT = 400


def run_cell(machine_name: str, spec) -> dict[str, float]:
    machine = paper_machine() if machine_name == "paper-4C8T" else server_machine()
    stack = build_stack(spec, machine=machine)
    kernel = stack.kernel
    enclave = stack.enclave

    def client(index: int):
        db = KissDB(enclave, f"/db-{index}", hash_table_size=128)
        yield from db.open()
        for i in range(KEYS_PER_CLIENT):
            yield from db.put(i.to_bytes(8, "big"), bytes(8))
        yield from db.close()

    stack.start_measuring()
    threads = [
        kernel.spawn(client(i), name=f"client-{i}", kind="app")
        for i in range(N_CLIENTS)
    ]
    kernel.join(*threads)
    cpu = stack.cpu_usage_pct()
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    backend = enclave.backend
    mean_workers = 0.0
    if hasattr(backend, "stats") and hasattr(backend.stats, "mean_worker_count"):
        mean_workers = backend.stats.mean_worker_count(kernel.now)
    stack.finish()
    return {
        "machine": machine_name,
        "config": spec.label,
        "elapsed_ms": elapsed_ms,
        "cpu_pct": cpu,
        "zc_mean_workers": mean_workers,
    }


def test_big_server_tradeoffs(benchmark):
    specs = [no_sl_spec(), intel_spec("all", KISSDB_OCALLS, 4), zc_spec()]

    def sweep():
        return [
            run_cell(machine, spec)
            for machine in ("paper-4C8T", "server-16C32T")
            for spec in specs
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension: switchless trade-offs, paper machine vs 16C/32T server "
        f"({N_CLIENTS} kissdb clients)",
        format_table(
            ["machine", "config", "elapsed_ms", "cpu_pct", "zc_mean_workers"],
            [
                [r["machine"], r["config"], r["elapsed_ms"], r["cpu_pct"], r["zc_mean_workers"]]
                for r in rows
            ],
            precision=2,
        ),
    )
    by_key = {(r["machine"], r["config"]): r for r in rows}
    for machine in ("paper-4C8T", "server-16C32T"):
        zc = by_key[(machine, "zc")]
        no_sl = by_key[(machine, "no_sl")]
        assert zc["elapsed_ms"] < no_sl["elapsed_ms"]
    # With 8 hot clients, zc provisions a larger pool on the big server
    # (it has the CPUs to spend) than on the paper's 8-thread machine.
    small = by_key[("paper-4C8T", "zc")]["zc_mean_workers"]
    big = by_key[("server-16C32T", "zc")]["zc_mean_workers"]
    assert big > small
    # And the same static 4-worker Intel config is a far smaller share of
    # the big machine's capacity.
    assert (
        by_key[("server-16C32T", "i-all-4")]["cpu_pct"]
        < by_key[("paper-4C8T", "i-all-4")]["cpu_pct"]
    )