"""Bench: Fig. 9 — kissdb CPU usage (same runs as Fig. 8)."""

from benchmarks.conftest import emit
from repro.experiments import fig9


def test_fig9_kissdb_cpu(benchmark, shared_results):
    base = shared_results.get("fig8")
    result = benchmark.pedantic(
        fig9.run, kwargs={"base": base}, rounds=1, iterations=1
    )
    emit("Fig. 9 kissdb CPU usage", fig9.report(result))
    assert fig9.check_shape(result) == []
