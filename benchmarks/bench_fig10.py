"""Bench: Fig. 10 — OpenSSL-style pipeline latency and CPU."""

from benchmarks.conftest import emit
from repro.experiments import fig10


def test_fig10_crypto_pipeline(benchmark):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    emit("Fig. 10 OpenSSL-style pipeline", fig10.report(result))
    assert fig10.check_shape(result) == []
