"""Bench: Fig. 7 — write-ocall throughput, vanilla memcpy."""

from benchmarks.conftest import emit
from repro.experiments import fig7


def test_fig7_alignment_throughput(benchmark):
    result = benchmark.pedantic(fig7.run, kwargs={"ops": 300}, rounds=1, iterations=1)
    emit("Fig. 7 vanilla memcpy write throughput", fig7.report(result))
    assert fig7.check_shape(result) == []
