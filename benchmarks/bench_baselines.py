"""Bench: the switchless design space — HotCalls vs Intel vs zc vs no_sl.

Positions the paper's contribution against both its baselines on the same
kissdb workload (related-work §VI):

- **HotCalls** [33]: dedicated always-spinning responders — the latency
  floor, at one permanently-burnt CPU per responder;
- **Intel switchless**: static workers, pause-loop fallback;
- **ZC-SWITCHLESS**: adaptive workers, immediate fallback;
- **no_sl**: every call transitions.

Expected shape: latency HotCalls <= Intel(all) ≈ zc < no_sl, while idle
CPU cost ranks HotCalls >= Intel-static > zc (which releases workers).
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost, ProcStat
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, Sleep, paper_machine
from repro.switchless import SwitchlessConfig
from repro.switchless.hotcalls import HotCallsBackend, HotCallsConfig

STDIO = frozenset({"fseeko", "fread", "fwrite", "ftell"})
N_KEYS = 3000  # long enough for several zc scheduler quanta
N_CLIENTS = 2
IDLE_TAIL_S = 0.04  # idle period after the workload: adaptive CPU shows here


def make_backend(mode: str):
    if mode == "hotcalls":
        return HotCallsBackend(HotCallsConfig(STDIO, n_responders=2))
    if mode == "intel":
        return make_backend("intel",
            SwitchlessConfig(switchless_ocalls=STDIO, num_uworkers=2)
        )
    if mode == "zc":
        return make_backend("zc", ZcConfig())
    return None


def run_mode(mode: str) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    backend = make_backend(mode)
    if backend is not None:
        enclave.set_backend(backend)

    stat = ProcStat(kernel)
    start_sample = stat.sample()

    def client(index):
        db = KissDB(enclave, f"/db-{index}", hash_table_size=256)
        yield from db.open()
        for i in range(N_KEYS // N_CLIENTS):
            yield from db.put(i.to_bytes(8, "big"), i.to_bytes(8, "little"))
        yield from db.close()
        yield Sleep(kernel.cycles(IDLE_TAIL_S))  # idle tail

    threads = [kernel.spawn(client(i), name=f"client-{i}") for i in range(N_CLIENTS)]
    kernel.join(*threads)
    cpu = stat.usage_between(start_sample, stat.sample()).usage_pct
    elapsed_ms = kernel.seconds(kernel.now) * 1e3 - IDLE_TAIL_S * 1e3
    switchless_frac = enclave.stats.switchless_fraction()
    enclave.stop_backend()
    kernel.run()
    return {
        "mode": mode,
        "workload_ms": elapsed_ms,
        "cpu_pct_incl_idle_tail": cpu,
        "switchless_frac": switchless_frac,
    }


def test_switchless_design_space(benchmark):
    modes = ("no_sl", "hotcalls", "intel", "zc")
    rows = benchmark.pedantic(
        lambda: [run_mode(m) for m in modes], rounds=1, iterations=1
    )
    emit(
        "Baselines: HotCalls vs Intel switchless vs ZC-SWITCHLESS (kissdb)",
        format_table(
            ["mode", "workload_ms", "cpu_pct_incl_idle_tail", "switchless_frac"],
            [[r["mode"], r["workload_ms"], r["cpu_pct_incl_idle_tail"], r["switchless_frac"]] for r in rows],
            precision=2,
        ),
    )
    by_mode = {r["mode"]: r for r in rows}
    # Latency: every switchless design beats no_sl.
    for mode in ("hotcalls", "intel", "zc"):
        assert by_mode[mode]["workload_ms"] < by_mode["no_sl"]["workload_ms"]
    # HotCalls never falls back: every hot call is served switchlessly
    # (only the non-hot fopen/fclose pair per client transitions).
    assert by_mode["hotcalls"]["switchless_frac"] > 0.99
    # CPU including the idle tail: HotCalls burns responders forever,
    # zc releases its workers — the adaptive-waste story.
    assert by_mode["zc"]["cpu_pct_incl_idle_tail"] < by_mode["hotcalls"]["cpu_pct_incl_idle_tail"]
