"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``bench_*`` module reproduces one table/figure of the paper: it runs
the corresponding experiment at benchmark scale under pytest-benchmark,
prints the series the figure plots, and asserts the paper's qualitative
shape via the experiment's ``check_shape``.

Figure pairs that share runs (Fig. 8/9 and Fig. 11/12) communicate
through the session-scoped ``shared_results`` cache so the expensive runs
execute once.
"""

import pytest


@pytest.fixture(scope="session")
def shared_results():
    """Session-wide cache for experiment results shared across benches."""
    return {}


def emit(title: str, body: str) -> None:
    """Print a report block that survives pytest's capture (-s not needed
    for failures; use -s to always see it)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
