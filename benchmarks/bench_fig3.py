"""Bench: Fig. 3 — runtime vs. duration of g, per worker count."""

from benchmarks.conftest import emit
from repro.experiments import fig3


def test_fig3_g_duration_sweep(benchmark):
    result = benchmark.pedantic(
        fig3.run,
        kwargs={
            "total_calls": 6_000,
            "workers": (1, 3, 5),
            "g_sweep": (0, 100, 300, 500),
        },
        rounds=1,
        iterations=1,
    )
    emit("Fig. 3 g-duration sweep", fig3.report(result))
    assert fig3.check_shape(result) == []
