"""Extension bench: kissdb under skewed (Zipf) key distributions.

The paper writes sequential keys; production KV workloads are skewed.
Skew changes kissdb's ocall mix: hot keys are overwritten in place
(fseeko+fread compare, fseeko+fwrite value — no appends, no hash-table
growth), while uniform traffic keeps inserting fresh keys (appends +
table-slot writes).  This bench quantifies how the per-op cost and the
seek/write mix move with skew, under zc.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.experiments.common import build_stack, zc_spec
from repro.workloads.keydist import UniformKeys, ZipfKeys

N_OPS = 2_500
KEYSPACE = 2_000


def run_distribution(name: str) -> dict[str, float]:
    generator = (
        ZipfKeys(KEYSPACE, s=0.99, seed=11)
        if name == "zipf"
        else UniformKeys(KEYSPACE, seed=11)
    )
    stack = build_stack(zc_spec())
    kernel = stack.kernel
    enclave = stack.enclave
    db = KissDB(enclave, "/db", hash_table_size=256)

    def client():
        yield from db.open()
        for _ in range(N_OPS):
            yield from db.put(generator.next_key(), bytes(8))
        yield from db.close()

    kernel.join(kernel.spawn(client(), name="client"))
    elapsed_us_per_op = kernel.seconds(kernel.now) * 1e6 / N_OPS
    stats = enclave.stats.by_name
    stack.finish()
    return {
        "distribution": name,
        "op_us": elapsed_us_per_op,
        "fseeko": stats["fseeko"].calls,
        "fread": stats["fread"].calls,
        "fwrite": stats["fwrite"].calls,
        "pages": db.table_count,
        "db_bytes": stack.fs.size("/db"),
    }


def test_skewed_workloads(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_distribution(n) for n in ("uniform", "zipf")],
        rounds=1,
        iterations=1,
    )
    emit(
        "Extension: kissdb PUT workload under key skew (zc backend)",
        format_table(
            ["distribution", "op_us", "fseeko", "fread", "fwrite", "pages", "db_bytes"],
            [
                [r["distribution"], r["op_us"], r["fseeko"], r["fread"], r["fwrite"], r["pages"], r["db_bytes"]]
                for r in rows
            ],
            precision=2,
        ),
    )
    uniform, zipf = rows
    # Skew means mostly overwrites: fewer bytes on disk, fewer fwrites
    # (no slot-pointer writes for existing keys).
    assert zipf["db_bytes"] < uniform["db_bytes"]
    assert zipf["fwrite"] < uniform["fwrite"]
    # But more read-compares along collision chains of the hot slots.
    assert zipf["fread"] > 0
