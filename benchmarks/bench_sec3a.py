"""Bench: §III-A inline numbers (C1–C5 runtimes, 2 workers)."""

from benchmarks.conftest import emit
from repro.experiments import sec3a


def test_sec3a_config_ordering(benchmark):
    result = benchmark.pedantic(
        sec3a.run, kwargs={"total_calls": 20_000}, rounds=1, iterations=1
    )
    emit("§III-A synthetic configurations", sec3a.report(result))
    assert sec3a.check_shape(result) == []
