"""Ablation: the scheduler's worker-cost accounting (DESIGN.md §5b).

Runs the same two-caller hot ocall workload under the two
:class:`repro.core.SchedulerPolicy` variants:

- ``PAPER_FORMULA`` (§IV-A verbatim) prices one worker at a full
  micro-quantum, which two callers' fallbacks can rarely outweigh — the
  scheduler converges to ~0 workers and most calls transition;
- ``IDLE_WASTE`` (our default) prices only measured busy-wait cycles and
  reproduces the paper's observed steady state of 2 workers.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.api import make_backend
from repro.core import SchedulerPolicy, ZcConfig
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine


def run_policy(policy: SchedulerPolicy) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler():
        yield Compute(800, tag="host-f")
        return None

    urts.register("f", handler)
    backend = make_backend("zc", ZcConfig(policy=policy))
    enclave.set_backend(backend)
    horizon = kernel.cycles(0.12)

    def caller():
        while kernel.now < horizon:
            yield Compute(1_000, tag="app")
            yield from enclave.ocall("f")

    threads = [kernel.spawn(caller(), name=f"caller-{i}") for i in range(2)]
    kernel.join(*threads)
    stats = backend.stats
    mean_workers = stats.mean_worker_count(kernel.now)
    throughput = stats.total_calls / kernel.seconds(kernel.now)
    backend.stop()
    return {
        "policy": policy.value,
        "mean_workers": mean_workers,
        "switchless_frac": stats.switchless_fraction(),
        "calls_per_s": throughput,
    }


def test_scheduler_policy_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_policy(p) for p in SchedulerPolicy], rounds=1, iterations=1
    )
    emit(
        "Ablation: scheduler worker-cost policy (2 hot callers)",
        format_table(
            ["policy", "mean_workers", "switchless_frac", "calls_per_s"],
            [[r["policy"], r["mean_workers"], r["switchless_frac"], r["calls_per_s"]] for r in rows],
            precision=2,
        ),
    )
    by_policy = {r["policy"]: r for r in rows}
    strict = by_policy["paper-formula"]
    idle = by_policy["idle-waste"]
    # The strict formula is worker-averse; idle-waste holds ~2 workers.
    assert strict["mean_workers"] < 1.0
    assert idle["mean_workers"] > 1.5
    # Which translates into far more switchless executions and throughput.
    assert idle["switchless_frac"] > strict["switchless_frac"] + 0.25
    assert idle["calls_per_s"] > strict["calls_per_s"]
