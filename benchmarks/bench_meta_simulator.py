"""Meta-bench: host-side throughput of the simulator itself.

Unlike the figure benches (whose *simulated* times are deterministic and
measured in cycles), this one times the simulator's host performance —
how many ocalls and scheduler events per wall-clock second the DES kernel
sustains.  It guards against performance regressions in the kernel's hot
paths (dispatch, spin interrupts, accounting), which directly bound how
large a workload the figure benches can afford.

The telemetry guards at the bottom are plain tests (no ``benchmark``
fixture) so they also run under a bare ``pytest`` invocation: attaching a
:class:`~repro.telemetry.TelemetrySession` must not perturb the simulated
outcome, and must cost less than 10% extra host time.

Run as a script (``python benchmarks/bench_meta_simulator.py``) it emits
``BENCH_meta.json`` — kernel events/s and ocalls/s for the regular and
switchless storms (single loop and a slice-parallel aggregate arm that
forks one storm per worker, the same scale-out model as ``repro serve
bench --slices``), plus serial-vs-parallel wall time of a small cell
suite — which CI uploads as an artifact to track host-side throughput
over time.

``--baseline baselines/meta.json`` turns the run into a gate: simulated
outcomes (``events_processed``) must match the committed baseline
exactly, single-loop throughput must stay within the tolerance band, and
the aggregate arm must hold the kernel overhaul's ≥5× events/s claim
against the recorded ``pre_overhaul`` reference.  Throughput gates are
machine-relative: compare on the same runner class that produced the
baseline (the tolerance band absorbs runner noise, not architecture
changes).
"""

import argparse
import gc
import json
import sys
import time

from repro.api import make_backend
from repro.core import ZcConfig
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine
from repro.telemetry import TelemetrySession

N_OCALLS = 3_000


def simulate_ocall_storm(use_zc: bool, session: TelemetrySession | None = None) -> Kernel:
    kernel = Kernel(paper_machine())
    capture = session.attach(kernel, label="storm") if session is not None else None
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))
    if capture is not None:
        capture.bind_enclave(enclave)

    def handler():
        yield Compute(500)
        return None

    urts.register("f", handler)

    def app():
        for _ in range(N_OCALLS // 2):
            yield from enclave.ocall("f")

    threads = [kernel.spawn(app(), name=f"a{i}") for i in range(2)]
    kernel.join(*threads)
    enclave.stop_backend()
    kernel.run()
    if capture is not None:
        capture.finalize()
    return kernel


def test_regular_path_throughput(benchmark):
    kernel = benchmark(simulate_ocall_storm, False)
    # The regular path is O(1) simulator events per ocall.
    assert kernel.events_processed < 12 * N_OCALLS


def test_switchless_path_throughput(benchmark):
    kernel = benchmark(simulate_ocall_storm, True)
    # The switchless handshake costs a few more events per call but must
    # stay O(1): no per-pause event explosions.
    assert kernel.events_processed < 25 * N_OCALLS


# ----------------------------------------------------------------------
# Telemetry guards (plain tests, no benchmark fixture)
# ----------------------------------------------------------------------
def test_disabled_runs_carry_no_instrumentation():
    # With no session, the hot path pays a single ``is None`` check: no
    # bus, no ledger, nothing recorded — a disabled run executes the same
    # code the seed did, so its host time stays within noise of the seed.
    kernel = simulate_ocall_storm(True)
    assert kernel.bus is None
    assert kernel.sched_bus is None
    assert kernel.ledger is None
    assert all(thread.ledger_cells is None for thread in kernel.threads)


def test_telemetry_preserves_simulation():
    baseline = simulate_ocall_storm(True)
    with TelemetrySession() as session:
        instrumented = simulate_ocall_storm(True, session=session)
    # Observation must not perturb the simulated outcome.
    assert instrumented.now == baseline.now
    assert instrumented.events_processed == baseline.events_processed
    capture = session.captures[0]
    capture.assert_balanced()
    assert len(capture.events) > 0


def test_telemetry_host_overhead_under_ten_percent():
    # Compare minima of interleaved runs: CPU time is one-sided noise
    # (contention only ever adds), so min-of-N approximates the
    # uncontended cost of each arm, and interleaving keeps slow drift of
    # the host from landing on one arm only.
    def disabled() -> None:
        simulate_ocall_storm(True)

    def enabled() -> None:
        with TelemetrySession() as session:
            simulate_ocall_storm(True, session=session)

    disabled()
    enabled()  # warm up allocators / code paths
    disabled_s = enabled_s = float("inf")
    # Freeze the cyclic GC while timing: collections land on whichever
    # arm happens to cross the allocation threshold, adding variance but
    # no signal (the enabled/disabled ratio is unchanged with GC off —
    # telemetry's recorders hold scalars, not cycles).
    gc.collect()
    gc.disable()
    try:
        # One round rarely gives both arms a contention-free run on a busy
        # host; keep accumulating minima (one-sided noise only shrinks
        # them) and only fail once extra rounds no longer help.
        for _ in range(3):
            for _ in range(9):
                t0 = time.process_time()
                disabled()
                disabled_s = min(disabled_s, time.process_time() - t0)
                t0 = time.process_time()
                enabled()
                enabled_s = min(enabled_s, time.process_time() - t0)
            if enabled_s < 1.10 * disabled_s:
                break
    finally:
        gc.enable()
    assert enabled_s < 1.10 * disabled_s, (
        f"telemetry overhead {enabled_s / disabled_s - 1:.1%} exceeds 10% "
        f"({enabled_s * 1e3:.1f}ms vs {disabled_s * 1e3:.1f}ms)"
    )


def test_baseline_gate_violation_paths():
    baseline = {
        "throughput": {
            "regular": {"events_processed": 100, "events_per_s": 1000.0}
        },
        "pre_overhaul": {"regular": {"events_per_s": 200.0}},
    }
    good = {
        "throughput": {
            "regular": {"events_processed": 100, "events_per_s": 950.0}
        },
        "aggregate": {"regular": {"events_per_s": 1200.0}},
    }
    assert check_baseline(good, baseline, tolerance=0.1, min_speedup=5.0) == []

    drifted = {
        "throughput": {
            "regular": {"events_processed": 101, "events_per_s": 950.0}
        },
        "aggregate": {"regular": {"events_per_s": 1200.0}},
    }
    (violation,) = check_baseline(drifted, baseline, 0.1, 0.0)
    assert "simulation changed" in violation

    slow = {
        "throughput": {
            "regular": {"events_processed": 100, "events_per_s": 500.0}
        },
        "aggregate": {"regular": {"events_per_s": 400.0}},
    }
    messages = check_baseline(slow, baseline, 0.1, 5.0)
    assert any("tolerance floor" in m for m in messages)
    assert any("pre-overhaul" in m for m in messages)
    # --min-speedup 0 (single-core escape) drops only the speedup gate.
    assert len(check_baseline(slow, baseline, 0.1, 0.0)) == 1


# ----------------------------------------------------------------------
# Script mode: emit BENCH_meta.json for the CI artifact
# ----------------------------------------------------------------------
def _best_of(fn, repeats: int) -> float:
    """Min-of-N wall seconds (host noise is one-sided: it only adds)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _suite_specs():
    """A small mixed-grid cell list for the serial-vs-parallel timing."""
    from repro.experiments import fig7, sec5d

    return fig7.cells(sizes=(512, 4096, 32_768), ops=60) + sec5d.cells(
        record_sizes=(4_096, 16_384), records=60
    )


def _storm_events(use_zc: bool) -> int:
    """Fork-pool entry for the aggregate arm (module-level: picklable)."""
    return simulate_ocall_storm(use_zc).events_processed


def _aggregate_arm(use_zc: bool, workers: int) -> dict:
    """Fork ``workers`` storms concurrently; aggregate events over wall.

    This is the meta-bench view of slice-parallel simulation: independent
    kernels on separate processes, exactly like ``repro serve bench
    --slices N`` partitions independent shards.  Aggregate throughput is
    total events across every worker divided by the batch's wall time.
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    started = time.perf_counter()
    with context.Pool(processes=workers) as pool:
        events = pool.map(_storm_events, [use_zc] * workers)
    wall = time.perf_counter() - started
    return {
        "workers": workers,
        "wall_seconds": wall,
        "events_processed": sum(events),
        "events_per_s": sum(events) / wall,
        "ocalls_per_s": workers * N_OCALLS / wall,
    }


def check_baseline(
    payload: dict, baseline: dict, tolerance: float, min_speedup: float
) -> list[str]:
    """Gate a fresh meta-bench payload against the committed baseline.

    Returns violation messages (empty = pass):

    - ``events_processed`` must match the baseline *exactly* — the storm
      is deterministic, so any drift is a simulation-semantics change;
    - single-loop ``events_per_s`` must stay within ``tolerance``
      (relative) of the baseline — a host-performance regression band;
    - the aggregate arm must beat the baseline's ``pre_overhaul``
      reference by ``min_speedup`` (the PR's headline claim, re-proven on
      every CI run; pass 0 to skip, e.g. on single-core boxes).
    """
    violations: list[str] = []
    for arm, recorded in baseline.get("throughput", {}).items():
        fresh = payload["throughput"].get(arm)
        if fresh is None:
            violations.append(f"{arm}: arm missing from this run")
            continue
        if fresh["events_processed"] != recorded["events_processed"]:
            violations.append(
                f"{arm}: events_processed {fresh['events_processed']} != "
                f"baseline {recorded['events_processed']} (simulation changed!)"
            )
        floor = recorded["events_per_s"] * (1 - tolerance)
        if fresh["events_per_s"] < floor:
            violations.append(
                f"{arm}: {fresh['events_per_s']:,.0f} events/s below the "
                f"tolerance floor {floor:,.0f} "
                f"(baseline {recorded['events_per_s']:,.0f}, tol {tolerance:.0%})"
            )
    if min_speedup > 0:
        for arm, reference in baseline.get("pre_overhaul", {}).items():
            aggregate = payload.get("aggregate", {}).get(arm)
            if aggregate is None:
                violations.append(f"{arm}: no aggregate arm to prove speedup")
                continue
            speedup = aggregate["events_per_s"] / reference["events_per_s"]
            if speedup < min_speedup:
                violations.append(
                    f"{arm}: aggregate {aggregate['events_per_s']:,.0f} events/s "
                    f"is only {speedup:.1f}x the pre-overhaul "
                    f"{reference['events_per_s']:,.0f} (need {min_speedup:g}x)"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    """Measure simulator host throughput and write the JSON artifact."""
    from repro.parallel import resolve_jobs, run_cells

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_meta.json", help="output file")
    parser.add_argument("--jobs", default="auto", help="parallel-arm worker count")
    parser.add_argument("--repeats", type=int, default=3, help="min-of-N rounds")
    parser.add_argument(
        "--workers",
        default="auto",
        help="aggregate-arm fork count ('auto' = CPU count, 0 = skip)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate against a committed baselines/meta.json (exit 1 on drift)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative single-loop throughput band for --baseline (default 0.5)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="aggregate-vs-pre_overhaul speedup --baseline requires "
        "(default 5.0; 0 skips, e.g. on single-core boxes)",
    )
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    workers = 0 if args.workers in ("0", 0) else resolve_jobs(args.workers)

    throughput = {}
    aggregate = {}
    for name, use_zc in (("regular", False), ("switchless", True)):
        kernel = simulate_ocall_storm(use_zc)  # warm-up, and keeps the counts
        wall = _best_of(lambda use_zc=use_zc: simulate_ocall_storm(use_zc), args.repeats)
        throughput[name] = {
            "wall_seconds": wall,
            "events_processed": kernel.events_processed,
            "events_per_s": kernel.events_processed / wall,
            "ocalls_per_s": N_OCALLS / wall,
        }
        if workers:
            aggregate[name] = _aggregate_arm(use_zc, workers)

    specs = _suite_specs()
    serial_wall = _best_of(lambda: run_cells(specs, jobs=1), 1)
    parallel_wall = _best_of(lambda: run_cells(specs, jobs=jobs), 1)
    from repro.telemetry.schema import stamp

    payload = {
        **stamp("bench-meta"),
        "n_ocalls": N_OCALLS,
        "throughput": throughput,
        "aggregate": aggregate,
        "suite": {
            "cells": len(specs),
            "jobs": jobs,
            "serial_wall_seconds": serial_wall,
            "parallel_wall_seconds": parallel_wall,
            "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        },
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    if args.baseline is not None:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        violations = check_baseline(
            payload, baseline, args.tolerance, args.min_speedup
        )
        if violations:
            print(f"meta baseline gate: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(f"meta baseline gate: OK (vs {args.baseline})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
