"""Meta-bench: host-side throughput of the simulator itself.

Unlike the figure benches (whose *simulated* times are deterministic and
measured in cycles), this one times the simulator's host performance —
how many ocalls and scheduler events per wall-clock second the DES kernel
sustains.  It guards against performance regressions in the kernel's hot
paths (dispatch, spin interrupts, accounting), which directly bound how
large a workload the figure benches can afford.
"""

from repro.core import ZcConfig, ZcSwitchlessBackend
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine

N_OCALLS = 3_000


def simulate_ocall_storm(use_zc: bool) -> int:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(ZcSwitchlessBackend(ZcConfig(enable_scheduler=False)))

    def handler():
        yield Compute(500)
        return None

    urts.register("f", handler)

    def app():
        for _ in range(N_OCALLS // 2):
            yield from enclave.ocall("f")

    threads = [kernel.spawn(app(), name=f"a{i}") for i in range(2)]
    kernel.join(*threads)
    enclave.stop_backend()
    kernel.run()
    return kernel.events_processed


def test_regular_path_throughput(benchmark):
    events = benchmark(simulate_ocall_storm, False)
    # The regular path is O(1) simulator events per ocall.
    assert events < 12 * N_OCALLS


def test_switchless_path_throughput(benchmark):
    events = benchmark(simulate_ocall_storm, True)
    # The switchless handshake costs a few more events per call but must
    # stay O(1): no per-pause event explosions.
    assert events < 25 * N_OCALLS
