"""Meta-bench: host-side throughput of the simulator itself.

Unlike the figure benches (whose *simulated* times are deterministic and
measured in cycles), this one times the simulator's host performance —
how many ocalls and scheduler events per wall-clock second the DES kernel
sustains.  It guards against performance regressions in the kernel's hot
paths (dispatch, spin interrupts, accounting), which directly bound how
large a workload the figure benches can afford.

The telemetry guards at the bottom are plain tests (no ``benchmark``
fixture) so they also run under a bare ``pytest`` invocation: attaching a
:class:`~repro.telemetry.TelemetrySession` must not perturb the simulated
outcome, and must cost less than 10% extra host time.

Run as a script (``python benchmarks/bench_meta_simulator.py``) it emits
``BENCH_meta.json`` — kernel events/s and ocalls/s for the regular and
switchless storms plus serial-vs-parallel wall time of a small cell suite
— which CI uploads as an artifact to track host-side throughput over
time.
"""

import argparse
import gc
import json
import sys
import time

from repro.api import make_backend
from repro.core import ZcConfig
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine
from repro.telemetry import TelemetrySession

N_OCALLS = 3_000


def simulate_ocall_storm(use_zc: bool, session: TelemetrySession | None = None) -> Kernel:
    kernel = Kernel(paper_machine())
    capture = session.attach(kernel, label="storm") if session is not None else None
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))
    if capture is not None:
        capture.bind_enclave(enclave)

    def handler():
        yield Compute(500)
        return None

    urts.register("f", handler)

    def app():
        for _ in range(N_OCALLS // 2):
            yield from enclave.ocall("f")

    threads = [kernel.spawn(app(), name=f"a{i}") for i in range(2)]
    kernel.join(*threads)
    enclave.stop_backend()
    kernel.run()
    if capture is not None:
        capture.finalize()
    return kernel


def test_regular_path_throughput(benchmark):
    kernel = benchmark(simulate_ocall_storm, False)
    # The regular path is O(1) simulator events per ocall.
    assert kernel.events_processed < 12 * N_OCALLS


def test_switchless_path_throughput(benchmark):
    kernel = benchmark(simulate_ocall_storm, True)
    # The switchless handshake costs a few more events per call but must
    # stay O(1): no per-pause event explosions.
    assert kernel.events_processed < 25 * N_OCALLS


# ----------------------------------------------------------------------
# Telemetry guards (plain tests, no benchmark fixture)
# ----------------------------------------------------------------------
def test_disabled_runs_carry_no_instrumentation():
    # With no session, the hot path pays a single ``is None`` check: no
    # bus, no ledger, nothing recorded — a disabled run executes the same
    # code the seed did, so its host time stays within noise of the seed.
    kernel = simulate_ocall_storm(True)
    assert kernel.bus is None
    assert kernel.sched_bus is None
    assert kernel.ledger is None
    assert all(thread.ledger_cells is None for thread in kernel.threads)


def test_telemetry_preserves_simulation():
    baseline = simulate_ocall_storm(True)
    with TelemetrySession() as session:
        instrumented = simulate_ocall_storm(True, session=session)
    # Observation must not perturb the simulated outcome.
    assert instrumented.now == baseline.now
    assert instrumented.events_processed == baseline.events_processed
    capture = session.captures[0]
    capture.assert_balanced()
    assert len(capture.events) > 0


def test_telemetry_host_overhead_under_ten_percent():
    # Compare minima of interleaved runs: CPU time is one-sided noise
    # (contention only ever adds), so min-of-N approximates the
    # uncontended cost of each arm, and interleaving keeps slow drift of
    # the host from landing on one arm only.
    def disabled() -> None:
        simulate_ocall_storm(True)

    def enabled() -> None:
        with TelemetrySession() as session:
            simulate_ocall_storm(True, session=session)

    disabled()
    enabled()  # warm up allocators / code paths
    disabled_s = enabled_s = float("inf")
    # Freeze the cyclic GC while timing: collections land on whichever
    # arm happens to cross the allocation threshold, adding variance but
    # no signal (the enabled/disabled ratio is unchanged with GC off —
    # telemetry's recorders hold scalars, not cycles).
    gc.collect()
    gc.disable()
    try:
        # One round rarely gives both arms a contention-free run on a busy
        # host; keep accumulating minima (one-sided noise only shrinks
        # them) and only fail once extra rounds no longer help.
        for _ in range(3):
            for _ in range(9):
                t0 = time.process_time()
                disabled()
                disabled_s = min(disabled_s, time.process_time() - t0)
                t0 = time.process_time()
                enabled()
                enabled_s = min(enabled_s, time.process_time() - t0)
            if enabled_s < 1.10 * disabled_s:
                break
    finally:
        gc.enable()
    assert enabled_s < 1.10 * disabled_s, (
        f"telemetry overhead {enabled_s / disabled_s - 1:.1%} exceeds 10% "
        f"({enabled_s * 1e3:.1f}ms vs {disabled_s * 1e3:.1f}ms)"
    )


# ----------------------------------------------------------------------
# Script mode: emit BENCH_meta.json for the CI artifact
# ----------------------------------------------------------------------
def _best_of(fn, repeats: int) -> float:
    """Min-of-N wall seconds (host noise is one-sided: it only adds)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _suite_specs():
    """A small mixed-grid cell list for the serial-vs-parallel timing."""
    from repro.experiments import fig7, sec5d

    return fig7.cells(sizes=(512, 4096, 32_768), ops=60) + sec5d.cells(
        record_sizes=(4_096, 16_384), records=60
    )


def main(argv: list[str] | None = None) -> int:
    """Measure simulator host throughput and write the JSON artifact."""
    from repro.parallel import resolve_jobs, run_cells

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_meta.json", help="output file")
    parser.add_argument("--jobs", default="auto", help="parallel-arm worker count")
    parser.add_argument("--repeats", type=int, default=3, help="min-of-N rounds")
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)

    throughput = {}
    for name, use_zc in (("regular", False), ("switchless", True)):
        kernel = simulate_ocall_storm(use_zc)  # warm-up, and keeps the counts
        wall = _best_of(lambda use_zc=use_zc: simulate_ocall_storm(use_zc), args.repeats)
        throughput[name] = {
            "wall_seconds": wall,
            "events_processed": kernel.events_processed,
            "events_per_s": kernel.events_processed / wall,
            "ocalls_per_s": N_OCALLS / wall,
        }

    specs = _suite_specs()
    serial_wall = _best_of(lambda: run_cells(specs, jobs=1), 1)
    parallel_wall = _best_of(lambda: run_cells(specs, jobs=jobs), 1)
    from repro.telemetry.schema import stamp

    payload = {
        **stamp("bench-meta"),
        "n_ocalls": N_OCALLS,
        "throughput": throughput,
        "suite": {
            "cells": len(specs),
            "jobs": jobs,
            "serial_wall_seconds": serial_wall,
            "parallel_wall_seconds": parallel_wall,
            "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        },
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
