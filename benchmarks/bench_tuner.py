"""Bench: SGXTuner-style auto-tuning vs ZC-SWITCHLESS.

Uses the simulator as the evaluator: every annealing probe re-runs the
kissdb workload under a candidate Intel configuration.  The punchline
mirrors the paper's thesis — the tuned static configuration is good, but
it costs dozens of full workload runs to find, while zc lands in the same
neighbourhood with zero configuration and zero search.
"""

import random

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, paper_machine
from repro.tuner import ConfigGenome, SimulatedAnnealingTuner, TuningSpace

N_KEYS = 600
CANDIDATES = frozenset({"fseeko", "fread", "fwrite", "ftell"})
BUDGET = 24


def run_kissdb(backend) -> float:
    """Simulated seconds for the kissdb SET workload under ``backend``."""
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if backend is not None:
        enclave.set_backend(backend)

    def client():
        db = KissDB(enclave, "/db", hash_table_size=128)
        yield from db.open()
        for i in range(N_KEYS):
            yield from db.put(i.to_bytes(8, "big"), bytes(8))
        yield from db.close()

    kernel.join(kernel.spawn(client(), name="client"))
    elapsed = kernel.seconds(kernel.now)
    enclave.stop_backend()
    kernel.run()
    return elapsed


def evaluate(genome: ConfigGenome) -> float:
    return run_kissdb(make_backend("intel", genome.to_config()))


def test_autotuner_vs_zero_config(benchmark):
    def tune_and_compare():
        space = TuningSpace(CANDIDATES, max_workers=4, rng=random.Random(2023))
        tuner = SimulatedAnnealingTuner(space, rng=random.Random(7))
        baseline = run_kissdb(None)
        default_cost = evaluate(space.default_genome())
        result = tuner.tune(evaluate, budget=BUDGET)
        zc_cost = run_kissdb(make_backend("zc", ZcConfig()))
        return baseline, default_cost, result, zc_cost

    baseline, default_cost, result, zc_cost = benchmark.pedantic(
        tune_and_compare, rounds=1, iterations=1
    )
    emit(
        "SGXTuner-style annealing vs zc (kissdb, %d evaluations)" % result.evaluations,
        format_table(
            ["configuration", "runtime_ms", "workload_runs_needed"],
            [
                ["no switchless", baseline * 1e3, 0],
                ["Intel, naive default", default_cost * 1e3, 0],
                [f"Intel, tuned: {result.best.describe()}", result.best_cost * 1e3, result.evaluations],
                ["zc (no configuration)", zc_cost * 1e3, 0],
            ],
            precision=2,
        ),
    )
    # Tuning improves on the naive default...
    assert result.best_cost <= default_cost
    # ...but needed a search; zc lands within 1.5x of the tuned optimum
    # (and beats the untuned baseline) with zero configuration runs.
    assert zc_cost < baseline
    assert zc_cost < 1.5 * result.best_cost
