"""Bench: Fig. 2 — synthetic runtime vs. Intel worker count, C1–C5."""

from benchmarks.conftest import emit
from repro.experiments import fig2


def test_fig2_worker_sweep(benchmark):
    result = benchmark.pedantic(
        fig2.run, kwargs={"total_calls": 10_000}, rounds=1, iterations=1
    )
    emit("Fig. 2 worker sweep", fig2.report(result))
    assert fig2.check_shape(result) == []
