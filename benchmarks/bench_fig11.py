"""Bench: Fig. 11 — lmbench dynamic throughput."""

from benchmarks.conftest import emit
from repro.experiments import fig11


def test_fig11_dynamic_throughput(benchmark, shared_results):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    shared_results["fig11"] = result
    emit("Fig. 11 lmbench dynamic throughput", fig11.report(result))
    assert fig11.check_shape(result) == []
