"""Extension bench: enclave pooling for serverless-style invocations.

The paper's §V-D context is confidential serverless [14], and its related
work cites SGXPool [13] for the cost of enclave *creation*.  This bench
quantifies that story: N function invocations, each needing an enclave
for a short burst of work — cold-created per invocation vs. taken from a
pre-created pool.  Creation (ECREATE + per-page EADD/EEXTEND + EINIT)
dominates small invocations by orders of magnitude.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.lifecycle import create_enclave, destroy_enclave, pooled_acquire_cycles
from repro.sim import Compute, Kernel, paper_machine

N_INVOCATIONS = 30
HEAP_BYTES = 8 * 1024 * 1024
FUNCTION_WORK_CYCLES = 500_000.0  # ~130 us of enclave compute per call


def run_mode(pooled: bool) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()

    def serverless_host():
        if pooled:
            # One warm-up creation, then every invocation reuses the pool.
            enclave = Enclave(kernel, urts, heap_bytes=HEAP_BYTES, name="pooled")
            yield from create_enclave(enclave)
            for _ in range(N_INVOCATIONS):
                yield Compute(pooled_acquire_cycles(), tag="pool-acquire")
                yield from enclave.ecall(_function(kernel))
            yield from destroy_enclave(enclave)
        else:
            for i in range(N_INVOCATIONS):
                enclave = Enclave(
                    kernel, urts, heap_bytes=HEAP_BYTES, name=f"cold-{i}"
                )
                yield from create_enclave(enclave)
                yield from enclave.ecall(_function(kernel))
                yield from destroy_enclave(enclave)

    kernel.join(kernel.spawn(serverless_host(), name="host"))
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    return {
        "mode": "pooled" if pooled else "cold-per-invocation",
        "total_ms": elapsed_ms,
        "ms_per_invocation": elapsed_ms / N_INVOCATIONS,
    }


def _function(kernel):
    def body():
        yield Compute(FUNCTION_WORK_CYCLES, tag="function")
        return None

    return body()


def test_enclave_pooling(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode(False), run_mode(True)], rounds=1, iterations=1
    )
    emit(
        "Extension: serverless invocations — cold enclave creation vs pooling "
        f"({N_INVOCATIONS} invocations, {HEAP_BYTES // (1024 * 1024)} MB heap)",
        format_table(
            ["mode", "total_ms", "ms_per_invocation"],
            [[r["mode"], r["total_ms"], r["ms_per_invocation"]] for r in rows],
            precision=3,
        ),
    )
    cold, pooled = rows
    # SGXPool's [13] raison d'etre: pooling amortises creation to near
    # the pure function cost — at least 10x per invocation here.
    assert pooled["ms_per_invocation"] < cold["ms_per_invocation"] / 10