"""Ablation: hyperthreading contention.

The evaluation machine has 4 physical cores / 8 hardware threads; busy-
waiting switchless workers share physical cores with enclave threads.
This bench re-runs the §III synthetic benchmark with the SMT slowdown
model disabled (``smt_factor = 1.0``) to quantify how much of the
switchless-worker cost is hyperthread interference.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.sim import paper_machine
from repro.workloads.synthetic import SyntheticSpec, run_synthetic

SPEC = SyntheticSpec(total_calls=8_000, g_pauses=300)


def run_smt(smt_factor: float) -> dict[str, float]:
    machine = paper_machine(smt_factor=smt_factor)
    c1 = run_synthetic("C1", 2, SPEC, machine)
    c4 = run_synthetic("C4", 4, SPEC, machine)
    return {
        "smt_factor": smt_factor,
        "C1_s": c1.elapsed_seconds,
        "C4_s": c4.elapsed_seconds,
    }


def test_smt_contention_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_smt(f) for f in (1.0, 0.62)], rounds=1, iterations=1
    )
    emit(
        "Ablation: SMT contention (synthetic benchmark)",
        format_table(
            ["smt_factor", "C1_s", "C4_s"],
            [[r["smt_factor"], r["C1_s"], r["C4_s"]] for r in rows],
            precision=4,
        ),
    )
    ideal = rows[0]
    real = rows[1]
    # Hyperthread contention slows both configurations measurably.
    assert real["C1_s"] > ideal["C1_s"] * 1.1
    assert real["C4_s"] > ideal["C4_s"] * 1.1
