"""Bench: §V-D — zc-memcpy impact on inter-enclave SSL transfers."""

from benchmarks.conftest import emit
from repro.experiments import sec5d


def test_sec5d_interenclave_transfers(benchmark):
    result = benchmark.pedantic(sec5d.run, rounds=1, iterations=1)
    emit("§V-D inter-enclave SSL transfers", sec5d.report(result))
    assert sec5d.check_shape(result) == []
