"""Extension bench: zc on the paper's own motivating benchmark.

§III-A shows that choosing the wrong static configuration (C2) costs
~1.8x versus the right one (C1).  The paper's remedy is to stop choosing:
this bench runs ZC-SWITCHLESS on the identical f/g workload with *no*
configuration at all and places it among C1–C5 — the whole pitch in one
table.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.workloads.synthetic import SyntheticSpec, run_synthetic

SPEC = SyntheticSpec(total_calls=12_000, g_pauses=500)
CONFIGS = ("C1", "C2", "C3", "C4", "C5", "zc")


def test_zc_on_the_motivating_benchmark(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_synthetic(config, 2, SPEC) for config in CONFIGS],
        rounds=1,
        iterations=1,
    )
    emit(
        "Extension: zc vs the C1-C5 static configurations (no config needed)",
        format_table(
            ["config", "elapsed_s", "switchless", "fallback", "regular"],
            [
                [r.config, r.elapsed_seconds, r.switchless_calls, r.fallback_calls, r.regular_calls]
                for r in rows
            ],
            precision=4,
        ),
    )
    by_config = {r.config: r.elapsed_seconds for r in rows}
    # zc avoids the misconfiguration cliff entirely: it beats the worst
    # static configurations without anyone choosing anything.
    assert by_config["zc"] < by_config["C2"]
    assert by_config["zc"] < by_config["C4"]
    # And it lands in the neighbourhood of the best static choice.
    assert by_config["zc"] < 1.6 * by_config["C1"]