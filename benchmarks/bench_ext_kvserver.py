"""Extension bench: the in-enclave KV service under switchless boundaries.

Request threads ecall into the enclave; the enclave WAL-persists a third
of the requests via ocalls.  The bench measures request throughput under
(a) full transitions, (b) zc on ocalls only, and (c) zc on both
directions.

The instructive outcome: the *ecall* boundary is hot (every request) and
gains ~1.5x, while the WAL-ocall boundary is cold (one call per ~10 µs)
— too sparse to justify a dedicated spinning worker, so the zc scheduler
correctly keeps ~0 ocall workers and (b) is a wash.  Per-boundary call
rates, not developer intuition, decide where switchless pays — measured
by the scheduler at runtime.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KvClient, KvServerEnclave
from repro.api import make_backend
from repro.core import ZcConfig, ZcEcallRuntime
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine

N_REQUESTS = 6_000
N_CLIENTS = 2
ZC = ZcConfig(quantum_seconds=0.002)


def run_mode(mode: str) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode in ("zc-ocalls", "zc-both"):
        enclave.set_backend(make_backend("zc", ZC))
    if mode == "zc-both":
        ZcEcallRuntime(ZC).attach(enclave)
    server = KvServerEnclave(enclave)
    client = KvClient(enclave)

    def starter():
        yield from server.start()

    kernel.join(kernel.spawn(starter(), name="starter"))
    start = kernel.now

    def request_thread(index: int):
        for i in range(N_REQUESTS // N_CLIENTS):
            yield Compute(1_200, tag="request-parse")
            key = f"k{(index * 31 + i) % 64}".encode()
            if i % 3 == 0:
                yield from client.set(key, i.to_bytes(8, "big"))
            else:
                yield from client.get(key)

    threads = [
        kernel.spawn(request_thread(i), name=f"req-{i}") for i in range(N_CLIENTS)
    ]
    kernel.join(*threads)
    elapsed_s = kernel.seconds(kernel.now - start)

    def finisher():
        yield from server.stop()

    kernel.join(kernel.spawn(finisher(), name="finisher"))
    enclave.stop_backend()
    kernel.run()
    return {
        "mode": mode,
        "kreq_per_s": N_REQUESTS / elapsed_s / 1e3,
        "sl_ecalls": enclave.ecall_stats.total_switchless,
        "sl_ocalls": enclave.stats.total_switchless,
    }


def test_kv_service_boundaries(benchmark):
    modes = ("regular", "zc-ocalls", "zc-both")
    rows = benchmark.pedantic(
        lambda: [run_mode(m) for m in modes], rounds=1, iterations=1
    )
    emit(
        "Extension: KV service request throughput by switchless boundary",
        format_table(
            ["mode", "kreq_per_s", "sl_ecalls", "sl_ocalls"],
            [[r["mode"], r["kreq_per_s"], r["sl_ecalls"], r["sl_ocalls"]] for r in rows],
            precision=1,
        ),
    )
    by_mode = {r["mode"]: r for r in rows}
    # The hot ecall boundary dominates: zc-both is the clear winner.
    assert by_mode["zc-both"]["kreq_per_s"] > 1.3 * by_mode["regular"]["kreq_per_s"]
    assert by_mode["zc-both"]["kreq_per_s"] > by_mode["zc-ocalls"]["kreq_per_s"]
    assert by_mode["zc-both"]["sl_ecalls"] > 0.7 * N_REQUESTS
    # The cold WAL-ocall boundary alone is a wash: the scheduler refuses
    # to burn a worker on ~1 call per 10 us, so (b) stays within a few
    # percent of plain transitions instead of regressing.
    assert (
        abs(by_mode["zc-ocalls"]["kreq_per_s"] - by_mode["regular"]["kreq_per_s"])
        < 0.1 * by_mode["regular"]["kreq_per_s"]
    )