"""Ablation: the ZC scheduler quantum ``Q`` (paper: 10 ms, set
empirically).

A shorter quantum re-probes more often — faster adaptation to load
changes, but a larger share of time spent in configuration-phase probes
(whose i=0 micro-quanta force fallbacks).  A longer quantum amortises the
probes but reacts sluggishly.  This bench sweeps ``Q`` under a square-wave
load (busy burst, idle gap) and reports switchless coverage and CPU cost.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import ProcStat
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, Sleep, paper_machine

QUANTA_MS = (2.0, 10.0, 50.0)


def run_quantum(quantum_ms: float) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler():
        yield Compute(800, tag="host-f")
        return None

    urts.register("f", handler)
    backend = make_backend("zc", ZcConfig(quantum_seconds=quantum_ms / 1000.0))
    enclave.set_backend(backend)

    burst = kernel.cycles(0.015)
    gap = kernel.cycles(0.015)

    def caller():
        for _ in range(4):  # 4 bursts of calls separated by idle gaps
            burst_end = kernel.now + burst
            while kernel.now < burst_end:
                yield Compute(1_000, tag="app")
                yield from enclave.ocall("f")
            yield Sleep(gap)

    stat = ProcStat(kernel)
    start = stat.sample()
    threads = [kernel.spawn(caller(), name=f"caller-{i}") for i in range(2)]
    kernel.join(*threads)
    usage = stat.usage_between(start, stat.sample()).usage_pct
    stats = backend.stats
    backend.stop()
    return {
        "quantum_ms": quantum_ms,
        "switchless_frac": stats.switchless_fraction(),
        "cpu_pct": usage,
        "decisions": stats.scheduler_decisions,
    }


def test_quantum_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_quantum(q) for q in QUANTA_MS], rounds=1, iterations=1
    )
    emit(
        "Ablation: ZC scheduler quantum sweep (square-wave load)",
        format_table(
            ["quantum_ms", "switchless_frac", "cpu_pct", "decisions"],
            [[r["quantum_ms"], r["switchless_frac"], r["cpu_pct"], r["decisions"]] for r in rows],
            precision=2,
        ),
    )
    by_q = {r["quantum_ms"]: r for r in rows}
    # Shorter quanta adapt more often.
    assert by_q[2.0]["decisions"] > by_q[50.0]["decisions"]
    # Every quantum keeps useful switchless coverage on this load.
    assert all(r["switchless_frac"] > 0.3 for r in rows)
