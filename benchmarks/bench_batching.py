"""Bench: transition-avoidance techniques — batching vs switchless.

sgx-perf [32] recommends batching calls; the paper's approach is
switchless execution.  This bench runs a write-heavy loop under four
strategies and reports per-op cost and the latency each strategy imposes
on the *first* operation of a burst (batching trades latency for
throughput; switchless keeps per-op latency flat):

- regular ocalls (one transition per op);
- batched ocalls (one transition per 16 ops);
- zc switchless (no transitions, immediate per-op completion);
- batched + zc (one switchless call per 16 ops — the techniques compose).
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import DevNull, HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.batching import OcallBatcher
from repro.sim import Kernel, paper_machine

N_OPS = 4_000
BATCH = 16


def build(use_zc: bool):
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig()))
    return kernel, enclave


def run_strategy(batched: bool, use_zc: bool) -> dict[str, float]:
    kernel, enclave = build(use_zc)

    def app():
        fd = yield from enclave.ocall("open", "/dev/null", "w")
        if batched:
            batcher = OcallBatcher(enclave, max_batch=BATCH)
            for _ in range(N_OPS):
                yield from batcher.add("write", fd, bytes(8), in_bytes=8)
            yield from batcher.flush()
        else:
            for _ in range(N_OPS):
                yield from enclave.ocall("write", fd, bytes(8), in_bytes=8)
        yield from enclave.ocall("close", fd)

    thread = kernel.spawn(app(), name="writer")
    kernel.join(thread)
    per_op_cycles = kernel.now / N_OPS
    label = ("batched+" if batched else "") + ("zc" if use_zc else "regular")
    enclave.stop_backend()
    kernel.run()
    return {
        "strategy": label,
        "per_op_cycles": per_op_cycles,
        # Worst-case added latency before an op's effect is visible.
        "op_latency_bound_cycles": per_op_cycles * (BATCH if batched else 1),
    }


def test_batching_vs_switchless(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            run_strategy(batched, use_zc)
            for batched in (False, True)
            for use_zc in (False, True)
        ],
        rounds=1,
        iterations=1,
    )
    emit(
        "Transition avoidance: batching vs switchless (one-word writes)",
        format_table(
            ["strategy", "per_op_cycles", "op_latency_bound_cycles"],
            [[r["strategy"], r["per_op_cycles"], r["op_latency_bound_cycles"]] for r in rows],
            precision=0,
        ),
    )
    by_label = {r["strategy"]: r for r in rows}
    regular = by_label["regular"]["per_op_cycles"]
    # Both techniques cut per-op cost by several-fold.
    assert by_label["batched+regular"]["per_op_cycles"] < regular / 3
    assert by_label["zc"]["per_op_cycles"] < regular / 3
    # They compose: batched switchless calls are the cheapest per op.
    assert (
        by_label["batched+zc"]["per_op_cycles"]
        <= by_label["batched+regular"]["per_op_cycles"]
    )
    # But batching pays in visibility latency; switchless does not.
    assert (
        by_label["zc"]["op_latency_bound_cycles"]
        < by_label["batched+regular"]["op_latency_bound_cycles"]
    )
