"""Ablation: the Intel ``retries_before_fallback`` pause loop (§III-C).

Sweeps ``rbf`` on a contended workload (8 callers, 1 worker, long calls).
With the SDK default of 20,000 retries a caller can burn ~2.8M cycles —
~200x the transition it was trying to avoid — before falling back; tiny
``rbf`` values turn the same workload into cheap immediate fallbacks.
This is the pathology ZC-SWITCHLESS removes by design (§IV-C).
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine
from repro.api import make_backend
from repro.switchless import SwitchlessConfig

RBF_SWEEP = (0, 100, 2_000, 20_000)
N_CALLERS = 8
CALLS_PER_CALLER = 60
HOST_WORK = 150_000.0  # a long call: ~11x the transition cost


def run_rbf(rbf: int) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler():
        yield Compute(HOST_WORK, tag="host-long")
        return None

    urts.register("long_call", handler)
    backend = make_backend("intel",
        SwitchlessConfig(
            switchless_ocalls=frozenset({"long_call"}),
            num_uworkers=1,
            retries_before_fallback=rbf,
        )
    )
    enclave.set_backend(backend)

    def caller():
        for _ in range(CALLS_PER_CALLER):
            yield from enclave.ocall("long_call")

    threads = [kernel.spawn(caller(), name=f"caller-{i}") for i in range(N_CALLERS)]
    kernel.join(*threads)
    kernel.flush_accounting()
    spin = sum(t.cycles_by.get("spin", 0.0) for t in threads)
    elapsed = kernel.seconds(kernel.now)
    backend.stop()
    return {
        "rbf": rbf,
        "elapsed_s": elapsed,
        "caller_spin_Mcycles": spin / 1e6,
        "fallbacks": backend.fallback_count,
        "switchless": backend.switchless_count,
    }


def test_rbf_pause_loop_waste(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_rbf(rbf) for rbf in RBF_SWEEP], rounds=1, iterations=1
    )
    emit(
        "Ablation: retries_before_fallback sweep (8 callers / 1 worker / long calls)",
        format_table(
            ["rbf", "elapsed_s", "caller_spin_Mcycles", "fallbacks", "switchless"],
            [[r["rbf"], r["elapsed_s"], r["caller_spin_Mcycles"], r["fallbacks"], r["switchless"]] for r in rows],
        ),
    )
    by_rbf = {r["rbf"]: r for r in rows}
    # The SDK default burns far more caller spin than rbf=0.
    assert by_rbf[20_000]["caller_spin_Mcycles"] > 5 * max(
        by_rbf[0]["caller_spin_Mcycles"], 1.0
    )
    # With rbf=0 almost everything falls back immediately.
    assert by_rbf[0]["fallbacks"] > by_rbf[20_000]["fallbacks"]
