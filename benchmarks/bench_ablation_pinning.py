"""Ablation: worker placement and SMT interference.

On the paper's 4C/8T machine, logical CPUs pair up as (0,1), (2,3), (4,5),
(6,7).  A spinning switchless worker that shares a physical core with an
application thread slows that thread to ``smt_factor`` — a hidden cost of
switchless designs on hyperthreaded machines.

This bench pins two enclave threads to distinct physical cores (logical
0 and 2) and places the zc workers three ways:

- **siblings** (worst case): pinned to logical 1 and 3 — the apps' own
  hyperthread siblings;
- **disjoint** (best case): pinned to logical 4-7 — separate physical
  cores;
- **unpinned**: wherever the dispatcher puts them.  The workers spawn
  before the application threads and grab the apps' (pinned) CPUs; they
  only migrate at timeslice boundaries, so unpinned placement performs
  like the sibling case here — the measured reason deployment guides
  tell you to pin switchless workers explicitly.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.api import make_backend
from repro.core import ZcConfig
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine

N_CALLS_PER_APP = 800
APP_CPUS = frozenset({0, 2})

PLACEMENTS: dict[str, tuple[int, ...] | None] = {
    "siblings": (1, 3),
    "disjoint": (4, 5, 6, 7),
    "unpinned": None,
}


def run_case(name: str) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler():
        yield Compute(600, tag="host-f")
        return None

    urts.register("f", handler)
    config = ZcConfig(worker_affinity=PLACEMENTS[name], max_workers=2)
    backend = make_backend("zc", config)
    enclave.set_backend(backend)

    def app():
        for _ in range(N_CALLS_PER_APP):
            # Enclave compute dominates: this is what sibling workers slow.
            yield Compute(6_000, tag="app-compute")
            yield from enclave.ocall("f")

    threads = [
        kernel.spawn(app(), name=f"app-{i}", kind="app", affinity=APP_CPUS)
        for i in range(2)
    ]
    kernel.join(*threads)
    elapsed_ms = kernel.seconds(kernel.now) * 1e3
    backend.stop()
    kernel.run()
    return {"placement": name, "elapsed_ms": elapsed_ms}


def test_worker_placement(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_case(name) for name in PLACEMENTS], rounds=1, iterations=1
    )
    emit(
        "Ablation: worker placement vs SMT interference (2 pinned app threads)",
        format_table(
            ["placement", "elapsed_ms"],
            [[r["placement"], r["elapsed_ms"]] for r in rows],
            precision=3,
        ),
    )
    by_name = {r["placement"]: r["elapsed_ms"] for r in rows}
    # Workers on the apps' hyperthread siblings slow the apps markedly.
    assert by_name["siblings"] > 1.2 * by_name["disjoint"]
    # Leaving placement to luck does not recover the disjoint optimum:
    # explicit pinning is what deployment guides (rightly) recommend.
    assert by_name["unpinned"] >= by_name["disjoint"]
