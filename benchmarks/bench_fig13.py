"""Bench: Fig. 13 — improved memcpy (vanilla vs zc) write throughput."""

from benchmarks.conftest import emit
from repro.experiments import fig13


def test_fig13_memcpy_speedup(benchmark):
    result = benchmark.pedantic(fig13.run, kwargs={"ops": 300}, rounds=1, iterations=1)
    emit("Fig. 13 memcpy comparison", fig13.report(result))
    assert fig13.check_shape(result) == []
