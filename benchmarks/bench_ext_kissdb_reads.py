"""Extension bench: kissdb GET-heavy workloads.

The paper's Fig. 8 measures SET commands only.  GETs have a different
ocall mix — pure fseeko+fread chains, no writes — so this bench checks
that zc's advantage carries over to read-heavy and mixed workloads, and
that the ocall profile shifts the way the KISSDB design predicts.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.experiments.common import build_stack, intel_spec, no_sl_spec, zc_spec

N_KEYS = 800
N_READS = 2_400


def run_mode(spec, read_fraction: float) -> dict[str, float]:
    stack = build_stack(spec)
    kernel = stack.kernel
    enclave = stack.enclave
    db = KissDB(enclave, "/db", hash_table_size=128)

    def client():
        yield from db.open()
        for i in range(N_KEYS):
            yield from db.put(i.to_bytes(8, "big"), i.to_bytes(8, "little"))
        t_reads_start = kernel.now
        n_gets = int(N_READS * read_fraction)
        n_sets = N_READS - n_gets
        for i in range(n_gets):
            value = yield from db.get((i % N_KEYS).to_bytes(8, "big"))
            assert value is not None
        for i in range(n_sets):
            yield from db.put((i % N_KEYS).to_bytes(8, "big"), bytes(8))
        yield from db.close()
        return t_reads_start

    thread = kernel.spawn(client(), name="client")
    kernel.join(thread)
    phase_cycles = kernel.now - thread.result
    stats = enclave.stats.by_name
    reads = stats["fread"].calls
    writes = stats["fwrite"].calls
    stack.finish()
    return {
        "config": spec.label,
        "read_frac": read_fraction,
        "op_us": kernel.seconds(phase_cycles) * 1e6 / N_READS,
        "fread_per_fwrite": reads / max(writes, 1),
    }


def test_get_heavy_workloads(benchmark):
    specs = [no_sl_spec(), zc_spec(), intel_spec("all", {"fseeko", "fread", "fwrite", "ftell"}, 2)]

    def sweep():
        return [
            run_mode(spec, frac)
            for frac in (1.0, 0.5)
            for spec in specs
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension: kissdb GET-heavy workloads",
        format_table(
            ["config", "read_frac", "op_us", "fread_per_fwrite"],
            [[r["config"], r["read_frac"], r["op_us"], r["fread_per_fwrite"]] for r in rows],
            precision=2,
        ),
    )
    by_key = {(r["config"], r["read_frac"]): r for r in rows}
    for frac in (1.0, 0.5):
        no_sl = by_key[("no_sl", frac)]["op_us"]
        zc = by_key[("zc", frac)]["op_us"]
        assert zc < no_sl, f"zc must beat no_sl at read fraction {frac}"
    # GET-only workloads read far more than they write (population writes
    # only); mixed workloads write again.
    assert (
        by_key[("no_sl", 1.0)]["fread_per_fwrite"]
        > by_key[("no_sl", 0.5)]["fread_per_fwrite"]
    )
