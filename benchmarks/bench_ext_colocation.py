"""Extension bench: co-location — §III-B's claim, measured.

    "an overestimation of worker threads ... will limit the number of
    applications that can be co-located on the same server or interfere
    with application threads which will be deprived of CPU resources"

Two tenants share the paper's 4C/8T machine:

- tenant A: an SGX application (2 kissdb clients) under a switchless
  backend — no_sl, Intel with 4 always-on workers, or zc;
- tenant B: a plain batch job (pure compute, no enclave) that just wants
  the leftover cores.

The figure of merit is tenant B's completion time: how much CPU does
each switchless design actually leave for the neighbour?
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, Sleep, paper_machine
from repro.switchless import SwitchlessConfig

KISSDB_OCALLS = frozenset({"fseeko", "fread", "fwrite", "ftell"})
N_KEYS_PER_CLIENT = 900
BATCH_WORK_CYCLES = 40e6  # ~10 ms of solo compute
BATCH_SLICES = 40


def run_colocated(mode: str) -> dict[str, float]:
    kernel = Kernel(paper_machine())
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode == "i-all-4":
        enclave.set_backend(
            make_backend("intel",
                SwitchlessConfig(switchless_ocalls=KISSDB_OCALLS, num_uworkers=4)
            )
        )
    elif mode == "zc":
        enclave.set_backend(make_backend("zc", ZcConfig()))

    def sgx_tenant(index: int):
        db = KissDB(enclave, f"/db-{index}", hash_table_size=128)
        yield from db.open()
        for i in range(N_KEYS_PER_CLIENT):
            yield from db.put(i.to_bytes(8, "big"), bytes(8))
        yield from db.close()

    batch_done_at = [0.0]

    def batch_tenant():
        per_slice = BATCH_WORK_CYCLES / BATCH_SLICES
        for _ in range(BATCH_SLICES):
            yield Compute(per_slice, tag="batch")
        batch_done_at[0] = kernel.now

    sgx_threads = [
        kernel.spawn(sgx_tenant(i), name=f"sgx-{i}", kind="app") for i in range(2)
    ]
    batch = kernel.spawn(batch_tenant(), name="batch", kind="batch")
    kernel.join(batch, *sgx_threads)
    sgx_elapsed_ms = kernel.seconds(kernel.now) * 1e3
    batch_elapsed_ms = kernel.seconds(batch_done_at[0]) * 1e3
    enclave.stop_backend()
    kernel.run()
    return {
        "mode": mode,
        "batch_ms": batch_elapsed_ms,
        "sgx_ms": sgx_elapsed_ms,
    }


def solo_batch_ms() -> float:
    kernel = Kernel(paper_machine())

    def batch_tenant():
        for _ in range(BATCH_SLICES):
            yield Compute(BATCH_WORK_CYCLES / BATCH_SLICES, tag="batch")

    kernel.join(kernel.spawn(batch_tenant(), name="batch", kind="batch"))
    return kernel.seconds(kernel.now) * 1e3


def test_colocation_interference(benchmark):
    def sweep():
        solo = solo_batch_ms()
        rows = [run_colocated(mode) for mode in ("no_sl", "i-all-4", "zc")]
        for row in rows:
            row["batch_slowdown"] = row["batch_ms"] / solo
        return solo, rows

    solo, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension: co-located batch tenant (solo batch = %.2f ms)" % solo,
        format_table(
            ["sgx_backend", "batch_ms", "batch_slowdown", "sgx_ms"],
            [[r["mode"], r["batch_ms"], r["batch_slowdown"], r["sgx_ms"]] for r in rows],
            precision=2,
        ),
    )
    by_mode = {r["mode"]: r for r in rows}
    # §III-B: Intel's 4 always-on spinning workers interfere with the
    # neighbour far more than no_sl does...
    assert by_mode["i-all-4"]["batch_slowdown"] > by_mode["no_sl"]["batch_slowdown"]
    # ...while zc releases unneeded workers, leaving the neighbour more
    # CPU than the static 4-worker pool.
    assert by_mode["zc"]["batch_slowdown"] < by_mode["i-all-4"]["batch_slowdown"]
    # And zc keeps its own performance comparable to Intel's.
    assert by_mode["zc"]["sgx_ms"] < 1.5 * by_mode["i-all-4"]["sgx_ms"]
