"""Obs-bench: host cost of the windowed metric sampler.

The sampler subscribes to the kernel event bus and buckets every serve
event into the current window — straight-line dict work on the hot
path.  This bench proves the tentpole's overhead claim: a sampler-
attached serve bench must stay within 10% of the detached run's host
events/s (same scenario, same seed, obs on vs off).

The guards at the bottom are plain tests (no ``benchmark`` fixture) so
they run under a bare ``pytest`` invocation: attaching the sampler must
not perturb the simulated outcome, and the gate helper's violation
paths stay covered.

Run as a script (``python benchmarks/bench_obs_overhead.py``) it emits
``BENCH_obs.json`` — events/s for both arms plus the overhead ratio —
which CI uploads as an artifact.  ``--baseline baselines/meta.json
--min-speedup 0`` additionally re-checks the committed meta baseline's
single-loop band on the same runner (the single-core escape hatch the
meta bench documents), so one job gates both host-side budgets.
"""

import argparse
import gc
import json
import time

from repro.api import BenchSpec, ServeSpec
from repro.serve.bench import run_bench

#: One scenario for both arms: small enough for min-of-N interleaving,
#: busy enough (zc backend, faults off, open loop) that the sampler's
#: per-event work would show.
SCENARIO = BenchSpec(
    serve=ServeSpec(shards=2, backend="zc", budget=8),
    seconds=0.03,
    rate=3_000.0,
    seed=0,
)

MAX_OVERHEAD = 0.10


def _run(obs: bool) -> dict:
    return run_bench(SCENARIO.replace(obs=obs), telemetry=False)


def measure_arms(repeats: int = 5) -> dict:
    """Min-of-N events/s for the detached and sampler-attached arms.

    Host noise is one-sided (contention only ever adds wall time), so
    the minimum over interleaved rounds approximates each arm's
    uncontended cost; interleaving keeps slow host drift from landing
    on one arm only.  The cyclic GC is frozen while timing —
    collections land on whichever arm crosses the allocation threshold,
    adding variance but no signal.
    """
    plain = _run(False)
    attached = _run(True)  # warm-up both paths
    plain_s = attached_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.process_time()
            result = _run(False)
            plain_s = min(plain_s, time.process_time() - t0)
            plain_events = result["host"]["events_processed"]
            t0 = time.process_time()
            result = _run(True)
            attached_s = min(attached_s, time.process_time() - t0)
            attached_events = result["host"]["events_processed"]
    finally:
        gc.enable()
    plain_eps = plain_events / plain_s
    attached_eps = attached_events / attached_s
    return {
        "plain": {
            "wall_seconds": plain_s,
            "events_processed": plain_events,
            "events_per_s": plain_eps,
        },
        "obs": {
            "wall_seconds": attached_s,
            "events_processed": attached_events,
            "events_per_s": attached_eps,
            "windows": attached["obs"]["windows"],
            "records": len(attached["obs"]["records"]),
        },
        "overhead": plain_eps / attached_eps - 1.0,
    }


def check_overhead(payload: dict, max_overhead: float) -> list[str]:
    """Gate: sampler-attached events/s within ``max_overhead`` of plain."""
    plain = payload["plain"]["events_per_s"]
    attached = payload["obs"]["events_per_s"]
    floor = plain * (1.0 - max_overhead)
    if attached < floor:
        return [
            f"obs arm {attached:,.0f} events/s below the overhead floor "
            f"{floor:,.0f} (plain {plain:,.0f}, budget {max_overhead:.0%})"
        ]
    return []


# ----------------------------------------------------------------------
# Plain-test guards (run under bare pytest)
# ----------------------------------------------------------------------
def test_sampler_preserves_simulated_outcome():
    plain = _run(False)
    attached = _run(True)
    # Observation must not perturb the simulation: identical totals.
    assert attached["totals"]["completed"] == plain["totals"]["completed"]
    assert attached["totals"]["shed"] == plain["totals"]["shed"]
    assert attached["totals"]["latency_us"] == plain["totals"]["latency_us"]
    assert attached["per_shard"] == plain["per_shard"]


def test_check_overhead_violation_paths():
    good = {
        "plain": {"events_per_s": 1_000.0},
        "obs": {"events_per_s": 950.0},
    }
    assert check_overhead(good, 0.10) == []
    slow = {
        "plain": {"events_per_s": 1_000.0},
        "obs": {"events_per_s": 850.0},
    }
    (violation,) = check_overhead(slow, 0.10)
    assert "overhead floor" in violation


def test_sampler_host_overhead_within_budget():
    # Same accumulate-minima escape the meta bench uses: one noisy round
    # rarely gives both arms a clean run, extra rounds only shrink the
    # minima, so only fail when they stop helping.
    payload = measure_arms(repeats=5)
    for _ in range(2):
        if not check_overhead(payload, MAX_OVERHEAD):
            break
        payload = measure_arms(repeats=5)
    assert check_overhead(payload, MAX_OVERHEAD) == [], payload


# ----------------------------------------------------------------------
# Script mode: emit BENCH_obs.json for the CI artifact
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Measure sampler overhead and write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_obs.json", help="output file")
    parser.add_argument("--repeats", type=int, default=5, help="min-of-N rounds")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=MAX_OVERHEAD,
        help="relative events/s budget for the obs arm (default 0.10)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="also re-check baselines/meta.json's single-loop band "
        "(reuses the meta bench gate)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative throughput band for --baseline (default 0.5)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="aggregate speedup --baseline requires (default 0 = skip, "
        "the meta bench's single-core escape)",
    )
    args = parser.parse_args(argv)

    payload = measure_arms(repeats=args.repeats)
    from repro.telemetry.schema import stamp

    payload = {**stamp("bench-obs"), "scenario": SCENARIO, **payload}
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    violations = check_overhead(payload, args.max_overhead)
    if args.baseline is not None:
        # Re-prove the committed meta.json single-loop band in the same
        # CI job (aggregate arm skipped; --min-speedup 0 is the meta
        # bench's single-core escape).
        from bench_meta_simulator import main as meta_main

        code = meta_main(
            [
                "--json",
                "BENCH_obs_meta.json",
                "--workers",
                "0",
                "--baseline",
                args.baseline,
                "--tolerance",
                str(args.tolerance),
                "--min-speedup",
                str(args.min_speedup),
            ]
        )
        if code:
            violations.append(f"meta baseline gate failed (exit {code})")
    if violations:
        print(f"obs overhead gate: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(
        f"obs overhead gate: OK "
        f"({payload['overhead']:+.1%} vs a {args.max_overhead:.0%} budget)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
