"""Extension bench: the lmbench lat_syscall family across backends.

lmbench's latency microbenchmarks (null, read, write, stat, fstat,
open+close) are the canonical "how expensive is a syscall" table.  Inside
an enclave every one of them is an ocall, so the table directly exposes
the transition tax and what each switchless design recovers — per
operation class, not just for read/write.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.apps import LmbenchSyscalls
from repro.experiments.common import build_stack, intel_spec, no_sl_spec, zc_spec

ALL_SYSCALLS = frozenset({"getppid", "read", "write", "stat", "fstat", "open", "close"})
OPS = 150


def run_config(spec) -> dict[str, float]:
    stack = build_stack(spec)
    kernel = stack.kernel
    bench = LmbenchSyscalls(stack.enclave)
    latencies: dict[str, float] = {"config": spec.label}

    def program():
        yield from bench.setup()
        latencies["null"] = yield from bench.measure_latency(bench.null_op, OPS)
        latencies["read"] = yield from bench.measure_latency(bench.read_op, OPS)
        latencies["write"] = yield from bench.measure_latency(bench.write_op, OPS)
        latencies["stat"] = yield from bench.measure_latency(bench.stat_op, OPS)
        latencies["fstat"] = yield from bench.measure_latency(bench.fstat_op, OPS)
        latencies["open+close"] = yield from bench.measure_latency(
            bench.open_close_op, OPS
        )
        yield from bench.teardown()

    kernel.join(kernel.spawn(program(), name="lat", kind="app"))
    stack.finish()
    return latencies


def test_lat_syscall_table(benchmark):
    specs = [no_sl_spec(), intel_spec("all", ALL_SYSCALLS, 2), zc_spec()]
    rows = benchmark.pedantic(
        lambda: [run_config(spec) for spec in specs], rounds=1, iterations=1
    )
    columns = ["null", "read", "write", "stat", "fstat", "open+close"]
    emit(
        "Extension: lmbench lat_syscall family (mean cycles per op)",
        format_table(
            ["config"] + columns,
            [[r["config"]] + [r[c] for c in columns] for r in rows],
            precision=0,
        ),
    )
    by_config = {r["config"]: r for r in rows}
    no_sl = by_config["no_sl"]
    zc = by_config["zc"]
    for column in columns:
        # Every syscall class benefits from switchless execution; the
        # double-ocall open+close benefits twice.
        assert zc[column] < no_sl[column], f"zc must beat no_sl on {column}"
    # The transition tax dominates the null syscall: ~T_es of the ~14.5k
    # regular-path cycles disappear.
    assert no_sl["null"] - zc["null"] > 9_000
