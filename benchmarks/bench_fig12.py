"""Bench: Fig. 12 — lmbench dynamic CPU usage (same runs as Fig. 11)."""

from benchmarks.conftest import emit
from repro.experiments import fig12


def test_fig12_dynamic_cpu(benchmark, shared_results):
    base = shared_results.get("fig11")
    result = benchmark.pedantic(
        fig12.run, kwargs={"base": base}, rounds=1, iterations=1
    )
    emit("Fig. 12 lmbench dynamic CPU usage", fig12.report(result))
    assert fig12.check_shape(result) == []
