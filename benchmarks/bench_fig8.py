"""Bench: Fig. 8 — kissdb SET latency across all configurations."""

from benchmarks.conftest import emit
from repro.experiments import fig8


def test_fig8_kissdb_latency(benchmark, shared_results):
    result = benchmark.pedantic(
        fig8.run,
        kwargs={"n_keys_sweep": (1000, 2000, 3000), "worker_counts": (2, 4)},
        rounds=1,
        iterations=1,
    )
    shared_results["fig8"] = result
    emit("Fig. 8 kissdb SET latency", fig8.report(result))
    assert fig8.check_shape(result) == []
