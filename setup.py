"""Legacy setup shim: enables editable installs on environments without
the `wheel` package (pip falls back to `setup.py develop`)."""

from setuptools import setup

setup()
