"""Tests for the live ops console (TTY panel + plain-line fallback)."""

import io

from repro.obs import LiveConsole


def _records(window, lanes=("total", "shard0")):
    return [
        {
            "record": "serve.window",
            "window": window,
            "lane": lane,
            "throughput_rps": 1_000.0,
            "p99_us": 12.5,
            "queue_depth": 3,
            "occupancy": 0.5,
            "shed": 1,
        }
        for lane in lanes
    ]


class TestPlainFallback:
    def test_non_tty_stream_gets_one_line_per_window(self):
        stream = io.StringIO()  # io streams report isatty() == False
        console = LiveConsole(stream, total_windows=4)
        console.on_window(0, _records(0), [])
        console.on_window(1, _records(1), [{"lane": "total"}])
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[obs] window 1/4")
        assert "anomalies +1" in lines[1]
        assert "\x1b[" not in stream.getvalue()  # no ANSI control codes

    def test_finish_is_a_noop_in_plain_mode(self):
        stream = io.StringIO()
        console = LiveConsole(stream)
        console.on_window(0, _records(0), [])
        before = stream.getvalue()
        console.finish()
        assert stream.getvalue() == before


class TestTtyPanel:
    def test_panel_redraws_in_place(self):
        stream = io.StringIO()
        console = LiveConsole(stream, tty=True, total_windows=2)
        console.on_window(0, _records(0), [])
        first = stream.getvalue()
        assert "\x1b[" not in first  # first frame draws without rewind
        console.on_window(1, _records(1), [])
        # Second frame rewinds over the first (panel height + clear).
        assert "\x1b[3F\x1b[J" in stream.getvalue()[len(first) :]

    def test_anomalous_lanes_are_flagged(self):
        stream = io.StringIO()
        console = LiveConsole(stream, tty=True)
        console.on_window(
            0, _records(0), [{"lane": "shard0", "kind": "ewma-band"}]
        )
        panel = stream.getvalue()
        flagged = [line for line in panel.splitlines() if line.endswith("!")]
        assert len(flagged) == 1 and "shard0" in flagged[0]

    def test_lane_overflow_is_elided(self):
        stream = io.StringIO()
        console = LiveConsole(stream, tty=True, max_lanes=2)
        lanes = ["total"] + [f"shard{i}" for i in range(5)]
        console.on_window(0, _records(0, lanes=lanes), [])
        assert "more lanes" in stream.getvalue()

    def test_finish_drops_below_the_panel(self):
        stream = io.StringIO()
        console = LiveConsole(stream, tty=True)
        console.on_window(0, _records(0), [])
        console.finish()
        assert stream.getvalue().endswith("\n\n")
