"""Tests for the JSONL window-stream and HTML dashboard exports."""

import json

import pytest

from repro.obs import (
    load_windows_jsonl,
    render_html_report,
    render_windows_jsonl,
    write_html_report,
    write_windows_jsonl,
)
from repro.api import BenchSpec, ServeSpec
from repro.serve.bench import run_bench
from repro.telemetry.schema import SchemaMismatch

SCENARIO = BenchSpec(
    serve=ServeSpec(
        shards=2,
        backend="intel",
        tenants=(("bronze", 1.0), ("gold", 2.0)),
    ),
    seconds=0.02,
    rate=2_000.0,
    seed=3,
    obs=True,
)


@pytest.fixture(scope="module")
def obs():
    return run_bench(SCENARIO, telemetry=False)["obs"]


class TestJsonl:
    def test_roundtrip(self, obs, tmp_path):
        path = tmp_path / "stream.windows.jsonl"
        write_windows_jsonl(obs, str(path))
        loaded = load_windows_jsonl(str(path))
        assert loaded["records"] == obs["records"]
        assert loaded["anomalies"] == obs["anomalies"]
        assert loaded["lanes"] == obs["lanes"]
        assert loaded["interval_cycles"] == obs["interval_cycles"]

    def test_stream_is_stamped_and_line_oriented(self, obs):
        lines = render_windows_jsonl(obs).strip().splitlines()
        header = json.loads(lines[0])
        assert header["artifact"] == "obs-windows"
        kinds = {json.loads(line)["record"] for line in lines[1:]}
        assert kinds <= {"serve.window", "obs.anomaly"}
        assert len(lines) == 1 + len(obs["records"]) + len(obs["anomalies"])

    def test_load_refuses_a_foreign_stamp(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text(
            json.dumps({"artifact": "spans-jsonl", "schema_version": 1}) + "\n"
        )
        with pytest.raises(SchemaMismatch):
            load_windows_jsonl(str(path))


class TestHtml:
    def test_report_is_self_contained(self, obs):
        html = render_html_report(obs)
        assert html.startswith("<!DOCTYPE html>")
        # No external fetches: everything inline (offline CI artifact).
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html  # sparklines render inline
        for lane in obs["lanes"]:
            assert lane in html

    def test_anomalies_are_marked(self):
        obs = {
            "interval_cycles": 100.0,
            "windows": 2,
            "freq_hz": 1e9,
            "lanes": ["total"],
            "records": [
                {
                    "record": "serve.window",
                    "window": i,
                    "lane": "total",
                    "throughput_rps": value,
                    "p50_us": 1.0,
                    "p99_us": 2.0,
                    "queue_depth": 0,
                    "occupancy": None,
                    "shed": 0,
                    "u_cycles": 0.0,
                }
                for i, value in enumerate((100.0, 900.0))
            ],
            "anomalies": [
                {
                    "record": "obs.anomaly",
                    "lane": "total",
                    "metric": "throughput_rps",
                    "kind": "ewma-band",
                    "window": 1,
                    "t_cycles": 200.0,
                    "value": 900.0,
                    "mean": 100.0,
                    "z": 9.0,
                    "score": 9.0,
                }
            ],
        }
        html = render_html_report(obs, title="flash crowd")
        assert "flash crowd" in html
        assert "ewma-band" in html

    def test_write_creates_parent_dirs(self, obs, tmp_path):
        target = tmp_path / "nested" / "dash.html"
        write_html_report(obs, str(target))
        assert target.read_text().startswith("<!DOCTYPE html>")
