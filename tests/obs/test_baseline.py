"""Tests for obs-windows baselines and the ``repro diff`` gate."""

import json

import pytest

from repro.obs import (
    compare_obs_baseline,
    load_obs_baseline,
    obs_snapshot,
    run_obs_scenario,
    write_obs_snapshot,
)
from repro.api import BenchSpec, ServeSpec
from repro.serve.bench import run_bench
from repro.telemetry.schema import SchemaMismatch

SCENARIO = BenchSpec(
    serve=ServeSpec(shards=2, backend="intel"),
    seconds=0.02,
    rate=2_000.0,
    seed=7,
    obs=True,
)


@pytest.fixture(scope="module")
def snapshot():
    return obs_snapshot(run_bench(SCENARIO, telemetry=False))


class TestSnapshot:
    def test_snapshot_requires_an_obs_section(self):
        with pytest.raises(ValueError, match="obs"):
            obs_snapshot({"params": {}})

    def test_roundtrip_through_disk(self, snapshot, tmp_path):
        path = tmp_path / "obs.json"
        write_obs_snapshot(snapshot, str(path))
        loaded = load_obs_baseline(str(path))
        assert loaded == json.loads(json.dumps(snapshot))

    def test_load_refuses_a_foreign_artifact(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(
            json.dumps({"meta": {"artifact": "serve-bench", "schema_version": 1}})
        )
        with pytest.raises(SchemaMismatch):
            load_obs_baseline(str(path))


class TestCompare:
    def test_identical_snapshots_pass(self, snapshot):
        assert compare_obs_baseline(snapshot, snapshot) == []

    def test_rerun_from_params_matches(self, snapshot):
        # The gate's own loop: re-running the recorded params must
        # reproduce the stream (simulated runs are deterministic).
        current = obs_snapshot(run_obs_scenario(snapshot["params"]))
        assert compare_obs_baseline(current, snapshot) == []
        assert current["records"] == snapshot["records"]

    def test_structural_drift_is_reported(self, snapshot):
        drifted = json.loads(json.dumps(snapshot))
        drifted["windows"] += 1
        drifted["lanes"] = drifted["lanes"][:-1]
        drifted["summary"]["records"] -= 1
        violations = compare_obs_baseline(drifted, snapshot)
        text = "\n".join(violations)
        assert "window count" in text
        assert "lane coverage" in text
        assert "record count" in text

    def test_anomaly_verdict_drift_is_reported(self, snapshot):
        drifted = json.loads(json.dumps(snapshot))
        drifted["anomalies"] = [
            {
                "window": 3,
                "lane": "total",
                "metric": "p99_us",
                "kind": "ewma-band",
            }
        ]
        (violation,) = compare_obs_baseline(drifted, snapshot)
        assert "anomaly verdicts" in violation

    def test_completion_drift_beyond_threshold_is_reported(self, snapshot):
        drifted = json.loads(json.dumps(snapshot))
        drifted["summary"]["completed"] = int(
            snapshot["summary"]["completed"] * 1.5
        )
        violations = compare_obs_baseline(drifted, snapshot, threshold=0.05)
        assert any("completions moved" in v for v in violations)
        # A generous threshold absorbs the same drift.
        assert compare_obs_baseline(drifted, snapshot, threshold=0.6) == []


class TestCommittedBaseline:
    def test_obs_quick_baseline_still_reproduces(self):
        # The CI gate in miniature: baselines/obs-quick.json re-runs its
        # own params and must match bit-for-bit.
        baseline = load_obs_baseline("baselines/obs-quick.json")
        current = obs_snapshot(run_obs_scenario(baseline["params"]))
        assert compare_obs_baseline(current, baseline) == []
        assert current["records"] == baseline["records"]
        assert current["anomalies"] == baseline["anomalies"]
