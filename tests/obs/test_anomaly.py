"""Tests for the online anomaly detector (EWMA bands + CUSUM)."""

from repro.api import ServeSpec
from repro.obs import AnomalyDetector, MetricSampler
from repro.serve import LoadGenerator, LoadSpec, build_cluster


def _record(window, value, lane="total", metric="throughput_rps"):
    base = {
        "record": "serve.window",
        "window": window,
        "lane": lane,
        "t_end_cycles": float(window + 1) * 100.0,
        "throughput_rps": 0.0,
        "p99_us": 0.0,
        "queue_depth": 0,
        "shed": 0,
    }
    base[metric] = value
    return base


def _steady(n, value=100.0):
    return [_record(i, value) for i in range(n)]


class TestEwmaBands:
    def test_quiet_stream_stays_quiet(self):
        detector = AnomalyDetector()
        assert detector.observe_all(_steady(30)) == []

    def test_warmup_swallows_early_transients(self):
        # The same spike that alarms post-warmup is free during warmup.
        detector = AnomalyDetector(warmup=8)
        records = [_record(0, 100.0), _record(1, 10_000.0)] + _steady(10)
        early = [a for a in detector.observe_all(records) if a["window"] <= 1]
        assert early == []

    def test_step_triggers_band_and_cusum(self):
        detector = AnomalyDetector()
        records = _steady(20) + [_record(20, 500.0)]
        anomalies = detector.observe_all(records)
        kinds = {a["kind"] for a in anomalies}
        assert "ewma-band" in kinds
        assert "cusum-changepoint" in kinds
        assert all(a["window"] == 20 for a in anomalies)
        assert all(a["metric"] == "throughput_rps" for a in anomalies)

    def test_detector_is_deterministic(self):
        records = _steady(15) + [_record(15, 900.0)] + _steady(5, 110.0)
        first = AnomalyDetector().observe_all(list(records))
        second = AnomalyDetector().observe_all(list(records))
        assert first == second

    def test_lanes_and_metrics_tracked_independently(self):
        detector = AnomalyDetector()
        records = []
        for i in range(20):
            records.append(_record(i, 100.0, lane="total"))
            records.append(_record(i, 50.0, lane="shard0"))
        records.append(_record(20, 100.0, lane="total"))
        records.append(_record(20, 5_000.0, lane="shard0"))
        anomalies = detector.observe_all(records)
        assert anomalies and all(a["lane"] == "shard0" for a in anomalies)

    def test_incremental_observe_matches_batch(self):
        records = _steady(20) + [_record(20, 700.0)]
        batch = AnomalyDetector().observe_all(list(records))
        incremental = AnomalyDetector()
        collected = []
        for record in records:
            collected.extend(incremental.observe(record))
        assert collected == batch
        assert incremental.anomalies == batch


class TestFlashCrowd:
    def test_cusum_changepoint_lands_on_the_injected_shift_window(self):
        # Unit form of the acceptance scenario: a synthetic flash crowd
        # steps the rate 5x at window 20 of 40.  The changepoint must
        # carry exactly that window index.
        detector = AnomalyDetector()
        records = _steady(20, 100.0) + [
            _record(i, 500.0) for i in range(20, 40)
        ]
        changepoints = [
            a
            for a in detector.observe_all(records)
            if a["kind"] == "cusum-changepoint"
        ]
        assert changepoints
        assert changepoints[0]["window"] == 20

    def test_seeded_flash_crowd_run_flags_the_shift(self):
        # Integration form: one cluster, one sampler, two sequential
        # seeded open-loop phases (trickle then crowd).  The CUSUM
        # changepoint must land on the window containing the rate shift.
        with build_cluster(
            ServeSpec(shards=2, budget=8, servers_per_shard=1),
            telemetry=False,
        ) as cluster:
            kernel = cluster.kernel
            interval = kernel.cycles(0.004)
            detector = AnomalyDetector()
            sampler = MetricSampler(
                kernel,
                interval,
                24,
                shards=cluster.shards,
                detector=detector,
            ).install()
            quiet = LoadSpec(rate_rps=1_000.0, duration_s=0.048, seed=5)
            LoadGenerator(kernel, cluster.router, quiet).run()
            shift_window = int((kernel.now - sampler.t0) // interval)
            crowd = LoadSpec(rate_rps=12_000.0, duration_s=0.04, seed=6)
            LoadGenerator(kernel, cluster.router, crowd).run()
            sampler.detach()
        changepoints = [
            a
            for a in sampler.anomalies
            if a["kind"] == "cusum-changepoint"
            and a["lane"] == "total"
            and a["metric"] == "throughput_rps"
        ]
        assert changepoints, sampler.anomalies
        assert changepoints[0]["window"] == shift_window
