"""Tests for the windowed metric sampler (bucketing + determinism)."""

import json

import pytest

from repro.api import BenchSpec, ServeSpec, SpecError
from repro.obs import MetricSampler, merge_raw_windows
from repro.obs.sampler import merge_spilled, shard_lane, tenant_lane
from repro.serve.bench import run_bench
from repro.serve.slices import run_slice_bench
from repro.sim import Kernel, server_machine


# Light but non-trivial: the simulated machine stays contention-free so
# scheduler-local behavior is layout-invariant (same hedge as the slice
# equivalence tests), and the tenant mix exercises tenant lanes.
def identity(shards, slices=1, *, obs=True):
    return BenchSpec(
        serve=ServeSpec(
            shards=shards,
            backend="intel",
            tenants=(("alpha", 3.0), ("beta", 1.0)),
        ),
        seconds=0.04,
        rate=3_000.0,
        seed=11,
        slices=slices,
        obs=obs,
    )


def _stream(result):
    obs = result["obs"]
    return (
        json.dumps(obs["records"], sort_keys=True),
        json.dumps(obs["anomalies"], sort_keys=True),
    )


class TestWindowing:
    def _sampler(self, interval=100.0, windows=4, **kw):
        kernel = Kernel(server_machine())
        sampler = MetricSampler(kernel, interval, windows, **kw).install()
        return kernel, sampler

    def test_validates_arguments(self):
        kernel = Kernel(server_machine())
        with pytest.raises(ValueError, match="interval_cycles"):
            MetricSampler(kernel, 0.0, 4)
        with pytest.raises(ValueError, match="n_windows"):
            MetricSampler(kernel, 100.0, 0)

    def test_event_buckets_by_grid_index(self):
        kernel, sampler = self._sampler()
        kernel.now = 150.0
        kernel.bus.emit(
            "serve.request.submit", shard=0, op="get", tenant="", request_id="a"
        )
        sampler.detach()
        assert sampler.raw_windows[1]["lanes"]["total"]["submitted"] == 1
        assert sampler.raw_windows[0]["lanes"] == {}

    def test_boundary_event_opens_the_next_window(self):
        # Window k covers [k·I, (k+1)·I): a t == boundary event is the
        # first of window k+1, never the last of window k.
        kernel, sampler = self._sampler()
        kernel.now = 100.0
        kernel.bus.emit(
            "serve.request.submit", shard=0, op="get", tenant="", request_id="a"
        )
        sampler.detach()
        assert sampler.raw_windows[0]["lanes"] == {}
        assert sampler.raw_windows[1]["lanes"]["total"]["submitted"] == 1

    def test_past_horizon_events_spill(self):
        kernel, sampler = self._sampler(interval=100.0, windows=2)
        kernel.now = 200.0  # == horizon
        kernel.bus.emit(
            "serve.request.submit", shard=1, op="get", tenant="t", request_id="a"
        )
        sampler.detach()
        assert sampler.spilled == {
            "total": 1,
            shard_lane(1): 1,
            tenant_lane("t"): 1,
        }
        assert all(not raw["lanes"] for raw in sampler.raw_windows)

    def test_detach_flushes_the_whole_grid_and_restores_the_bus(self):
        kernel, sampler = self._sampler(windows=3)
        assert kernel.bus is not None  # owned emit shim installed
        sampler.detach()
        assert kernel.bus is None
        assert len(sampler.raw_windows) == 3
        assert len(sampler.records) == 3  # one total-lane record each
        sampler.detach()  # idempotent
        assert len(sampler.raw_windows) == 3

    def test_lane_order_is_total_shards_then_sorted_tenants(self):
        kernel, sampler = self._sampler(windows=1)
        kernel.now = 10.0
        for tenant in ("zeta", "alpha"):
            kernel.bus.emit(
                "serve.request.submit",
                shard=0,
                op="get",
                tenant=tenant,
                request_id=tenant,
            )
        sampler.detach()
        lanes = [record["lane"] for record in sampler.records]
        assert lanes == ["total", "tenant:alpha", "tenant:zeta"]


class TestBenchIntegration:
    def test_windowed_totals_conserve_router_counts(self):
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(shards=2, budget=8),
                seconds=0.03,
                rate=3_000.0,
                seed=0,
                obs=True,
            ),
            telemetry=False,
        )
        totals = {"completed": 0, "shed": 0, "submitted": 0}
        for record in result["obs"]["records"]:
            if record["lane"] == "total":
                for key in totals:
                    totals[key] += record[key]
        assert totals["completed"] == result["totals"]["completed"]
        assert totals["shed"] == result["totals"]["shed"]
        assert totals["submitted"] == result["totals"]["submitted"]
        assert result["obs"]["spilled"] == {}

    def test_obs_interval_validation(self):
        with pytest.raises(SpecError, match="obs_interval"):
            BenchSpec(
                serve=ServeSpec(shards=2),
                seconds=0.01,
                obs=True,
                obs_interval=-1.0,
            )

    def test_rerun_is_bit_identical(self):
        first = run_bench(identity(4), telemetry=False)
        second = run_bench(identity(4), telemetry=False)
        assert _stream(first) == _stream(second)

    def test_sliced_stream_is_bit_identical_to_unsliced(self):
        # The acceptance bar: same seed ⇒ the merged --slices N window
        # stream (records AND anomaly verdicts) is byte-identical to the
        # unsliced run's.
        unsliced = run_bench(identity(4), telemetry=False)
        sliced = run_slice_bench(identity(4, 2), jobs=1)
        assert unsliced["obs"]["lanes"] == sliced["obs"]["lanes"]
        assert _stream(unsliced) == _stream(sliced)

    def test_sampler_does_not_perturb_the_simulation(self):
        plain = run_bench(identity(2, obs=False), telemetry=False)
        attached = run_bench(identity(2), telemetry=False)
        assert attached["totals"]["completed"] == plain["totals"]["completed"]
        assert attached["totals"]["latency_us"] == plain["totals"]["latency_us"]
        assert attached["per_shard"] == plain["per_shard"]


class TestMergeHelpers:
    def test_merge_superposes_counters_and_pools_samples(self):
        a = [
            {
                "window": 0,
                "lanes": {
                    "total": {
                        "submitted": 2,
                        "completed": 1,
                        "shed": 0,
                        "preempted": 0,
                        "failed": 0,
                        "faults": 0,
                        "sched_decisions": 0,
                        "fallbacks": 1,
                        "u_cycles": 0.0,
                        "latency_cycles": [10.0],
                    },
                    "shard0": {
                        "submitted": 2,
                        "completed": 1,
                        "shed": 0,
                        "preempted": 0,
                        "failed": 0,
                        "faults": 0,
                        "sched_decisions": 0,
                        "fallbacks": 0,
                        "u_cycles": 5.0,
                        "latency_cycles": [10.0],
                    },
                },
                "gauges": {"shard0": {"queue_depth": 1}},
            }
        ]
        b = [
            {
                "window": 0,
                "lanes": {
                    "total": {
                        "submitted": 1,
                        "completed": 1,
                        "shed": 0,
                        "preempted": 0,
                        "failed": 0,
                        "faults": 0,
                        "sched_decisions": 0,
                        "fallbacks": 0,
                        "u_cycles": 0.0,
                        "latency_cycles": [20.0],
                    },
                    "shard1": {
                        "submitted": 1,
                        "completed": 1,
                        "shed": 0,
                        "preempted": 0,
                        "failed": 0,
                        "faults": 0,
                        "sched_decisions": 0,
                        "fallbacks": 0,
                        "u_cycles": 7.0,
                        "latency_cycles": [20.0],
                    },
                },
                "gauges": {"shard1": {"queue_depth": 2}},
            }
        ]
        (merged,) = merge_raw_windows([a, b])
        assert merged["lanes"]["total"]["submitted"] == 3
        assert merged["lanes"]["total"]["latency_cycles"] == [10.0, 20.0]
        assert merged["lanes"]["total"]["fallbacks"] == 1
        # Shard lanes copy whole from their single owning slice.
        assert merged["lanes"]["shard0"]["u_cycles"] == 5.0
        assert merged["lanes"]["shard1"]["u_cycles"] == 7.0
        assert merged["gauges"] == {
            "shard0": {"queue_depth": 1},
            "shard1": {"queue_depth": 2},
        }

    def test_merge_spilled_sums_lanes(self):
        assert merge_spilled([{"total": 1}, {"total": 2, "shard0": 1}]) == {
            "total": 3,
            "shard0": 1,
        }
