"""Validation and serialization of the declarative serve specs.

One error path (:class:`repro.api.SpecError`) for every invalid field
*combination*, and a stamped ``to_json()``/``from_json()`` round-trip so
evidence packs and scenario baselines can record — and re-run — the full
serve configuration.
"""

import json

import pytest

from repro.api import (
    AutoscaleSpec,
    BenchSpec,
    Runtime,
    ServeSpec,
    SpecError,
)
from repro.telemetry.schema import SchemaMismatch


class TestServeSpecValidation:
    def test_defaults_are_valid(self):
        spec = ServeSpec()
        assert spec.shards == 2
        assert spec.backend == "zc"

    def test_backend_aliases_normalize(self):
        assert ServeSpec(backend="zc-switchless").backend == "zc"
        assert ServeSpec(backend="no_sl").backend == "baseline"

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(shards=0), "shards must be >= 1"),
            (dict(policy="random"), "policy must be one of"),
            (dict(admission="drop"), "admission must be one of"),
            (dict(queue_capacity=0), "queue_capacity"),
            (dict(servers_per_shard=0), "servers_per_shard"),
            (dict(budget=-1), "budget"),
            (dict(batch=0), "batch must be >= 1"),
            (dict(dispatch_cycles=-1.0), "dispatch_cycles"),
            (dict(apps=()), "at least one"),
            (dict(apps=(("kv", 1.0), ("kv", 2.0))), "unique"),
            (dict(apps=(("redis", 1.0),)), "unknown apps"),
            (dict(tenants=(("gold", 0.0),)), "weights must be positive"),
            (dict(shards=2, fault_shard=2), "fault_shard"),
        ],
    )
    def test_invalid_fields_raise_spec_error(self, kwargs, message):
        with pytest.raises(SpecError, match=message):
            ServeSpec(**kwargs)

    def test_autoscale_requires_zc_and_hash(self):
        with pytest.raises(SpecError, match="zc backend"):
            ServeSpec(backend="intel", autoscale=AutoscaleSpec())
        with pytest.raises(SpecError, match="hash"):
            ServeSpec(policy="round-robin", autoscale=AutoscaleSpec())

    def test_autoscale_band_must_contain_initial_shards(self):
        with pytest.raises(SpecError, match="band"):
            ServeSpec(shards=9, autoscale=AutoscaleSpec(max_shards=8))


class TestAutoscaleSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(min_shards=0), "min_shards"),
            (dict(min_shards=4, max_shards=2), "max_shards"),
            (dict(worker_options=()), "not be empty"),
            (dict(worker_options=(2, 1)), "strictly increasing"),
            (dict(worker_options=(1, 1)), "strictly increasing"),
            (dict(batch_options=(0,)), "positive integers"),
            (dict(alpha=0.0), "alpha"),
            (dict(alpha=1.5), "alpha"),
            (dict(headroom=0.5), "headroom"),
        ],
    )
    def test_invalid_fields_raise_spec_error(self, kwargs, message):
        with pytest.raises(SpecError, match=message):
            AutoscaleSpec(**kwargs)


class TestBenchSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(seconds=0.0), "seconds"),
            (dict(rate=0.0), "rate"),
            (dict(clients=0), "clients"),
            (dict(requests_per_client=10), "needs clients"),
            (dict(keydist="hot"), "keydist"),
            (dict(keyspace=0), "keyspace"),
            (dict(set_fraction=1.5), "set_fraction"),
            (dict(scenario="a", trace="b"), "exclusive"),
            (dict(scenario="a", clients=2), "open-loop"),
            (dict(slices=0), "slices must be >= 1"),
            (dict(slices=4), "must not exceed shards"),
            (dict(obs_interval=0.0), "obs_interval"),
        ],
    )
    def test_invalid_combinations_raise_spec_error(self, kwargs, message):
        with pytest.raises(SpecError, match=message):
            BenchSpec(serve=ServeSpec(shards=2), **kwargs)

    def test_sliced_run_constraints(self):
        with pytest.raises(SpecError, match="hash"):
            BenchSpec(
                serve=ServeSpec(shards=4, policy="round-robin"), slices=2
            )
        with pytest.raises(SpecError, match="single-process"):
            BenchSpec(
                serve=ServeSpec(shards=4, autoscale=AutoscaleSpec()), slices=2
            )

    def test_autoscale_rejects_the_closed_loop(self):
        with pytest.raises(SpecError, match="closed"):
            BenchSpec(
                serve=ServeSpec(shards=2, autoscale=AutoscaleSpec()),
                rate=None,
                clients=4,
            )

    def test_obs_interval_implies_obs(self):
        spec = BenchSpec(serve=ServeSpec(), obs_interval=1_000.0)
        assert spec.obs is True

    def test_replace_revalidates(self):
        spec = BenchSpec(serve=ServeSpec(shards=4))
        assert spec.replace(slices=4).slices == 4
        with pytest.raises(SpecError, match="must not exceed"):
            spec.replace(serve=ServeSpec(shards=2), slices=4)


FULL = BenchSpec(
    serve=ServeSpec(
        shards=4,
        backend="zc",
        policy="hash",
        admission="block",
        queue_capacity=32,
        servers_per_shard=3,
        budget=12,
        batch=2,
        dispatch_cycles=90.0,
        apps=(("kv", 2.0), ("session", 1.0)),
        tenants=(("bronze", 1.0), ("gold", 3.0)),
        plan="enclave-lost",
        fault_shard=1,
        autoscale=AutoscaleSpec(
            min_shards=2,
            max_shards=6,
            worker_options=(1, 2, 4),
            batch_options=(1, 4),
            alpha=0.4,
            headroom=1.5,
        ),
    ),
    seconds=0.25,
    rate=4_000.0,
    keydist="zipf",
    keyspace=512,
    set_fraction=0.25,
    seed=42,
    obs=True,
    obs_interval=50_000.0,
    contracts=None,
)


class TestJsonRoundTrip:
    def test_serve_spec_round_trips(self):
        assert ServeSpec.from_json(FULL.serve.to_json()) == FULL.serve

    def test_bench_spec_round_trips(self):
        assert BenchSpec.from_json(FULL.to_json()) == FULL

    def test_round_trip_survives_json_text(self):
        # The artifact path: serialized specs travel as JSON text inside
        # evidence packs / baselines, not as live Python objects.
        text = json.dumps(FULL.to_json(), sort_keys=True)
        assert BenchSpec.from_json(json.loads(text)) == FULL

    def test_specs_carry_a_schema_stamp(self):
        serve_doc = FULL.serve.to_json()
        bench_doc = FULL.to_json()
        assert serve_doc["meta"]["artifact"] == "serve-spec"
        assert serve_doc["meta"]["kind"] == "serve"
        assert bench_doc["meta"]["kind"] == "bench"

    def test_from_json_refuses_a_wrong_stamp(self):
        doc = FULL.to_json()
        doc["meta"]["artifact"] = "serve-bench"
        with pytest.raises(SchemaMismatch):
            BenchSpec.from_json(doc)

    def test_from_json_revalidates_fields(self):
        doc = FULL.to_json()
        doc["slices"] = 99
        with pytest.raises(SpecError, match="must not exceed"):
            BenchSpec.from_json(doc)


class TestRuntimeServe:
    def test_serve_spec_builds_a_live_cluster(self):
        with Runtime.serve(
            ServeSpec(shards=2, budget=4), telemetry=False
        ) as cluster:
            assert len(cluster.shards) == 2
            assert cluster.router is not None

    def test_bench_spec_runs_the_benchmark(self):
        result = Runtime.serve(
            BenchSpec(serve=ServeSpec(shards=2), seconds=0.005),
            telemetry=False,
        )
        assert result["meta"]["artifact"] == "serve-bench"
        assert result["totals"]["completed"] > 0

    def test_anything_else_is_refused(self):
        with pytest.raises(SpecError, match="ServeSpec or BenchSpec"):
            Runtime.serve({"shards": 2})
