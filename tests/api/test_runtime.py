"""Tests for the :mod:`repro.api` runtime facade."""

import pytest

from repro.api import (
    BACKEND_CHOICES,
    Runtime,
    SwitchlessConfig,
    ZcConfig,
    make_backend,
    normalize_backend,
)
from repro.core.backend import ZcSwitchlessBackend
from repro.faults import FaultPlan, FaultSpec
from repro.sgx.backend import RegularBackend
from repro.switchless.backend import IntelSwitchlessBackend
from repro.telemetry import TelemetrySession

#: A plan whose fault applies to every backend family (EPC pressure
#: inflates transition costs; it needs no worker pool).
PRESSURE = FaultPlan(
    name="pressure",
    seed=7,
    faults=(FaultSpec(kind="epc-pressure", at_ms=0.01, duration_ms=0.05, factor=2.0),),
)


def ocall_program(enclave, repeats=4):
    def program():
        results = []
        for _ in range(repeats):
            results.append((yield from enclave.ocall("fopen", "/dev/null", "w")))
        return results

    return program()


class TestNormalize:
    def test_canonical_names_pass_through(self):
        for name in BACKEND_CHOICES:
            assert normalize_backend(name) == name

    @pytest.mark.parametrize(
        "alias, kind",
        [
            ("no_sl", "baseline"),
            ("no-sl", "baseline"),
            ("regular", "baseline"),
            ("sdk", "intel"),
            ("intel-switchless", "intel"),
            ("zc-switchless", "zc"),
            ("  ZC  ", "zc"),
        ],
    )
    def test_aliases(self, alias, kind):
        assert normalize_backend(alias) == kind

    @pytest.mark.parametrize("bad", ["", "hw", "zcc", None, 3])
    def test_unknown_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown backend"):
            normalize_backend(bad)


class TestMakeBackend:
    def test_kinds(self):
        assert isinstance(make_backend("zc"), ZcSwitchlessBackend)
        assert isinstance(make_backend("intel"), IntelSwitchlessBackend)
        assert isinstance(make_backend("baseline"), RegularBackend)

    def test_configs_forwarded(self):
        zc = make_backend("zc", ZcConfig(max_workers=3))
        assert zc.config.max_workers == 3
        intel = make_backend("intel", SwitchlessConfig(num_uworkers=5))
        assert intel.config.num_uworkers == 5

    def test_config_family_enforced(self):
        with pytest.raises(TypeError, match="ZcConfig"):
            make_backend("zc", SwitchlessConfig())
        with pytest.raises(TypeError, match="SwitchlessConfig"):
            make_backend("intel", ZcConfig())
        with pytest.raises(TypeError, match="no config"):
            make_backend("baseline", ZcConfig())


class TestRuntimeMatrix:
    """Construction matrix: every backend × telemetry × faults."""

    @pytest.mark.parametrize("backend", BACKEND_CHOICES)
    @pytest.mark.parametrize("with_telemetry", [False, True])
    @pytest.mark.parametrize("with_faults", [False, True])
    def test_construct_run_close(self, backend, with_telemetry, with_faults):
        session = TelemetrySession() if with_telemetry else None
        faults = PRESSURE if with_faults else False
        ctx = session if session is not None else _NullContext()
        with ctx:
            with Runtime.create(
                backend=backend,
                telemetry=session if with_telemetry else False,
                faults=faults,
            ) as rt:
                results = rt.run_program(ocall_program(rt.enclave))
                assert len(results) == 4
                assert rt.faults is (None if not with_faults else rt.faults)
                if with_faults:
                    assert rt.faults is not None
                if with_telemetry:
                    assert rt.telemetry is not None
                    assert rt.telemetry.label == normalize_backend(backend)
                else:
                    assert rt.telemetry is None
            assert rt.closed

    def test_backend_kinds_installed(self):
        with Runtime.create(backend="baseline", telemetry=False) as rt:
            assert isinstance(rt.backend, RegularBackend)
        with Runtime.create(backend="zc", telemetry=False) as rt:
            assert isinstance(rt.backend, ZcSwitchlessBackend)
        with Runtime.create(
            backend="intel", config=SwitchlessConfig(num_uworkers=1), telemetry=False
        ) as rt:
            assert isinstance(rt.backend, IntelSwitchlessBackend)


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None


class TestLifecycle:
    def test_close_is_idempotent(self):
        rt = Runtime.create(backend="zc", telemetry=False)
        rt.run_program(ocall_program(rt.enclave))
        rt.close()
        assert rt.closed
        rt.close()  # second close must be a no-op
        assert rt.closed

    def test_context_manager_closes(self):
        with Runtime.create(backend="intel", telemetry=False) as rt:
            pass
        assert rt.closed
        rt.close()

    def test_files_created(self):
        with Runtime.create(
            backend="baseline", telemetry=False, files={"/data": b"abc"}
        ) as rt:
            assert rt.fs.exists("/dev/null")
            assert rt.fs.exists("/dev/zero")
            assert rt.fs.contents("/data") == b"abc"

    def test_shared_kernel_not_drained_by_shard(self):
        """A runtime on a borrowed kernel must not drain it on close."""
        owner = Runtime.create(backend="baseline", telemetry=False)
        shard = Runtime.create(
            backend="zc", kernel=owner.kernel, telemetry=False, name="shard"
        )
        assert not shard.owns_kernel
        shard.run_program(ocall_program(shard.enclave))
        shard.close()
        owner.close()

    def test_cpu_usage_requires_start(self):
        with Runtime.create(backend="baseline", telemetry=False) as rt:
            with pytest.raises(RuntimeError):
                rt.cpu_usage_pct()
            rt.start_measuring()
            rt.run_program(ocall_program(rt.enclave))
            assert rt.cpu_usage_pct() >= 0.0


class TestDeprecatedShims:
    def test_core_import_warns(self):
        import repro.core as core

        with pytest.warns(DeprecationWarning, match="repro.api"):
            core.ZcSwitchlessBackend  # noqa: B018

    def test_switchless_import_warns(self):
        import repro.switchless as switchless

        with pytest.warns(DeprecationWarning, match="repro.api"):
            switchless.IntelSwitchlessBackend  # noqa: B018

    def test_shim_class_is_the_real_class(self):
        import repro.core as core
        import repro.switchless as switchless

        with pytest.warns(DeprecationWarning):
            assert core.ZcSwitchlessBackend is ZcSwitchlessBackend
        with pytest.warns(DeprecationWarning):
            assert switchless.IntelSwitchlessBackend is IntelSwitchlessBackend

    def test_shim_backend_ledger_identical(self):
        """A shim-constructed backend runs byte-identically to make_backend."""

        def run(factory):
            session = TelemetrySession()
            with session:
                rt = Runtime.create(backend="baseline", telemetry=session)
                rt.enclave.set_backend(factory())
                rt.run_program(ocall_program(rt.enclave, repeats=16))
                rt.close()
            capture = session.captures[0]
            snapshot = capture.snapshot
            return (
                dict(capture.event_counts),
                snapshot.wall_by_category,
                snapshot.now_cycles,
            )

        def shim_factory():
            import repro.core as core

            with pytest.warns(DeprecationWarning):
                cls = core.ZcSwitchlessBackend
            return cls(ZcConfig(enable_scheduler=False))

        via_shim = run(shim_factory)
        via_api = run(lambda: make_backend("zc", ZcConfig(enable_scheduler=False)))
        assert via_shim == via_api
