"""Shared builders for application-level tests."""

from repro.hostos import DevNull, DevZero, HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, MachineSpec


def build_system(n_cores=4, smt=2):
    """A full machine: kernel + host fs + posix ocalls + one enclave."""
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=smt))
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    fs.mount_device("/dev/zero", DevZero())
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    return kernel, fs, enclave
