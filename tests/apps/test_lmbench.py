"""Tests for the lmbench syscall microbenchmarks."""

import pytest

from repro.apps import LmbenchSyscalls
from tests.apps.support import build_system


def run(kernel, program):
    thread = kernel.spawn(program)
    kernel.join(thread)
    return thread.result


class TestLmbenchOps:
    def test_read_returns_zero_words(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            word = yield from bench.read_op()
            yield from bench.teardown()
            return word

        assert run(kernel, app()) == bytes(8)

    def test_write_counts_bytes(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            written = yield from bench.write_op()
            yield from bench.teardown()
            return written

        assert run(kernel, app()) == 8

    def test_op_counters(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            yield from bench.run_reads(10)
            yield from bench.run_writes(7)
            yield from bench.teardown()

        run(kernel, app())
        assert bench.reads_done == 10
        assert bench.writes_done == 7
        assert enclave.stats.by_name["read"].calls == 10
        assert enclave.stats.by_name["write"].calls == 7

    def test_ops_require_setup(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.read_op()

        with pytest.raises(RuntimeError):
            run(kernel, app())

    def test_op_is_a_short_call(self):
        """One-word device I/O is the paper's canonical short ocall: the
        host work is a tiny fraction of the transition cost."""
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            yield from bench.run_reads(100)

        run(kernel, app())
        latency = enclave.stats.by_name["read"].mean_latency_cycles
        # Regular path: ~ bookkeeping + T_es + ~750 host cycles.
        assert latency == pytest.approx(14_600, rel=0.1)
        host_work = latency - enclave.cost.t_es
        assert host_work < 0.15 * enclave.cost.t_es

    def test_lat_syscall_family(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            null = yield from bench.null_op()
            st = yield from bench.stat_op()
            fst = yield from bench.fstat_op()
            fd = yield from bench.open_close_op()
            yield from bench.teardown()
            return null, st, fst, fd

        t = kernel.spawn(app())
        kernel.join(t)
        null, st, fst, fd = t.result
        assert null == 1
        assert st["is_device"] == 1  # /dev/zero
        assert fst["is_device"] == 1
        assert isinstance(fd, int)
        assert fs.open_fd_count() == 0

    def test_measure_latency_returns_mean_cycles(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            latency = yield from bench.measure_latency(bench.null_op, count=20)
            yield from bench.teardown()
            return latency

        t = kernel.spawn(app())
        kernel.join(t)
        # Regular path: loop + bookkeeping + transition + 250-cycle null.
        assert 13_000 < t.result < 16_000

    def test_teardown_closes_devices(self):
        kernel, fs, enclave = build_system()
        bench = LmbenchSyscalls(enclave)

        def app():
            yield from bench.setup()
            yield from bench.teardown()

        run(kernel, app())
        assert fs.open_fd_count() == 0
