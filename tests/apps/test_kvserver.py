"""Tests for the in-enclave KV server (ecalls in, WAL ocalls out)."""

import pytest

from repro.apps import KvClient, KvServerEnclave
from repro.api import make_backend
from repro.core import ZcConfig, ZcEcallRuntime
from tests.apps.support import build_system


def build(switchless=False):
    kernel, fs, enclave = build_system()
    if switchless:
        # One worker per direction: enough for the single-caller tests
        # without drowning the 8-CPU machine in spinning workers.
        config = ZcConfig(enable_scheduler=False, max_workers=1, initial_workers=1)
        enclave.set_backend(make_backend("zc", config))
        ZcEcallRuntime(config).attach(enclave)
    server = KvServerEnclave(enclave)
    client = KvClient(enclave)
    return kernel, fs, enclave, server, client


def run(kernel, program):
    thread = kernel.spawn(program)
    kernel.join(thread)
    return thread.result


class TestKvOperations:
    def test_set_get_delete_round_trip(self):
        kernel, fs, enclave, server, client = build()

        def scenario():
            yield from server.start()
            yield from client.set(b"alpha", b"1")
            yield from client.set(b"beta", b"2")
            a = yield from client.get(b"alpha")
            missing = yield from client.get(b"gamma")
            deleted = yield from client.delete(b"alpha")
            a_after = yield from client.get(b"alpha")
            size = yield from client.size()
            yield from server.stop()
            return a, missing, deleted, a_after, size

        a, missing, deleted, a_after, size = run(kernel, scenario())
        assert a == b"1"
        assert missing is None
        assert deleted is True
        assert a_after is None
        assert size == 1

    def test_delete_missing_key(self):
        kernel, fs, enclave, server, client = build()

        def scenario():
            yield from server.start()
            existed = yield from client.delete(b"nope")
            yield from server.stop()
            return existed

        assert run(kernel, scenario()) is False

    def test_empty_key_rejected_across_boundary(self):
        kernel, fs, enclave, server, client = build()

        def scenario():
            yield from server.start()
            try:
                yield from client.set(b"", b"x")
            except ValueError as exc:
                return str(exc)

        assert run(kernel, scenario()) == "empty key"

    def test_overwrite_updates_value(self):
        kernel, fs, enclave, server, client = build()

        def scenario():
            yield from server.start()
            yield from client.set(b"k", b"v1")
            yield from client.set(b"k", b"v2")
            value = yield from client.get(b"k")
            yield from server.stop()
            return value

        assert run(kernel, scenario()) == b"v2"


class TestWalRecovery:
    def test_recovery_replays_mutations(self):
        kernel, fs, enclave, server, client = build()

        def phase_one():
            yield from server.start()
            yield from client.set(b"a", b"1")
            yield from client.set(b"b", b"2")
            yield from client.delete(b"a")
            yield from client.set(b"c", b"3")
            yield from server.stop()

        run(kernel, phase_one())

        # Fresh enclave state (simulating restart), same host filesystem.
        server2 = KvServerEnclave.__new__(KvServerEnclave)
        server2.__init__(enclave)  # re-registers the ecalls
        client2 = KvClient(enclave)

        def phase_two():
            replayed = yield from server2.start()
            b = yield from client2.get(b"b")
            a = yield from client2.get(b"a")
            c = yield from client2.get(b"c")
            size = yield from client2.size()
            yield from server2.stop()
            return replayed, a, b, c, size

        replayed, a, b, c, size = run(kernel, phase_two())
        assert replayed == 4  # 3 sets + 1 delete
        assert (a, b, c) == (None, b"2", b"3")
        assert size == 2

    def test_fresh_start_without_wal(self):
        kernel, fs, enclave, server, client = build()

        def scenario():
            replayed = yield from server.start()
            yield from server.stop()
            return replayed

        assert run(kernel, scenario()) == 0

    def test_corrupt_wal_detected(self):
        kernel, fs, enclave, server, client = build()
        fs.create("/kv.wal", b"\x09\x02\x00\x01\x00\x00\x00kkv")  # bad op 9

        def scenario():
            yield from server.start()

        with pytest.raises(ValueError):
            run(kernel, scenario())


class TestSwitchlessService:
    def test_results_identical_with_switchless_boundaries(self):
        def scenario(client, server):
            def program():
                yield from server.start()
                for i in range(30):
                    yield from client.set(f"k{i}".encode(), f"v{i}".encode())
                values = []
                for i in range(30):
                    value = yield from client.get(f"k{i}".encode())
                    values.append(value)
                yield from server.stop()
                return values

            return program()

        kernel_a, fs_a, _, server_a, client_a = build(switchless=False)
        baseline = run(kernel_a, scenario(client_a, server_a))
        kernel_b, fs_b, _, server_b, client_b = build(switchless=True)
        switchless = run(kernel_b, scenario(client_b, server_b))
        assert baseline == switchless
        assert fs_a.contents("/kv.wal") == fs_b.contents("/kv.wal")
        # And the switchless run is faster.
        assert kernel_b.now < kernel_a.now

    def test_concurrent_clients(self):
        kernel, fs, enclave, server, client = build(switchless=True)

        def starter():
            yield from server.start()

        run(kernel, starter())

        def worker(base):
            for i in range(20):
                yield from client.set(f"{base}-{i}".encode(), b"x")

        threads = [kernel.spawn(worker(f"t{i}"), name=f"t{i}") for i in range(3)]
        kernel.join(*threads)

        def finisher():
            size = yield from client.size()
            yield from server.stop()
            return size

        assert run(kernel, finisher()) == 60
        assert server.mutations == 60