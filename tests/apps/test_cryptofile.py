"""Tests for the OpenSSL-style encryption/decryption pipeline."""

import pytest

from repro.apps import CryptoFileApp
from repro.crypto import FastXorEngine, RealAesCbcEngine
from tests.apps.support import build_system

KEY = bytes(range(32))
IV = bytes(16)


def real_engine():
    return RealAesCbcEngine(KEY, IV)


def fast_engine():
    return FastXorEngine(KEY, IV)


def run(kernel, program):
    thread = kernel.spawn(program)
    kernel.join(thread)
    return thread.result


class TestEncryptDecryptRoundTrip:
    def test_real_aes_round_trip_through_files(self):
        kernel, fs, enclave = build_system()
        plaintext = bytes(i % 251 for i in range(3 * 4096 + 123))
        fs.create("/plain.bin", plaintext)
        app = CryptoFileApp(enclave, real_engine, chunk_bytes=4096)

        def pipeline():
            yield from app.encrypt_file("/plain.bin", "/cipher.bin")
            yield from app.decrypt_file("/cipher.bin", "/roundtrip.bin")

        run(kernel, pipeline())
        assert fs.contents("/roundtrip.bin") == plaintext
        # Ciphertext is genuinely AES: different from plaintext, IV first.
        ciphertext = fs.contents("/cipher.bin")
        assert ciphertext[:16] == IV
        assert plaintext[:64] not in ciphertext

    def test_ciphertext_layout(self):
        kernel, fs, enclave = build_system()
        fs.create("/plain.bin", bytes(2 * 4096))
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def pipeline():
            chunks = yield from app.encrypt_file("/plain.bin", "/cipher.bin")
            return chunks

        chunks = run(kernel, pipeline())
        assert chunks == 2
        # 16-byte IV + per-chunk padded ciphertext (4096 + 16 each).
        assert fs.size("/cipher.bin") == 16 + 2 * (4096 + 16)

    def test_partial_final_chunk(self):
        kernel, fs, enclave = build_system()
        plaintext = b"z" * (4096 + 100)
        fs.create("/plain.bin", plaintext)
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def pipeline():
            yield from app.encrypt_file("/plain.bin", "/cipher.bin")
            yield from app.decrypt_file("/cipher.bin", "/out.bin")

        run(kernel, pipeline())
        assert fs.contents("/out.bin") == plaintext

    def test_missing_iv_header_rejected(self):
        kernel, fs, enclave = build_system()
        fs.create("/bad.bin", b"short")
        app = CryptoFileApp(enclave, fast_engine)

        def pipeline():
            yield from app.decrypt_file("/bad.bin", "/out.bin")

        with pytest.raises(ValueError):
            run(kernel, pipeline())


class TestOcallProfile:
    def test_reads_dominate_opens(self):
        """§V-B: fread/fwrite are called orders of magnitude more often
        than fopen/fclose."""
        kernel, fs, enclave = build_system()
        fs.create("/plain.bin", bytes(64 * 4096))
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def pipeline():
            yield from app.encrypt_file("/plain.bin", "/cipher.bin")

        run(kernel, pipeline())
        stats = enclave.stats.by_name
        assert stats["fread"].calls > 20 * stats["fopen"].calls

    def test_decryptor_never_writes(self):
        kernel, fs, enclave = build_system()
        fs.create("/plain.bin", bytes(4 * 4096))
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def pipeline():
            yield from app.encrypt_file("/plain.bin", "/cipher.bin")
            writes_after_encrypt = enclave.stats.by_name["fwrite"].calls
            yield from app.decrypt_file("/cipher.bin")  # no out_path
            return writes_after_encrypt

        writes_after_encrypt = run(kernel, pipeline())
        assert enclave.stats.by_name["fwrite"].calls == writes_after_encrypt

    def test_chunk_calls_are_longer_than_kissdb_calls(self):
        """The crypto pipeline's stdio calls move whole chunks, making
        them several times longer than kissdb's 8-byte ops (§V-B)."""
        kernel, fs, enclave = build_system()
        fs.create("/plain.bin", bytes(8 * 4096))
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def pipeline():
            yield from app.encrypt_file("/plain.bin", "/cipher.bin")

        run(kernel, pipeline())
        fread_latency = enclave.stats.by_name["fread"].mean_latency_cycles
        # A kissdb-style 8-byte fread costs ~14.8k cycles end to end
        # (regular path); chunked reads must be clearly longer.
        assert fread_latency > 17_000

    def test_two_thread_pipeline_runs_concurrently(self):
        kernel, fs, enclave = build_system()
        fs.create("/a.plain", bytes(16 * 4096))
        app = CryptoFileApp(enclave, fast_engine, chunk_bytes=4096)

        def prepare():
            yield from app.encrypt_file("/a.plain", "/pre.cipher")

        run(kernel, prepare())
        start = kernel.now

        encryptor = kernel.spawn(app.encrypt_file("/a.plain", "/b.cipher"), name="enc")
        decryptor = kernel.spawn(app.decrypt_file("/pre.cipher"), name="dec")
        kernel.join(encryptor, decryptor)
        elapsed_both = kernel.now - start
        assert app.chunks_encrypted == 32  # two encrypt passes of 16
        assert app.chunks_decrypted == 16
        # Concurrency: both threads together take less than 1.7x one pass.
        kernel2, fs2, enclave2 = build_system()
        fs2.create("/a.plain", bytes(16 * 4096))
        app2 = CryptoFileApp(enclave2, fast_engine, chunk_bytes=4096)
        solo = kernel2.spawn(app2.encrypt_file("/a.plain", "/b.cipher"), name="enc")
        kernel2.join(solo)
        assert elapsed_both < 1.7 * kernel2.now
