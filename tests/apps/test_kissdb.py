"""Tests for the KISSDB reimplementation over the simulated ocall stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import KissDB, KissDBError
from repro.apps.kissdb import djb2
from tests.apps.support import build_system


def run(kernel, program):
    """Run one simulated program to completion and return its result."""
    thread = kernel.spawn(program)
    kernel.join(thread)
    return thread.result


def key8(i):
    return i.to_bytes(8, "big")


class TestBasicOperations:
    def test_put_get_roundtrip(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()
            yield from db.put(b"key-0001", b"val-0001")
            value = yield from db.get(b"key-0001")
            yield from db.close()
            return value

        assert run(kernel, app()) == b"val-0001"

    def test_missing_key_returns_none(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()
            value = yield from db.get(b"nothere!")
            return value

        assert run(kernel, app()) is None

    def test_overwrite_updates_in_place(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()
            yield from db.put(b"samekey!", b"value-v1")
            size_after_first = fs.size("/db")
            yield from db.put(b"samekey!", b"value-v2")
            value = yield from db.get(b"samekey!")
            return value, size_after_first, fs.size("/db")

        value, size1, size2 = run(kernel, app())
        assert value == b"value-v2"
        assert size1 == size2  # in-place overwrite, no new entry appended

    def test_wrong_key_size_rejected(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()
            yield from db.put(b"short", b"value-v1")

        with pytest.raises(KissDBError):
            run(kernel, app())

    def test_wrong_value_size_rejected(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()
            yield from db.put(b"key-0001", b"longer-than-8-bytes")

        with pytest.raises(KissDBError):
            run(kernel, app())


class TestCollisionsAndChaining:
    def test_colliding_keys_chain_into_new_tables(self):
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db", hash_table_size=4)

        def app():
            yield from db.open()
            for i in range(32):
                yield from db.put(key8(i), key8(i * 7))
            values = []
            for i in range(32):
                value = yield from db.get(key8(i))
                values.append(value)
            return values

        values = run(kernel, app())
        assert values == [key8(i * 7) for i in range(32)]
        assert db.table_count > 1  # collisions forced chained pages

    def test_ocall_mix_is_seek_heavy(self):
        """The paper observes fseeko ~2x more frequent than fread and
        fwrite individually in the SET workload."""
        kernel, fs, enclave = build_system()
        db = KissDB(enclave, "/db", hash_table_size=64)

        def app():
            yield from db.open()
            for i in range(300):
                yield from db.put(key8(i), key8(i))

        run(kernel, app())
        stats = enclave.stats.by_name
        seeks = stats["fseeko"].calls
        reads = stats["fread"].calls
        writes = stats["fwrite"].calls
        assert seeks > reads
        assert seeks > writes
        # All three are short calls (the switchless-friendly regime).
        assert stats["fseeko"].mean_latency_cycles < 40_000


class TestPersistence:
    def test_reopen_preserves_contents(self):
        kernel, fs, enclave = build_system()
        db1 = KissDB(enclave, "/db", hash_table_size=8)

        def write_phase():
            yield from db1.open()
            for i in range(20):
                yield from db1.put(key8(i), key8(100 + i))
            yield from db1.close()

        run(kernel, write_phase())

        db2 = KissDB(enclave, "/db", hash_table_size=8)

        def read_phase():
            yield from db2.open()
            values = []
            for i in range(20):
                value = yield from db2.get(key8(i))
                values.append(value)
            yield from db2.close()
            return values

        assert run(kernel, read_phase()) == [key8(100 + i) for i in range(20)]
        assert db2.table_count == db1.table_count

    def test_geometry_mismatch_detected(self):
        kernel, fs, enclave = build_system()
        db1 = KissDB(enclave, "/db", hash_table_size=8)

        def create():
            yield from db1.open()
            yield from db1.close()

        run(kernel, create())
        db2 = KissDB(enclave, "/db", hash_table_size=16)

        def reopen():
            yield from db2.open()

        with pytest.raises(KissDBError):
            run(kernel, reopen())

    def test_garbage_file_rejected(self):
        kernel, fs, enclave = build_system()
        fs.create("/db", b"this is not a kissdb file at all.....")
        db = KissDB(enclave, "/db")

        def app():
            yield from db.open()

        with pytest.raises(KissDBError):
            run(kernel, app())


class TestHash:
    def test_djb2_known_values(self):
        # djb2("") = 5381; djb2("a") = 5381*33 + ord('a')
        assert djb2(b"") == 5381
        assert djb2(b"a") == 5381 * 33 + ord("a")

    def test_djb2_is_64_bit(self):
        assert djb2(b"x" * 100) < 2**64


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=255)),
        min_size=1,
        max_size=40,
    )
)
def test_kissdb_behaves_like_a_dict(ops):
    """Property: a sequence of puts matches a reference dict on reads."""
    kernel, fs, enclave = build_system()
    db = KissDB(enclave, "/db", hash_table_size=4)
    reference = {}

    def app():
        yield from db.open()
        for key_i, value_i in ops:
            key = key8(key_i)
            value = bytes([value_i]) * 8
            reference[key] = value
            yield from db.put(key, value)
        results = {}
        for key in reference:
            results[key] = yield from db.get(key)
        return results

    thread = kernel.spawn(app())
    kernel.join(thread)
    assert thread.result == reference
