"""Basic kernel behaviour: compute timing, sleep, block, spin, results."""

import pytest

from repro.sim import (
    Block,
    Compute,
    DeadlockError,
    Kernel,
    MachineSpec,
    Sleep,
    Spin,
    ThreadState,
)
from repro.sim.errors import EventAlreadyFired, LivelockError, SimulationError


def single_core() -> Kernel:
    return Kernel(MachineSpec(n_cores=1, smt=1))


def many_core(n: int = 8) -> Kernel:
    return Kernel(MachineSpec(n_cores=n, smt=1))


class TestCompute:
    def test_single_compute_advances_time_exactly(self):
        kernel = single_core()

        def program():
            yield Compute(1000)

        t = kernel.spawn(program())
        kernel.join(t)
        assert kernel.now == pytest.approx(1000)
        assert t.cpu_cycles == pytest.approx(1000)

    def test_sequential_computes_accumulate(self):
        kernel = single_core()

        def program():
            yield Compute(100)
            yield Compute(250)
            yield Compute(0)  # zero-cost, should not error or advance time

        t = kernel.spawn(program())
        kernel.join(t)
        assert kernel.now == pytest.approx(350)

    def test_thread_result_is_generator_return_value(self):
        kernel = single_core()

        def program():
            yield Compute(10)
            return "the-answer"

        t = kernel.spawn(program())
        kernel.join(t)
        assert t.result == "the-answer"
        assert t.done_event.fired
        assert t.done_event.value == "the-answer"

    def test_parallel_threads_on_separate_cores(self):
        kernel = many_core(4)

        def program():
            yield Compute(1000)

        threads = [kernel.spawn(program()) for _ in range(4)]
        kernel.join(*threads)
        # All four fit on distinct cores, so the makespan is one compute.
        assert kernel.now == pytest.approx(1000)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)


class TestSleep:
    def test_sleep_releases_cpu(self):
        kernel = single_core()

        def sleeper():
            yield Sleep(5000)

        def worker():
            yield Compute(5000)

        s = kernel.spawn(sleeper())
        w = kernel.spawn(worker())
        kernel.join(s, w)
        # Both finish at 5000: the sleeper does not occupy the single core.
        assert kernel.now == pytest.approx(5000)
        assert s.cpu_cycles == pytest.approx(0)
        assert w.cpu_cycles == pytest.approx(5000)

    def test_sleep_wakes_at_exact_time(self):
        kernel = single_core()
        wake_times = []

        def sleeper():
            yield Sleep(123)
            wake_times.append(kernel.now)

        kernel.join(kernel.spawn(sleeper()))
        assert wake_times == [pytest.approx(123)]


class TestBlockAndEvents:
    def test_block_resumes_with_fire_value(self):
        kernel = many_core(2)
        seen = []

        def waiter(event):
            value = yield Block(event)
            seen.append((kernel.now, value))

        def firer(event):
            yield Compute(700)
            event.fire("payload")

        ev = kernel.event("test")
        w = kernel.spawn(waiter(ev))
        f = kernel.spawn(firer(ev))
        kernel.join(w, f)
        assert seen == [(pytest.approx(700), "payload")]
        assert w.cpu_cycles == pytest.approx(0)  # blocked, not spinning

    def test_block_on_fired_event_continues_immediately(self):
        kernel = single_core()
        ev = kernel.event()
        ev.fire(42)

        def program():
            value = yield Block(ev)
            return value

        t = kernel.spawn(program())
        kernel.join(t)
        assert t.result == 42
        assert kernel.now == pytest.approx(0)

    def test_event_fires_only_once(self):
        kernel = single_core()
        ev = kernel.event("once")
        ev.fire()
        with pytest.raises(EventAlreadyFired):
            ev.fire()
        assert ev.fire_if_unfired() is False

    def test_join_blocked_forever_raises_deadlock(self):
        kernel = single_core()
        ev = kernel.event("never")

        def program():
            yield Block(ev)

        t = kernel.spawn(program())
        with pytest.raises(DeadlockError):
            kernel.join(t)

    def test_livelock_detection(self):
        kernel = single_core()
        ev = kernel.event()
        ev.fire()

        def spin_forever():
            while True:
                yield Block(ev)  # already fired: zero-time step each turn

        t = kernel.spawn(spin_forever())
        with pytest.raises(LivelockError):
            kernel.join(t)


class TestSpin:
    def test_spin_times_out_and_charges_cpu(self):
        kernel = single_core()
        ev = kernel.event("never")
        outcome = []

        def program():
            fired = yield Spin(ev, 2000)
            outcome.append(fired)

        t = kernel.spawn(program())
        kernel.join(t)
        assert outcome == [False]
        assert kernel.now == pytest.approx(2000)
        assert t.cycles_by["spin"] == pytest.approx(2000)

    def test_spin_wakes_early_on_fire(self):
        kernel = many_core(2)
        ev = kernel.event()
        outcome = []

        def spinner():
            fired = yield Spin(ev, 100_000)
            outcome.append((kernel.now, fired))

        def firer():
            yield Compute(300)
            ev.fire()

        s = kernel.spawn(spinner())
        f = kernel.spawn(firer())
        kernel.join(s, f)
        assert outcome == [(pytest.approx(300), True)]
        assert s.cycles_by["spin"] == pytest.approx(300)

    def test_spin_on_fired_event_returns_true_instantly(self):
        kernel = single_core()
        ev = kernel.event()
        ev.fire()

        def program():
            fired = yield Spin(ev, 1_000_000)
            return fired

        t = kernel.spawn(program())
        kernel.join(t)
        assert t.result is True
        assert kernel.now == pytest.approx(0)

    def test_spin_zero_timeout_returns_false(self):
        kernel = single_core()
        ev = kernel.event()

        def program():
            fired = yield Spin(ev, 0)
            return fired

        t = kernel.spawn(program())
        kernel.join(t)
        assert t.result is False


class TestRunControls:
    def test_run_until_time_stops_clock(self):
        kernel = single_core()

        def program():
            yield Compute(10_000)

        kernel.spawn(program())
        kernel.run(until_time=4000)
        assert kernel.now == pytest.approx(4000)
        kernel.run()
        assert kernel.now == pytest.approx(10_000)

    def test_max_events_guard(self):
        kernel = single_core()

        def program():
            for _ in range(100):
                yield Sleep(10)

        kernel.spawn(program())
        with pytest.raises(SimulationError):
            kernel.run(max_events=5)

    def test_thread_states_progression(self):
        kernel = single_core()
        ev = kernel.event()

        def program():
            yield Block(ev)

        t = kernel.spawn(program())
        assert t.state is ThreadState.READY
        kernel.run(until_time=0)
        assert t.state is ThreadState.BLOCKED
        ev.fire()
        kernel.run()
        assert t.state is ThreadState.DONE

    def test_thread_names_are_unique(self):
        kernel = single_core()

        def program():
            yield Compute(1)

        t1 = kernel.spawn(program(), name="w")
        t2 = kernel.spawn(program(), name="w")
        assert t1.name != t2.name
