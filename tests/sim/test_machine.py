"""Unit tests for the machine specification."""

import pytest

from repro.sim import MachineSpec, paper_machine


class TestMachineSpec:
    def test_defaults_match_paper_platform(self):
        spec = paper_machine()
        assert spec.n_cores == 4
        assert spec.smt == 2
        assert spec.n_logical == 8
        assert spec.freq_hz == pytest.approx(3.8e9)

    def test_cycle_second_roundtrip(self):
        spec = MachineSpec(freq_hz=2.0e9)
        assert spec.cycles(1.0) == pytest.approx(2.0e9)
        assert spec.seconds(spec.cycles(0.25)) == pytest.approx(0.25)

    def test_sibling_pairs(self):
        spec = MachineSpec(n_cores=2, smt=2)
        assert spec.sibling_of(0) == 1
        assert spec.sibling_of(1) == 0
        assert spec.sibling_of(2) == 3
        assert spec.sibling_of(3) == 2

    def test_no_sibling_without_smt(self):
        spec = MachineSpec(n_cores=4, smt=1)
        assert spec.sibling_of(0) is None
        assert spec.n_logical == 4

    def test_paper_machine_accepts_overrides(self):
        spec = paper_machine(smt=1)
        assert spec.n_logical == 4

    def test_server_machine_preset(self):
        from repro.sim import server_machine

        spec = server_machine()
        assert spec.n_logical == 32
        assert spec.freq_hz == pytest.approx(2.6e9)
        assert server_machine(n_cores=8).n_logical == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cores": 0},
            {"smt": 3},
            {"smt_factor": 0.0},
            {"smt_factor": 1.5},
            {"freq_hz": 0},
            {"timeslice_cycles": 0},
            {"dispatch_overhead_cycles": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MachineSpec(**kwargs)
