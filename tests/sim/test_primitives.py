"""Tests for Event and Gate synchronisation primitives."""

import pytest

from repro.sim import Block, Compute, Kernel, MachineSpec, Spin


def make_kernel() -> Kernel:
    return Kernel(MachineSpec(n_cores=4, smt=1))


class TestGate:
    def test_wait_value_fires_on_matching_set(self):
        kernel = make_kernel()
        gate = kernel.gate("idle", name="status")
        seen = []

        def waiter():
            value = yield Block(gate.wait_value("busy"))
            seen.append((kernel.now, value))

        def setter():
            yield Compute(500)
            gate.set("busy")

        kernel.join(kernel.spawn(waiter()), kernel.spawn(setter()))
        assert seen == [(pytest.approx(500), "busy")]

    def test_wait_value_prefired_when_already_satisfied(self):
        kernel = make_kernel()
        gate = kernel.gate(7)
        ev = gate.wait_for(lambda v: v >= 5)
        assert ev.fired
        assert ev.value == 7

    def test_non_matching_set_keeps_waiter_parked(self):
        kernel = make_kernel()
        gate = kernel.gate(0)
        resumed = []

        def waiter():
            yield Block(gate.wait_value(3))
            resumed.append(kernel.now)

        t = kernel.spawn(waiter())

        def setter():
            yield Compute(10)
            gate.set(1)
            yield Compute(10)
            gate.set(2)
            yield Compute(10)
            gate.set(3)

        kernel.join(t, kernel.spawn(setter()))
        assert resumed == [pytest.approx(30)]
        assert gate.value == 3

    def test_multiple_waiters_with_distinct_predicates(self):
        kernel = make_kernel()
        gate = kernel.gate(0)
        log = []

        def waiter(label, target):
            yield Block(gate.wait_value(target))
            log.append(label)

        t1 = kernel.spawn(waiter("one", 1))
        t2 = kernel.spawn(waiter("two", 2))

        def setter():
            yield Compute(5)
            gate.set(1)
            yield Compute(5)
            gate.set(2)

        kernel.join(t1, t2, kernel.spawn(setter()))
        assert log == ["one", "two"]

    def test_spin_on_gate_event(self):
        kernel = make_kernel()
        gate = kernel.gate("unused")

        def spinner():
            fired = yield Spin(gate.wait_value("processing"), 10_000)
            return fired

        def setter():
            yield Compute(400)
            gate.set("processing")

        s = kernel.spawn(spinner())
        kernel.join(s, kernel.spawn(setter()))
        assert s.result is True
        assert s.cycles_by["spin"] == pytest.approx(400)

    def test_stale_waiters_are_pruned_after_fire(self):
        kernel = make_kernel()
        gate = kernel.gate(0)
        ev = gate.wait_value(1)
        gate.set(1)
        assert ev.fired
        # A second set must not attempt to re-fire the one-shot event.
        gate.set(1)
        gate.set(2)


class TestEventWaiterMix:
    def test_event_wakes_blockers_and_spinners_together(self):
        kernel = make_kernel()
        ev = kernel.event()
        wake_times = []

        def blocker():
            yield Block(ev)
            wake_times.append(("block", kernel.now))

        def spinner():
            yield Spin(ev, 1_000_000)
            wake_times.append(("spin", kernel.now))

        def firer():
            yield Compute(250)
            ev.fire()

        threads = [
            kernel.spawn(blocker()),
            kernel.spawn(spinner()),
            kernel.spawn(firer()),
        ]
        kernel.join(*threads)
        assert sorted(wake_times) == [
            ("block", pytest.approx(250)),
            ("spin", pytest.approx(250)),
        ]

    def test_fire_before_run_processed_at_start(self):
        kernel = make_kernel()
        ev = kernel.event()

        def waiter():
            value = yield Block(ev)
            return value

        t = kernel.spawn(waiter())
        ev.fire("early")
        kernel.join(t)
        assert t.result == "early"
