"""Dual-run equivalence: wheel and heap kernels are byte-identical.

The calendar queue may only change *host* performance.  These tests run
the same seeded workloads on ``Kernel(..., timers="wheel")`` and
``timers="heap")`` and require identical simulated outcomes — clock,
event counts, per-thread accounting, scheduler state, and (for the serve
layer) the entire JSON artifact, byte for byte.
"""

import json

import pytest

import repro.sim.kernel as kernel_mod
from repro.profiler.meta import run_storm
from repro.sim import Compute, Kernel, Sleep, paper_machine
from repro.sim.timerqueue import make_timer_queue


def snapshot(kernel):
    return {
        "now": kernel.now,
        "events": kernel.events_processed,
        "cycles_by": [dict(t.cycles_by) for t in kernel.threads],
        "cpus": kernel.cpu_snapshot(),
    }


@pytest.mark.parametrize("use_zc", [False, True])
def test_meta_storm_outcomes_identical(use_zc):
    runs = {
        backend: run_storm(use_zc=use_zc, n_ocalls=600, timers=backend)
        for backend in ("wheel", "heap")
    }
    assert snapshot(runs["wheel"]) == snapshot(runs["heap"])


def test_sleep_heavy_workload_identical():
    def build(timers):
        kernel = Kernel(paper_machine(), timers=timers)

        def worker(seed):
            for step in range(40):
                yield Compute(100 + 37 * ((seed * 31 + step) % 11))
                yield Sleep(1_000 + 997 * ((seed * 17 + step) % 13))

        threads = [kernel.spawn(worker(i), name=f"w{i}") for i in range(12)]
        kernel.join(*threads)
        return kernel

    assert snapshot(build("wheel")) == snapshot(build("heap"))


def _serve_artifact(monkeypatch, backend):
    from repro.api import BenchSpec, ServeSpec
    from repro.serve.bench import run_bench

    original = make_timer_queue
    monkeypatch.setattr(
        kernel_mod,
        "make_timer_queue",
        lambda _requested, timeslice: original(backend, timeslice),
    )
    result = run_bench(
        BenchSpec(
            serve=ServeSpec(
                shards=3,
                budget=6,
                tenants=(("bronze", 1.0), ("gold", 3.0)),
            ),
            seconds=0.03,
            rate=5_000.0,
        ),
        telemetry=False,
    )
    return json.dumps(result, sort_keys=True)


def test_serve_bench_artifact_byte_identical(monkeypatch):
    # The full serving stack — router timeouts, budget arbiter, tenant
    # fair shedding, per-request spans — exercises mass cancel/re-arm and
    # timeslice preemption; its artifact must not depend on the backend.
    assert _serve_artifact(monkeypatch, "wheel") == _serve_artifact(
        monkeypatch, "heap"
    )


def test_kernel_rejects_unknown_backend():
    with pytest.raises(ValueError, match="timers"):
        Kernel(paper_machine(), timers="splay")
