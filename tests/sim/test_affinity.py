"""Tests for CPU affinity (sched_setaffinity-style pinning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Compute, Kernel, MachineSpec, SchedTrace


def make_kernel(n_cores=2, smt=1, timeslice=1e9):
    return Kernel(MachineSpec(n_cores=n_cores, smt=smt, timeslice_cycles=timeslice))


class TestAffinity:
    def test_pinned_threads_serialise_on_their_core(self):
        kernel = make_kernel(n_cores=4, timeslice=100)

        def program():
            yield Compute(1000)

        a = kernel.spawn(program(), affinity={0})
        b = kernel.spawn(program(), affinity={0})
        kernel.join(a, b)
        # Both restricted to cpu0: serialised despite 3 idle cores.
        assert kernel.now == pytest.approx(2000)
        assert kernel.cpus[0].busy_cycles == pytest.approx(2000)
        assert all(c.busy_cycles == 0 for c in kernel.cpus[1:])

    def test_unpinned_threads_use_other_cores(self):
        kernel = make_kernel(n_cores=2)

        def program():
            yield Compute(1000)

        pinned = kernel.spawn(program(), affinity={0})
        free = kernel.spawn(program())
        kernel.join(pinned, free)
        assert kernel.now == pytest.approx(1000)  # ran in parallel

    def test_blocked_pinned_thread_does_not_block_compatible_ones(self):
        """A queued thread whose allowed CPU is busy must not starve
        later threads that can run elsewhere."""
        kernel = make_kernel(n_cores=2, timeslice=1e9)
        order = []

        def program(label, work):
            yield Compute(work)
            order.append((label, kernel.now))

        long_on_0 = kernel.spawn(program("long", 10_000), affinity={0})
        waiting_on_0 = kernel.spawn(program("waits", 100), affinity={0})
        free = kernel.spawn(program("free", 100))
        kernel.join(long_on_0, waiting_on_0, free)
        by_label = dict(order)
        assert by_label["free"] == pytest.approx(100)  # cpu1, immediately
        assert by_label["waits"] == pytest.approx(10_100)  # after the hog

    def test_affinity_respects_smt_preference_within_mask(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=2, smt_factor=0.5))

        def program():
            yield Compute(1000)

        # Mask allows cpu1 (sibling of 0) and cpu2 (own physical core):
        # the dispatcher must pick cpu2 once cpu0 is busy.
        a = kernel.spawn(program(), affinity={0})
        b = kernel.spawn(program(), affinity={1, 2})
        kernel.join(a, b)
        assert kernel.now == pytest.approx(1000)  # no SMT contention

    def test_invalid_masks_rejected(self):
        kernel = make_kernel(n_cores=2)

        def program():
            yield Compute(1)

        with pytest.raises(ValueError):
            kernel.spawn(program(), affinity={5})
        with pytest.raises(ValueError):
            kernel.spawn(program(), affinity=set())

    def test_preemption_still_works_with_mixed_affinity(self):
        kernel = make_kernel(n_cores=1, timeslice=100)

        def program(work):
            yield Compute(work)

        a = kernel.spawn(program(500), affinity={0})
        b = kernel.spawn(program(500))
        kernel.join(a, b)
        assert kernel.now == pytest.approx(1000)
        assert a.cpu_cycles == pytest.approx(500)
        assert b.cpu_cycles == pytest.approx(500)


@settings(max_examples=40, deadline=None)
@given(
    masks=st.lists(
        st.one_of(
            st.none(),
            st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
        ),
        min_size=1,
        max_size=6,
    ),
    works=st.lists(st.floats(min_value=10, max_value=5_000), min_size=1, max_size=6),
)
def test_affinity_is_never_violated(masks, works):
    """Property: no thread is ever dispatched outside its mask, and all
    work completes regardless of mask combinations."""
    trace = SchedTrace(max_entries=100_000)
    kernel = Kernel(
        MachineSpec(n_cores=4, smt=1, timeslice_cycles=100), trace=trace
    )
    threads = []
    for i, work in enumerate(works):
        mask = masks[i % len(masks)]
        affinity = frozenset(mask) if mask is not None else None

        def program(w=work):
            yield Compute(w)

        threads.append(kernel.spawn(program(), name=f"t{i}", affinity=affinity))
    kernel.join(*threads)
    assert all(t.done for t in threads)
    for i, thread in enumerate(threads):
        mask = masks[i % len(masks)]
        if mask is None:
            continue
        for _, event, name, cpu in trace.for_thread(thread.name):
            if event == "dispatch":
                assert cpu in mask, f"{name} dispatched on cpu{cpu}, mask {mask}"
