"""Scheduling-level kernel tests: preemption, SMT model, accounting."""

import pytest

from repro.sim import Compute, Kernel, MachineSpec, Sleep, Spin, YieldCPU


class TestPreemption:
    def test_oversubscription_shares_single_core(self):
        """Two CPU-bound threads on one core each get half the machine."""
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, timeslice_cycles=100))

        def program():
            yield Compute(1000)

        a = kernel.spawn(program(), name="a")
        b = kernel.spawn(program(), name="b")
        kernel.join(a, b)
        # Total work is 2000 cycles on one core.
        assert kernel.now == pytest.approx(2000)
        assert a.cpu_cycles == pytest.approx(1000)
        assert b.cpu_cycles == pytest.approx(1000)
        # With round-robin at 100-cycle slices both finish near the end.
        assert abs(a.cpu_cycles - b.cpu_cycles) <= 100

    def test_timeslice_not_charged_when_alone(self):
        """A lone thread is never preempted, only slice-renewed."""
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, timeslice_cycles=64))

        def program():
            yield Compute(1000)

        t = kernel.spawn(program())
        kernel.join(t)
        assert kernel.now == pytest.approx(1000)

    def test_yield_cpu_round_robins(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        order = []

        def program(label):
            for _ in range(3):
                order.append(label)
                yield Compute(10)
                yield YieldCPU()

        a = kernel.spawn(program("a"))
        b = kernel.spawn(program("b"))
        kernel.join(a, b)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_yield_cpu_noop_when_alone(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def program():
            yield Compute(10)
            yield YieldCPU()
            yield Compute(10)

        t = kernel.spawn(program())
        kernel.join(t)
        assert kernel.now == pytest.approx(20)

    def test_spinner_is_preempted_like_computation(self):
        """A spinning thread must not starve a compute-bound one."""
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, timeslice_cycles=100))
        ev = kernel.event("never")

        def spinner():
            yield Spin(ev, 1000)

        def worker():
            yield Compute(1000)

        s = kernel.spawn(spinner())
        w = kernel.spawn(worker())
        kernel.join(s, w)
        assert kernel.now == pytest.approx(2000)
        assert s.cycles_by["spin"] == pytest.approx(1000)
        assert w.cycles_by["compute"] == pytest.approx(1000)


class TestSmtModel:
    def test_sibling_contention_slows_both(self):
        factor = 0.5
        kernel = Kernel(MachineSpec(n_cores=1, smt=2, smt_factor=factor))

        def program():
            yield Compute(1000)

        a = kernel.spawn(program())
        b = kernel.spawn(program())
        kernel.join(a, b)
        # Both hyperthreads run at half speed the whole time.
        assert kernel.now == pytest.approx(1000 / factor)

    def test_sibling_speed_recovers_when_one_finishes(self):
        factor = 0.5
        kernel = Kernel(MachineSpec(n_cores=1, smt=2, smt_factor=factor))

        def short():
            yield Compute(100)

        def long():
            yield Compute(1000)

        s = kernel.spawn(short())
        lg = kernel.spawn(long())
        kernel.join(s, lg)
        # Short thread: 100 work at 0.5 speed -> done at wall 200.
        # Long thread: 200 wall * 0.5 = 100 work done, 900 left at full
        # speed -> finishes at 200 + 900 = 1100.
        assert s.done and lg.done
        assert kernel.now == pytest.approx(1100)

    def test_threads_spread_across_physical_cores_first(self):
        """Two threads on a 2-core/4-thread machine use distinct physical
        cores (Linux-style spreading), so they do not contend."""
        kernel = Kernel(MachineSpec(n_cores=2, smt=2, smt_factor=0.5))

        def program():
            yield Compute(1000)

        a = kernel.spawn(program())
        b = kernel.spawn(program())
        kernel.join(a, b)
        assert kernel.now == pytest.approx(1000)

    def test_third_thread_lands_on_busy_sibling(self):
        """Once both physical cores have work, SMT siblings get used."""
        kernel = Kernel(MachineSpec(n_cores=2, smt=2, smt_factor=0.5))

        def program():
            yield Compute(1000)

        threads = [kernel.spawn(program()) for _ in range(3)]
        kernel.join(*threads)
        # Threads 0 and 2 share a physical core at half speed; thread 1
        # runs alone until thread 0/2 finish.
        assert kernel.now == pytest.approx(2000)

    def test_smt_disabled_runs_full_speed(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1, smt_factor=0.5))

        def program():
            yield Compute(1000)

        a = kernel.spawn(program())
        b = kernel.spawn(program())
        kernel.join(a, b)
        assert kernel.now == pytest.approx(1000)


class TestAccounting:
    def test_busy_plus_idle_equals_capacity(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))

        def program(work):
            yield Compute(work)

        kernel.spawn(program(500))
        kernel.spawn(program(1500))
        kernel.run()
        snap = kernel.cpu_snapshot()
        capacity = snap["now"] * len(kernel.cpus)
        assert snap["busy_total"] + snap["idle_total"] == pytest.approx(capacity)
        assert snap["busy_total"] == pytest.approx(2000)

    def test_by_kind_breakdown(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))

        def app():
            yield Compute(300)

        def worker():
            yield Compute(700)

        kernel.spawn(app(), kind="app")
        kernel.spawn(worker(), kind="worker")
        kernel.run()
        snap = kernel.cpu_snapshot()
        assert snap["by_kind"]["app"] == pytest.approx(300)
        assert snap["by_kind"]["worker"] == pytest.approx(700)

    def test_snapshot_includes_in_progress_work(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def program():
            yield Compute(10_000)

        kernel.spawn(program())
        kernel.run(until_time=4000)
        snap = kernel.cpu_snapshot()
        assert snap["busy_total"] == pytest.approx(4000)

    def test_utilisation_fraction(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))

        def program():
            yield Compute(1000)

        kernel.spawn(program())
        kernel.run()
        # One of two cores busy the whole time.
        assert kernel.cpu_utilisation() == pytest.approx(0.5)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            kernel = Kernel(MachineSpec(n_cores=2, smt=2, timeslice_cycles=500))
            ev = kernel.event()
            finish_times = {}

            def spinner(name):
                yield Spin(ev, 5000)
                yield Compute(100)
                finish_times[name] = kernel.now

            def firer():
                yield Compute(1234)
                ev.fire()
                yield Compute(10)
                finish_times["firer"] = kernel.now

            threads = [kernel.spawn(spinner(f"s{i}"), name=f"s{i}") for i in range(4)]
            threads.append(kernel.spawn(firer(), name="firer"))
            kernel.join(*threads)
            return kernel.now, kernel.events_processed, finish_times

        first = build()
        second = build()
        assert first == second
