"""Property-based tests for kernel invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Block, Compute, Kernel, MachineSpec, Sleep, Spin

works = st.lists(st.floats(min_value=1, max_value=50_000), min_size=1, max_size=12)


@settings(max_examples=60, deadline=None)
@given(works=works, n_cores=st.integers(min_value=1, max_value=8))
def test_total_busy_equals_total_work(works, n_cores):
    """Conservation: busy cycles across cores equals work requested."""
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=1, timeslice_cycles=1000))

    def program(w):
        yield Compute(w)

    threads = [kernel.spawn(program(w)) for w in works]
    kernel.join(*threads)
    snap = kernel.cpu_snapshot()
    assert snap["busy_total"] == pytest.approx(sum(works), rel=1e-9)
    for thread, w in zip(threads, works):
        assert thread.cpu_cycles == pytest.approx(w, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(works=works, n_cores=st.integers(min_value=1, max_value=8))
def test_makespan_bounds(works, n_cores):
    """Makespan is at least max(work) and at least total/cores, and never
    exceeds total work (single-core worst case, no SMT)."""
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=1, timeslice_cycles=500))

    def program(w):
        yield Compute(w)

    threads = [kernel.spawn(program(w)) for w in works]
    kernel.join(*threads)
    lower = max(max(works), sum(works) / n_cores)
    assert kernel.now >= lower - 1e-6
    assert kernel.now <= sum(works) + 1e-6


@settings(max_examples=60, deadline=None)
@given(
    works=works,
    smt_factor=st.floats(min_value=0.3, max_value=1.0),
)
def test_smt_busy_conservation(works, smt_factor):
    """With SMT, wall busy-time may exceed nominal work but work completes."""
    kernel = Kernel(MachineSpec(n_cores=2, smt=2, smt_factor=smt_factor))

    def program(w):
        yield Compute(w)

    threads = [kernel.spawn(program(w)) for w in works]
    kernel.join(*threads)
    snap = kernel.cpu_snapshot()
    # Wall busy cycles >= nominal work (slowdown only ever stretches it).
    assert snap["busy_total"] >= sum(works) - 1e-6
    # And bounded by work / smt_factor (max slowdown).
    assert snap["busy_total"] <= sum(works) / smt_factor + 1e-6
    assert all(t.done for t in threads)


@settings(max_examples=40, deadline=None)
@given(
    fire_at=st.floats(min_value=0, max_value=20_000),
    timeout=st.floats(min_value=1, max_value=20_000),
)
def test_spin_charges_min_of_timeout_and_fire(fire_at, timeout):
    """A spinner burns exactly min(timeout, fire time) cycles."""
    kernel = Kernel(MachineSpec(n_cores=2, smt=1))
    ev = kernel.event()

    def spinner():
        fired = yield Spin(ev, timeout)
        return fired

    def firer():
        yield Sleep(fire_at)
        ev.fire()

    s = kernel.spawn(spinner())
    f = kernel.spawn(firer())
    kernel.join(s, f)
    expected = min(timeout, fire_at)
    assert s.cycles_by["spin"] == pytest.approx(expected, rel=1e-9, abs=1e-6)
    assert s.result is (fire_at < timeout or fire_at == 0)


@settings(max_examples=40, deadline=None)
@given(
    sleeps=st.lists(st.floats(min_value=1, max_value=10_000), min_size=1, max_size=8)
)
def test_sleep_only_threads_never_use_cpu(sleeps):
    kernel = Kernel(MachineSpec(n_cores=1, smt=1))

    def program(duration):
        yield Sleep(duration)

    threads = [kernel.spawn(program(s)) for s in sleeps]
    kernel.join(*threads)
    assert kernel.now == pytest.approx(max(sleeps))
    snap = kernel.cpu_snapshot()
    assert snap["busy_total"] == pytest.approx(0.0)


@settings(max_examples=30, deadline=None)
@given(
    n_waiters=st.integers(min_value=1, max_value=10),
    fire_at=st.floats(min_value=1, max_value=5_000),
)
def test_event_wakes_all_blockers(n_waiters, fire_at):
    kernel = Kernel(MachineSpec(n_cores=4, smt=1))
    ev = kernel.event()
    woken = []

    def waiter(i):
        yield Block(ev)
        woken.append(i)

    def firer():
        yield Sleep(fire_at)
        ev.fire()

    threads = [kernel.spawn(waiter(i)) for i in range(n_waiters)]
    threads.append(kernel.spawn(firer()))
    kernel.join(*threads)
    assert sorted(woken) == list(range(n_waiters))
