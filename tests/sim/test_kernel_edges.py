"""Edge-case kernel tests: timers, accounting flushes, queue inspection."""

import pytest

from repro.sim import Block, Compute, Kernel, MachineSpec, Sleep, Spin
from repro.sim.errors import SimulationError


class TestCallAt:
    def test_call_at_fires_at_absolute_time(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        fired = []
        kernel.call_at(5000, lambda: fired.append(kernel.now))
        kernel.run()
        assert fired == [pytest.approx(5000)]

    def test_call_at_in_the_past_rejected(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        kernel.call_at(1000, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.call_at(10, lambda: None)

    def test_timer_cancellation(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        fired = []
        timer = kernel.call_at(100, lambda: fired.append(1))
        timer.cancel()
        kernel.run()
        assert fired == []


class TestAccountingFlush:
    def test_flush_mid_activity(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def program():
            yield Compute(10_000)

        t = kernel.spawn(program())
        kernel.run(until_time=3000)
        kernel.flush_accounting()
        assert t.cpu_cycles == pytest.approx(3000)
        kernel.run()
        assert t.cpu_cycles == pytest.approx(10_000)

    def test_double_flush_is_idempotent(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def program():
            yield Compute(1000)

        kernel.spawn(program())
        kernel.run(until_time=500)
        kernel.flush_accounting()
        kernel.flush_accounting()
        snap = kernel.cpu_snapshot()
        assert snap["busy_total"] == pytest.approx(500)


class TestReadyQueue:
    def test_queue_length_reflects_oversubscription(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, timeslice_cycles=1e9))

        def program():
            yield Compute(1000)

        for _ in range(3):
            kernel.spawn(program())
        kernel.run(until_time=10)  # one running, two queued
        assert kernel.ready_queue_length() == 2


class TestMixedWaits:
    def test_spin_then_block_sequence(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        first = kernel.event()
        second = kernel.event()
        log = []

        def waiter():
            hit = yield Spin(first, 1_000)
            log.append(("spin", hit, kernel.now))
            value = yield Block(second)
            log.append(("block", value, kernel.now))

        def firer():
            yield Sleep(500)
            first.fire()
            yield Sleep(500)
            second.fire("done")

        kernel.join(kernel.spawn(waiter()), kernel.spawn(firer()))
        assert log == [
            ("spin", True, pytest.approx(500)),
            ("block", "done", pytest.approx(1000)),
        ]

    def test_many_sequential_spins_accumulate_exactly(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        never = kernel.event()

        def program():
            for _ in range(10):
                yield Spin(never, 100)

        t = kernel.spawn(program())
        kernel.join(t)
        assert t.cycles_by["spin"] == pytest.approx(1000)
        assert kernel.now == pytest.approx(1000)


class TestBadPrograms:
    def test_unknown_instruction_rejected(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def program():
            yield "not-an-instruction"

        kernel.spawn(program())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_handler_typeerror_surfaces(self):
        """A non-generator 'program' fails loudly at first dispatch."""
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        kernel.spawn(42)  # type: ignore[arg-type]
        with pytest.raises(AttributeError):
            kernel.run()


class TestDaemonSemantics:
    def test_join_ignores_parked_daemons(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        never = kernel.event()

        def daemon():
            yield Block(never)

        def app():
            yield Compute(100)

        kernel.spawn(daemon(), daemon=True)
        t = kernel.spawn(app())
        kernel.join(t)  # must not deadlock on the parked daemon
        assert t.done
