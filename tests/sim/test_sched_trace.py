"""Tests for the optional scheduling trace."""

import pytest

from repro.sim import Block, Compute, Kernel, MachineSpec, SchedTrace


def make_kernel(trace, **spec_kwargs):
    defaults = {"n_cores": 1, "smt": 1, "timeslice_cycles": 100}
    defaults.update(spec_kwargs)
    return Kernel(MachineSpec(**defaults), trace=trace)


class TestSchedTrace:
    def test_dispatch_and_finish_recorded(self):
        trace = SchedTrace()
        kernel = make_kernel(trace)

        def program():
            yield Compute(50)

        kernel.join(kernel.spawn(program(), name="t"))
        events = [e[1] for e in trace.for_thread("t")]
        assert events == ["dispatch", "finish"]

    def test_preemption_recorded(self):
        trace = SchedTrace()
        kernel = make_kernel(trace)

        def program():
            yield Compute(300)

        a = kernel.spawn(program(), name="a")
        b = kernel.spawn(program(), name="b")
        kernel.join(a, b)
        a_events = [e[1] for e in trace.for_thread("a")]
        assert "preempt" in a_events
        assert a_events.count("dispatch") >= 2  # redispatched after preempt

    def test_park_recorded_for_blocking(self):
        trace = SchedTrace()
        kernel = make_kernel(trace, n_cores=2)
        ev = kernel.event()

        def waiter():
            yield Block(ev)

        def firer():
            yield Compute(100)
            ev.fire()

        kernel.join(kernel.spawn(waiter(), name="w"), kernel.spawn(firer(), name="f"))
        w_events = [e[1] for e in trace.for_thread("w")]
        assert w_events == ["dispatch", "park", "dispatch", "finish"]

    def test_ring_buffer_caps_and_counts_drops(self):
        trace = SchedTrace(max_entries=4)
        kernel = make_kernel(trace)

        def program():
            yield Compute(1000)  # many 100-cycle slices -> many preemptions

        a = kernel.spawn(program(), name="a")
        b = kernel.spawn(program(), name="b")
        kernel.join(a, b)
        assert len(trace.entries) == 4
        assert trace.dropped > 0

    def test_render(self):
        trace = SchedTrace()
        kernel = make_kernel(trace)

        def program():
            yield Compute(10)

        kernel.join(kernel.spawn(program(), name="demo"))
        text = trace.render()
        assert "dispatch" in text and "demo" in text and "cpu0" in text

    def test_no_trace_means_no_overhead_object(self):
        kernel = make_kernel(None)

        def program():
            yield Compute(10)

        kernel.join(kernel.spawn(program()))
        assert kernel.trace is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SchedTrace(max_entries=0)

    def test_tracing_does_not_change_timing(self):
        def run(trace):
            kernel = make_kernel(trace)

            def program():
                yield Compute(1234)

            kernel.join(kernel.spawn(program()))
            return kernel.now

        assert run(None) == run(SchedTrace())
