"""Calendar-queue timer wheel: edge cases, compaction, heap equivalence.

The kernel's simulated outcomes ride entirely on the timer queue popping
in exact ``(when, seq)`` order, so these tests hammer the places where
the wheel's structure could diverge from the reference heap: same-cycle
seq ties, the overflow heap and its migration/rebase, pushes behind the
drain point, cancellation (including during a drain), and the compaction
that keeps mass cancel/re-arm workloads O(live).
"""

import random

import pytest

from repro.sim.timerqueue import (
    COMPACT_MIN_CANCELLED,
    CalendarQueue,
    Timer,
    TimerHeap,
    make_timer_queue,
)


def make_wheel(width=10.0, buckets=8):
    return CalendarQueue(bucket_cycles=width, n_buckets=buckets)


def drain(queue):
    out = []
    while True:
        timer = queue.pop()
        if timer is None:
            return out
        out.append((timer.when, timer.seq))


def push_all(queue, entries):
    timers = [Timer(when, seq, None) for when, seq in entries]
    for timer in timers:
        queue.push(timer)
    return timers


class TestOrdering:
    def test_same_timestamp_pops_in_seq_order(self):
        queue = make_wheel()
        entries = [(5.0, seq) for seq in (3, 0, 7, 1, 4)]
        push_all(queue, entries)
        assert drain(queue) == sorted(entries, key=lambda e: e[1])

    def test_same_timestamp_across_push_pop_interleave(self):
        # Later pushes at an identical timestamp always carry larger seq,
        # so serving the extracted batch before re-reading the bucket must
        # preserve exact order.
        queue = make_wheel()
        push_all(queue, [(5.0, 0), (5.0, 1)])
        first = queue.pop()
        assert (first.when, first.seq) == (5.0, 0)
        queue.push(Timer(5.0, 2, None))
        assert [(t, s) for t, s in drain(queue)] == [(5.0, 1), (5.0, 2)]

    def test_push_behind_drain_point_still_ordered(self):
        queue = make_wheel(width=10.0, buckets=8)
        push_all(queue, [(35.0, 0), (70.0, 1)])
        assert queue.pop().seq == 0  # drain point now in bucket 3
        # A shorter deadline than the drain point's bucket start: lands in
        # the (heap-ordered) current bucket and must pop before 70.0.
        queue.push(Timer(12.0, 2, None))
        assert drain(queue) == [(12.0, 2), (70.0, 1)]

    def test_total_order_equals_sorted(self):
        queue = make_wheel(width=7.0, buckets=16)
        rng = random.Random(5)
        entries = [(rng.uniform(0, 500), seq) for seq in range(300)]
        push_all(queue, entries)
        assert drain(queue) == sorted(entries)


class TestOverflow:
    def test_far_future_goes_to_overflow_and_migrates(self):
        queue = make_wheel(width=10.0, buckets=8)  # horizon = 80
        push_all(queue, [(5.0, 0), (790.0, 1), (81.0, 2)])
        assert queue.stats()["overflow"] == 2
        assert drain(queue) == [(5.0, 0), (81.0, 2), (790.0, 1)]
        assert queue.migrations >= 2

    def test_empty_wheel_rebases_to_overflow_min(self):
        queue = make_wheel(width=10.0, buckets=8)
        push_all(queue, [(123_456.0, 0)])
        assert queue.stats()["overflow"] == 1  # far beyond the horizon
        popped = queue.pop()
        assert (popped.when, popped.seq) == (123_456.0, 0)
        # The window rebased: a new near-term push after the rebase point
        # still pops correctly.
        queue.push(Timer(123_460.0, 1, None))
        assert drain(queue) == [(123_460.0, 1)]

    def test_overflow_never_pops_before_wheel(self):
        queue = make_wheel(width=10.0, buckets=4)  # tiny horizon = 40
        rng = random.Random(11)
        entries = [(rng.uniform(0, 400), seq) for seq in range(200)]
        push_all(queue, entries)
        assert drain(queue) == sorted(entries)


class TestCancellation:
    def test_cancelled_timer_is_skipped(self):
        queue = make_wheel()
        timers = push_all(queue, [(5.0, 0), (6.0, 1), (7.0, 2)])
        timers[1].cancel()
        assert drain(queue) == [(5.0, 0), (7.0, 2)]

    def test_cancel_is_idempotent(self):
        queue = make_wheel()
        (timer,) = push_all(queue, [(5.0, 0)])
        timer.cancel()
        timer.cancel()
        assert queue.live() == 0
        assert drain(queue) == []

    def test_cancel_during_callback_window(self):
        # The serve router's pattern: a popped timer's callback cancels
        # other pending timers (completion timeouts) and re-arms new ones.
        queue = make_wheel()
        timers = push_all(queue, [(5.0, 0), (6.0, 1), (7.0, 2)])
        first = queue.pop()
        assert first.seq == 0
        timers[2].cancel()  # cancel mid-drain, before its pop
        queue.push(Timer(6.5, 3, None))
        assert drain(queue) == [(6.0, 1), (6.5, 3)]

    def test_cancel_batched_same_timestamp_entry(self):
        # Batch extraction must still skip entries cancelled after the
        # batch was pulled out of the bucket.
        queue = make_wheel()
        timers = push_all(queue, [(5.0, 0), (5.0, 1), (5.0, 2)])
        assert queue.pop().seq == 0  # extracts the 5.0 run into the batch
        timers[1].cancel()
        assert drain(queue) == [(5.0, 2)]


class TestCompaction:
    def test_mass_cancel_rearm_stays_bounded(self):
        # The serve router's completion-timeout pattern: arm a timeout per
        # request, cancel nearly every one, re-arm.  Without compaction
        # the structure accumulates one dead entry per request; with it,
        # stored() stays O(live + compaction threshold).
        queue = make_wheel(width=100.0, buckets=64)
        seq = 0
        for _round in range(200):
            batch = [Timer(5_000.0 + seq + i, seq + i, None) for i in range(50)]
            seq += 50
            for timer in batch:
                queue.push(timer)
            for timer in batch:
                timer.cancel()
            assert queue.stored() <= queue.live() + 2 * COMPACT_MIN_CANCELLED + 50
        assert queue.compactions > 0
        assert queue.live() == 0

    def test_compaction_preserves_survivors_order(self):
        queue = make_wheel(width=10.0, buckets=16)
        rng = random.Random(3)
        timers = push_all(
            queue, [(rng.uniform(0, 1000), seq) for seq in range(600)]
        )
        survivors = []
        for timer in timers:
            if rng.random() < 0.8:
                timer.cancel()
            else:
                survivors.append((timer.when, timer.seq))
        queue.compact()
        assert queue.stored() == queue.live() == len(survivors)
        assert drain(queue) == sorted(survivors)

    def test_compaction_keeps_partially_served_batch(self):
        queue = make_wheel()
        push_all(queue, [(5.0, 0), (5.0, 1), (5.0, 2)])
        assert queue.pop().seq == 0  # 5.0 run now sits in the batch buffer
        queue.compact()
        assert drain(queue) == [(5.0, 1), (5.0, 2)]

    def test_heap_backend_reports_zero_compactions(self):
        heap = TimerHeap()
        push_all(heap, [(5.0, 0)])
        assert heap.stats()["compactions"] == 0


class TestWheelHeapEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workload_pops_identically(self, seed):
        # Property test: an adversarial interleave of pushes (near, far,
        # behind the drain point), pops and cancels produces the exact
        # same pop sequence from both backends.
        rng = random.Random(seed)
        wheel = CalendarQueue(bucket_cycles=rng.uniform(3.0, 50.0), n_buckets=16)
        heap = TimerHeap()
        live: list[tuple[Timer, Timer]] = []
        now = 0.0
        seq = 0
        wheel_pops, heap_pops = [], []
        for _ in range(2_000):
            action = rng.random()
            if action < 0.55:
                when = now + rng.choice((0.0, 0.5, 7.0, 40.0, 900.0)) * (
                    1 + rng.random()
                )
                pair = (Timer(when, seq, None), Timer(when, seq, None))
                seq += 1
                wheel.push(pair[0])
                heap.push(pair[1])
                live.append(pair)
            elif action < 0.85:
                w, h = wheel.pop(), heap.pop()
                if w is not None:
                    now = max(now, w.when)
                    wheel_pops.append((w.when, w.seq))
                if h is not None:
                    heap_pops.append((h.when, h.seq))
            elif live:
                pair = live.pop(rng.randrange(len(live)))
                pair[0].cancel()
                pair[1].cancel()
        wheel_pops += [(t.when, t.seq) for t in iter(wheel.pop, None)]
        heap_pops += [(t.when, t.seq) for t in iter(heap.pop, None)]
        assert wheel_pops == heap_pops
        assert wheel_pops == sorted(wheel_pops)


class TestFactory:
    def test_make_timer_queue_backends(self):
        assert isinstance(make_timer_queue("heap", 1000.0), TimerHeap)
        assert isinstance(make_timer_queue("wheel", 1000.0), CalendarQueue)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="timers must be one of"):
            make_timer_queue("btree", 1000.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(bucket_cycles=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(n_buckets=1)
