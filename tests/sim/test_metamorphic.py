"""Metamorphic properties of the simulator.

These check relations that must hold between *pairs* of simulations —
e.g. changing the CPU frequency must rescale wall-clock seconds without
changing any cycle count — catching unit bugs no single run can reveal.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def run_ocall_workload(freq_hz=3.8e9, cost_scale=1.0, n_calls=20):
    """A small enclave workload; returns (cycles, seconds, latency)."""
    kernel = Kernel(MachineSpec(n_cores=4, smt=2, freq_hz=freq_hz))
    urts = UntrustedRuntime()
    base = SgxCostModel()
    cost = SgxCostModel(
        eexit_cycles=base.eexit_cycles * cost_scale,
        eenter_cycles=base.eenter_cycles * cost_scale,
    )
    enclave = Enclave(kernel, urts, cost=cost)

    def handler():
        yield Compute(700)
        return None

    urts.register("f", handler)

    def app():
        for _ in range(n_calls):
            yield from enclave.ocall("f")

    kernel.join(kernel.spawn(app()))
    latency = enclave.stats.by_name["f"].mean_latency_cycles
    return kernel.now, kernel.now_seconds, latency


class TestFrequencyScaling:
    @settings(max_examples=10, deadline=None)
    @given(factor=st.sampled_from([0.5, 2.0, 10.0]))
    def test_frequency_rescales_seconds_not_cycles(self, factor):
        base_cycles, base_seconds, base_latency = run_ocall_workload(freq_hz=3.8e9)
        cycles, seconds, latency = run_ocall_workload(freq_hz=3.8e9 * factor)
        assert cycles == pytest.approx(base_cycles)
        assert latency == pytest.approx(base_latency)
        assert seconds == pytest.approx(base_seconds / factor)


class TestCostScaling:
    def test_transition_cost_moves_latency_linearly(self):
        """Doubling T_es adds exactly one extra T_es to each regular
        ocall's latency — nothing else in the path depends on it."""
        _, _, latency_1x = run_ocall_workload(cost_scale=1.0)
        _, _, latency_2x = run_ocall_workload(cost_scale=2.0)
        t_es = SgxCostModel().t_es
        assert latency_2x - latency_1x == pytest.approx(t_es)

    def test_zero_transition_cost_leaves_only_work(self):
        _, _, latency = run_ocall_workload(cost_scale=0.0)
        cost = SgxCostModel()
        assert latency == pytest.approx(cost.ocall_bookkeeping_cycles + 700)


class TestWorkloadScaling:
    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(min_value=1, max_value=40))
    def test_single_thread_runtime_linear_in_call_count(self, n):
        cycles_n, _, _ = run_ocall_workload(n_calls=n)
        cycles_1, _, _ = run_ocall_workload(n_calls=1)
        assert cycles_n == pytest.approx(cycles_1 * n, rel=1e-9)
