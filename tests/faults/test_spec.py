"""FaultSpec/FaultPlan validation, JSON round-trips, and the registry."""

import pytest

from repro.faults import FAULT_KINDS, NAMED_PLANS, FaultPlan, FaultSpec, get_plan


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor-strike", at_ms=1.0)

    def test_rejects_negative_instant(self):
        with pytest.raises(ValueError, match="at_ms"):
            FaultSpec(kind="worker-crash", at_ms=-1.0)

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError, match="unknown fault target"):
            FaultSpec(kind="worker-crash", at_ms=1.0, target="gpu-worker")

    def test_duration_kinds_need_positive_duration(self):
        for kind in ("worker-stall", "epc-pressure", "handoff", "clock-skew"):
            with pytest.raises(ValueError, match="duration_ms"):
                FaultSpec(kind=kind, at_ms=1.0)

    def test_inflating_kinds_need_factor_above_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="worker-slowdown", at_ms=1.0, duration_ms=1.0)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="epc-pressure", at_ms=1.0, duration_ms=1.0, factor=0.5)

    def test_drop_probability_bounded(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultSpec(
                kind="handoff", at_ms=1.0, duration_ms=1.0, drop_probability=1.5
            )

    def test_to_dict_elides_defaults(self):
        spec = FaultSpec(kind="worker-crash", at_ms=1.0, respawn_after_ms=0.5)
        data = spec.to_dict()
        assert data == {
            "kind": "worker-crash",
            "at_ms": 1.0,
            "respawn_after_ms": 0.5,
        }
        assert FaultSpec.from_dict(data) == spec

    def test_every_kind_round_trips(self):
        specs = [
            FaultSpec(kind="worker-crash", at_ms=1.0, index=0),
            FaultSpec(kind="worker-stall", at_ms=1.0, duration_ms=0.5),
            FaultSpec(kind="worker-slowdown", at_ms=1.0, duration_ms=2.0, factor=3.0),
            FaultSpec(kind="enclave-lost", at_ms=1.0),
            FaultSpec(kind="epc-pressure", at_ms=1.0, duration_ms=2.0, factor=2.0),
            FaultSpec(
                kind="handoff",
                at_ms=1.0,
                duration_ms=2.0,
                drop_probability=0.3,
                delay_ms=0.01,
            ),
            FaultSpec(kind="clock-skew", at_ms=1.0, duration_ms=2.0, factor=1.5),
        ]
        assert {spec.kind for spec in specs} == set(FAULT_KINDS)
        for spec in specs:
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultSpec field"):
            FaultSpec.from_dict({"kind": "worker-crash", "at_ms": 1.0, "sev": 9})


class TestFaultPlan:
    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="name"):
            FaultPlan(name="")

    def test_sorted_faults_orders_by_instant(self):
        plan = FaultPlan(
            name="p",
            faults=(
                FaultSpec(kind="enclave-lost", at_ms=5.0),
                FaultSpec(kind="worker-crash", at_ms=1.0),
            ),
        )
        assert [spec.at_ms for spec in plan.sorted_faults()] == [1.0, 5.0]

    def test_named_plans_round_trip_through_json(self):
        for name, plan in NAMED_PLANS.items():
            assert plan.name == name
            assert FaultPlan.from_json(plan.to_json()) == plan
            assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_save_load(self, tmp_path):
        plan = NAMED_PLANS["crash-heavy"]
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_get_plan_resolves_names_and_paths(self, tmp_path):
        assert get_plan("stall") is NAMED_PLANS["stall"]
        path = str(tmp_path / "custom.json")
        custom = FaultPlan(
            name="custom", seed=9, faults=(FaultSpec(kind="enclave-lost", at_ms=1.0),)
        )
        custom.save(path)
        assert get_plan(path) == custom
        with pytest.raises(KeyError, match="crash-heavy"):
            get_plan("no-such-plan")
