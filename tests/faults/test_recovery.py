"""Backoff policy and the SGX_ERROR_ENCLAVE_LOST recovery protocol."""

import pytest

from repro.faults import BackoffPolicy, EnclaveRecovery
from repro.sgx import Enclave, EnclaveLostError, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def ping():
        yield Compute(1_000.0, tag="host-ping")
        return "pong"

    urts.register("ping", ping)
    return kernel, enclave


class TestBackoffPolicy:
    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(
            base_cycles=100.0, factor=2.0, cap_cycles=500.0, jitter_frac=0.0
        )
        delays = [policy.delay_cycles(n) for n in range(1, 6)]
        assert delays == [100.0, 200.0, 400.0, 500.0, 500.0]

    def test_jitter_is_bounded_and_seeded(self):
        a = BackoffPolicy(base_cycles=1_000.0, jitter_frac=0.25, seed=7)
        b = BackoffPolicy(base_cycles=1_000.0, jitter_frac=0.25, seed=7)
        delays_a = [a.delay_cycles(n) for n in range(1, 9)]
        delays_b = [b.delay_cycles(n) for n in range(1, 9)]
        assert delays_a == delays_b  # same seed, same jitter draw
        for attempt, delay in enumerate(delays_a, start=1):
            raw = min(1_000.0 * 2.0 ** (attempt - 1), a.cap_cycles)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_cycles=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_cycles=10.0, cap_cycles=5.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter_frac=1.0)


class TestEnclaveRecovery:
    def test_lost_enclave_recovers_transparently(self):
        kernel, enclave = build()
        enclave.recovery = EnclaveRecovery(enclave, BackoffPolicy(jitter_frac=0.0))
        enclave.lost = True
        results = []

        def app():
            results.append((yield from enclave.ocall("ping")))

        thread = kernel.spawn(app(), name="app", kind="app")
        t_healthy_start = kernel.now
        kernel.join(thread)
        assert results == ["pong"]
        assert enclave.lost is False
        assert enclave.generation == 1
        assert enclave.recovery.recoveries == 1
        # The recovery cost real simulated time (backoff + re-creation).
        assert kernel.now > t_healthy_start

    def test_concurrent_callers_coalesce_into_one_recovery(self):
        kernel, enclave = build()
        enclave.recovery = EnclaveRecovery(enclave, BackoffPolicy(jitter_frac=0.0))
        enclave.lost = True
        results = []

        def app(i):
            results.append((yield from enclave.ocall("ping")))

        threads = [
            kernel.spawn(app(i), name=f"app-{i}", kind="app") for i in range(4)
        ]
        kernel.join(*threads)
        assert results == ["pong"] * 4
        assert enclave.recovery.attempts == 1  # single-flight
        assert enclave.recovery.recoveries == 1
        assert enclave.generation == 1

    def test_gives_up_past_max_attempts(self):
        kernel, enclave = build()
        enclave.recovery = EnclaveRecovery(
            enclave, BackoffPolicy(jitter_frac=0.0), max_attempts=2
        )
        enclave.recovery.attempts = 2  # budget already exhausted
        enclave.lost = True
        caught = []

        def app():
            try:
                yield from enclave.ocall("ping")
            except EnclaveLostError as error:
                caught.append(error)

        kernel.join(kernel.spawn(app(), name="app", kind="app"))
        assert len(caught) == 1
        assert caught[0].sgx_status == "SGX_ERROR_ENCLAVE_LOST"
        assert enclave.lost is True  # nobody brought it back

    def test_lost_without_manager_raises(self):
        kernel, enclave = build()
        enclave.lost = True
        caught = []

        def app():
            try:
                yield from enclave.ocall("ping")
            except EnclaveLostError as error:
                caught.append(error)

        kernel.join(kernel.spawn(app(), name="app", kind="app"))
        assert len(caught) == 1
        assert "no recovery manager" in str(caught[0])

    def test_ecall_path_also_recovers(self):
        kernel, enclave = build()
        enclave.recovery = EnclaveRecovery(enclave, BackoffPolicy(jitter_frac=0.0))
        enclave.lost = True
        done = []

        def trusted():
            yield Compute(5_000.0, tag="app")
            return None

        def app():
            yield from enclave.ecall(trusted())
            done.append(True)

        kernel.join(kernel.spawn(app(), name="app", kind="app"))
        assert done == [True]
        assert enclave.lost is False
        assert enclave.generation == 1
