"""FaultInjector behaviour per fault kind, against live backends."""

import pytest

from repro.api import make_backend
from repro.core import ZcConfig
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, ThreadState
from repro.switchless import SwitchlessConfig

MACHINE = MachineSpec(n_cores=4, smt=2)


def zc_backend():
    return make_backend("zc", ZcConfig(enable_scheduler=False))


def intel_backend():
    return make_backend("intel",
        SwitchlessConfig(switchless_ocalls=frozenset({"work"}), num_uworkers=2)
    )


def build(backend_factory=zc_backend):
    kernel = Kernel(MACHINE)
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = backend_factory()
    if backend is not None:
        enclave.set_backend(backend)

    def work():
        yield Compute(20_000.0, tag="host-work")
        return "ok"

    urts.register("work", work)
    return kernel, enclave


def storm(kernel, enclave, n_threads=2, calls=200):
    """Drive ``n_threads x calls`` ocalls to completion; returns results."""
    results = []

    def app(i):
        for _ in range(calls):
            results.append((yield from enclave.ocall("work")))

    threads = [
        kernel.spawn(app(i), name=f"app-{i}", kind="app") for i in range(n_threads)
    ]
    kernel.join(*threads)
    return results


def attach(kernel, enclave, *faults, seed=1, **plan_kwargs):
    plan = FaultPlan(name="test", seed=seed, faults=tuple(faults), **plan_kwargs)
    return FaultInjector(plan).attach(kernel, enclave)


def log_names(injector):
    return [name for _, name, _ in injector.fault_log]


class TestLifecycle:
    def test_double_attach_raises(self):
        kernel, enclave = build()
        attach(kernel, enclave)
        with pytest.raises(RuntimeError, match="already attached"):
            attach(kernel, enclave)
        assert kernel.faults is not None

    def test_detach_cancels_pending_faults(self):
        # No backend: a plain kernel.run() must drain instantly once the
        # pending fault timer is cancelled (zc workers would idle-spin).
        kernel, enclave = build(lambda: None)
        injector = attach(
            kernel, enclave, FaultSpec(kind="worker-crash", at_ms=100.0)
        )
        injector.detach()
        kernel.run()  # nothing left: the fault timer was cancelled
        assert kernel.now == 0.0
        assert kernel.faults is None
        assert log_names(injector) == ["fault.plan.attached", "fault.plan.detached"]
        injector.detach()  # idempotent

    def test_healthy_run_is_unperturbed_by_the_module(self):
        kernel_a, enclave_a = build()
        storm(kernel_a, enclave_a)
        kernel_b, enclave_b = build()
        injector = attach(kernel_b, enclave_b)  # empty plan: no faults
        storm(kernel_b, enclave_b)
        injector.detach()
        assert kernel_a.now == kernel_b.now


class TestWorkerCrash:
    def test_crash_respawn_rejoin_loses_no_work(self):
        kernel, enclave = build()
        injector = attach(
            kernel,
            enclave,
            FaultSpec(kind="worker-crash", at_ms=0.2, respawn_after_ms=0.1),
        )
        results = storm(kernel, enclave)
        injector.detach()
        backend = enclave.backend
        assert results == ["ok"] * 400  # every call completed with its result
        stats = enclave.stats
        assert stats.total_switchless + stats.total_fallback + stats.total_regular == 400
        assert backend.stats.worker_crashes == 1
        assert backend.stats.worker_respawns == 1
        names = log_names(injector)
        assert "fault.worker.crash" in names
        assert "fault.worker.respawn" in names
        assert "fault.worker.rejoin" in names
        # The healed slot is live again: quarantine lifted, fresh thread.
        assert sum(worker.rejoins for worker in backend.workers) == 1
        assert not any(worker.quarantined for worker in backend.workers)
        backend.stop()

    def test_crash_without_respawn_quarantines_the_slot(self):
        kernel, enclave = build()
        injector = attach(
            kernel, enclave, FaultSpec(kind="worker-crash", at_ms=0.2, index=0)
        )
        results = storm(kernel, enclave)
        injector.detach()
        backend = enclave.backend
        assert results == ["ok"] * 400
        assert backend.worker_threads[0].state is ThreadState.DONE
        assert backend.workers[0].quarantined  # argmin never selects it again
        assert backend.stats.worker_crashes == 1
        assert backend.stats.worker_respawns == 0
        backend.stop()

    def test_intel_crash_recovers_via_respawn(self):
        kernel, enclave = build(intel_backend)
        injector = attach(
            kernel,
            enclave,
            FaultSpec(
                kind="worker-crash",
                at_ms=0.2,
                target="intel-worker",
                respawn_after_ms=0.1,
            ),
        )
        results = storm(kernel, enclave)
        injector.detach()
        backend = enclave.backend
        assert results == ["ok"] * 400
        assert backend.worker_respawns == 1
        assert len(backend.retired_threads) == 1
        assert all(
            thread.state is not ThreadState.DONE for thread in backend.worker_threads
        )
        backend.stop()


class TestSlowWorkers:
    def test_stall_burns_simulated_time(self):
        kernel_a, enclave_a = build()
        storm(kernel_a, enclave_a)
        kernel_b, enclave_b = build()
        injector = attach(
            kernel_b,
            enclave_b,
            FaultSpec(kind="worker-stall", at_ms=0.1, duration_ms=0.5),
        )
        results = storm(kernel_b, enclave_b)
        injector.detach()
        assert results == ["ok"] * 400
        assert "fault.worker.stall" in log_names(injector)
        assert kernel_b.now > kernel_a.now

    def test_slowdown_inflates_worker_costs(self):
        kernel_a, enclave_a = build()
        storm(kernel_a, enclave_a)
        kernel_b, enclave_b = build()
        injector = attach(
            kernel_b,
            enclave_b,
            FaultSpec(
                kind="worker-slowdown", at_ms=0.05, duration_ms=50.0, factor=8.0
            ),
        )
        results = storm(kernel_b, enclave_b)
        injector.detach()
        assert results == ["ok"] * 400
        assert "fault.worker.slowdown" in log_names(injector)
        assert kernel_b.now > kernel_a.now


class TestEnvironmentFaults:
    def test_epc_pressure_swaps_and_restores_the_cost_model(self):
        kernel, enclave = build()
        base_cost = enclave.cost
        injector = attach(
            kernel,
            enclave,
            FaultSpec(kind="epc-pressure", at_ms=0.05, duration_ms=0.2, factor=3.0),
        )
        storm(kernel, enclave)
        injector.detach()
        names = log_names(injector)
        assert "fault.epc.start" in names
        assert "fault.epc.end" in names  # window closed during the run
        assert enclave.cost is base_cost  # transition costs restored

    def test_clock_skew_scales_scheduler_windows(self):
        kernel, enclave = build(lambda: None)
        injector = attach(
            kernel,
            enclave,
            FaultSpec(kind="clock-skew", at_ms=0.0, duration_ms=1.0, factor=1.5),
        )
        kernel.run()  # applies the skew at t=0
        assert kernel.faults.scaled_window(1_000.0) == 1_500.0
        kernel.call_at(kernel.spec.cycles(0.002), lambda: None)
        kernel.run()  # advance past the skew window
        assert kernel.faults.scaled_window(1_000.0) == 1_000.0
        injector.detach()

    def test_enclave_lost_recovers_and_bumps_generation(self):
        kernel, enclave = build()
        injector = attach(
            kernel,
            enclave,
            FaultSpec(kind="enclave-lost", at_ms=0.1),
            backoff_base_ms=0.01,
        )
        results = storm(kernel, enclave)
        injector.detach()
        assert results == ["ok"] * 400
        assert enclave.lost is False
        assert enclave.generation == 1
        names = log_names(injector)
        assert "fault.enclave.lost" in names
        assert "fault.enclave.recovered" in names
        enclave.backend.stop()


class TestHandoffFaults:
    def test_dropped_intel_wakes_are_redelivered(self):
        # retries_before_sleep=0: idle workers park immediately, so every
        # enqueue goes through the (perturbed) futex-wake path.
        kernel, enclave = build(
            lambda: make_backend("intel",
                SwitchlessConfig(
                    switchless_ocalls=frozenset({"work"}),
                    num_uworkers=2,
                    retries_before_sleep=0,
                )
            )
        )
        injector = attach(
            kernel,
            enclave,
            FaultSpec(
                kind="handoff",
                at_ms=0.0,
                duration_ms=50.0,
                drop_probability=1.0,
                redelivery_ms=0.05,
            ),
        )
        results = storm(kernel, enclave, n_threads=1, calls=200)
        injector.detach()
        assert results == ["ok"] * 200  # liveness survives every drop
        names = log_names(injector)
        assert names.count("fault.handoff.drop") >= 1
        enclave.backend.stop()

    def test_delayed_zc_kicks_still_complete(self):
        kernel, enclave = build(
            lambda: make_backend("zc",
                ZcConfig(enable_scheduler=False, max_workers=1, initial_workers=1)
            )
        )
        injector = attach(
            kernel,
            enclave,
            FaultSpec(
                kind="handoff", at_ms=0.0, duration_ms=50.0, delay_ms=0.02
            ),
        )
        results = storm(kernel, enclave, n_threads=1, calls=100)
        injector.detach()
        assert results == ["ok"] * 100
        assert "fault.handoff.delay" in log_names(injector)
        enclave.backend.stop()


class TestCallerTimeout:
    def test_stalled_worker_triggers_timeout_recovery(self):
        kernel, enclave = build()
        injector = attach(
            kernel,
            enclave,
            # Stall far longer than the caller is willing to wait.
            FaultSpec(kind="worker-stall", at_ms=0.1, duration_ms=20.0),
            caller_timeout_ms=0.5,
        )
        results = storm(kernel, enclave)
        injector.detach()
        assert results == ["ok"] * 400  # recovered via fallback, not dropped
        backend = enclave.backend
        assert backend.stats.timeout_recoveries >= 1
        assert "fault.caller.timeout" in log_names(injector)
        backend.stop()
