"""Deterministic replay: same seed + plan => identical fault sequences.

The whole point of a seedable fault plan is that a failure seen once can
be replayed bit-for-bit: the injector's ``fault_log`` (every action with
its simulated timestamp), the end-of-run clock, the call counters, and
the figure rows an experiment produces must all be identical across
runs.
"""

from repro.experiments import sec3a
from repro.experiments.common import build_stack, zc_spec
from repro.faults import NAMED_PLANS, FaultPlan, FaultSpec, activate_plan

PLAN = FaultPlan(
    name="replay",
    seed=42,
    faults=(
        FaultSpec(kind="worker-crash", at_ms=0.1, respawn_after_ms=0.05),
        FaultSpec(kind="worker-stall", at_ms=0.25, duration_ms=0.1),
        FaultSpec(kind="enclave-lost", at_ms=0.4),
    ),
    backoff_base_ms=0.01,
)


def run_stack_once():
    with activate_plan(PLAN):
        stack = build_stack(zc_spec())

    def app(i):
        for _ in range(400):
            yield from stack.enclave.ocall("getppid")

    threads = [
        stack.kernel.spawn(app(i), name=f"app-{i}", kind="app") for i in range(2)
    ]
    stack.kernel.join(*threads)
    log = list(stack.faults.fault_log)
    now = stack.kernel.now
    stats = stack.enclave.stats
    counts = (stats.total_switchless, stats.total_fallback, stats.total_regular)
    stack.finish()
    return log, now, counts


def test_same_seed_same_fault_log_and_clock():
    log_a, now_a, counts_a = run_stack_once()
    log_b, now_b, counts_b = run_stack_once()
    assert log_a == log_b
    assert now_a == now_b
    assert counts_a == counts_b
    # Non-vacuous: the plan actually fired and recovered.
    names = [name for _, name, _ in log_a]
    assert "fault.worker.crash" in names
    assert "fault.worker.respawn" in names
    assert "fault.enclave.recovered" in names
    assert sum(counts_a) == 800  # every call accounted for


def test_same_plan_same_figure_rows():
    plan = NAMED_PLANS["crash-heavy"]
    with activate_plan(plan):
        run_a = sec3a.run(total_calls=2_000)
    with activate_plan(plan):
        run_b = sec3a.run(total_calls=2_000)
    assert sec3a.table(run_a) == sec3a.table(run_b)

    healthy = sec3a.run(total_calls=2_000)
    # The crash plan perturbs the run: identical rows would mean the
    # faults never took effect.
    assert sec3a.table(healthy) != sec3a.table(run_a)
