"""Injected faults must not break the paper's invariants.

Worker crashes, stalls and recoveries are allowed to cost time — they
are not allowed to lose cycles from the ledger, reintroduce busy-waiting
in front of the zc fallback (§IV-C), malform configuration phases, or
silently drop calls.  The live :class:`~repro.regress.InvariantAuditor`
(the ``--audit-invariants`` machinery) is the judge.
"""

from repro.experiments import sec3a
from repro.experiments.common import build_stack, zc_spec
from repro.faults import NAMED_PLANS, FaultPlan, FaultSpec, activate_plan
from repro.regress import InvariantAuditor, RecoveryChecker, attach_auditor
from repro.telemetry import TelemetrySession
from repro.telemetry.events import TelemetryEvent

CRASH_PLAN = FaultPlan(
    name="crash-audit",
    seed=3,
    faults=(
        FaultSpec(kind="worker-crash", at_ms=0.05, respawn_after_ms=0.05),
        FaultSpec(kind="worker-crash", at_ms=0.15, index=0),
        FaultSpec(kind="worker-stall", at_ms=0.2, duration_ms=0.1),
    ),
)


def test_zc_crashes_preserve_conservation_and_immediate_fallback():
    auditors = []
    with TelemetrySession(
        on_attach=lambda capture: auditors.append(attach_auditor(capture))
    ):
        with activate_plan(CRASH_PLAN):
            stack = build_stack(zc_spec())

        def app(i):
            for _ in range(400):
                yield from stack.enclave.ocall("getppid")

        threads = [
            stack.kernel.spawn(app(i), name=f"app-{i}", kind="app")
            for i in range(2)
        ]
        stack.kernel.join(*threads)
        stats = stack.enclave.stats
        total = stats.total_switchless + stats.total_fallback + stats.total_regular
        assert total == 800  # crashes recovered, never dropped
        crash_names = [name for _, name, _ in stack.faults.fault_log]
        assert crash_names.count("fault.worker.crash") == 2
        stack.finish()
    violations = [v for auditor in auditors for v in auditor.finish()]
    assert not violations, "\n".join(str(v) for v in violations)


def test_experiment_under_crash_plan_passes_full_audit():
    auditors = []
    with TelemetrySession(
        on_attach=lambda capture: auditors.append(attach_auditor(capture))
    ):
        with activate_plan(NAMED_PLANS["crash-heavy"]):
            result = sec3a.run(total_calls=2_000)
    violations = [v for auditor in auditors for v in auditor.finish()]
    assert not violations, "\n".join(str(v) for v in violations)
    spec = result.spec
    for row in result.rows:
        completed = row.switchless_calls + row.fallback_calls + row.regular_calls
        assert completed == spec.total_calls, row.config


class TestRecoveryChecker:
    @staticmethod
    def feed(events):
        auditor = InvariantAuditor(cell="t", checkers=[RecoveryChecker()])
        auditor.feed(
            [TelemetryEvent(t, name, dict(fields)) for t, name, fields in events]
        )
        return auditor.finish()

    def test_respawned_crash_is_clean(self):
        violations = self.feed(
            [
                (10.0, "fault.worker.crash", {"target": "zc-worker", "worker": 1,
                                              "respawn_after_cycles": 100.0}),
                (110.0, "fault.worker.respawn", {"target": "zc-worker", "worker": 1}),
                (500.0, "fault.plan.detached", {"plan": "p"}),
            ]
        )
        assert violations == []

    def test_unsupervised_crash_is_clean(self):
        violations = self.feed(
            [
                (10.0, "fault.worker.crash", {"target": "zc-worker", "worker": 0,
                                              "respawn_after_cycles": None}),
                (500.0, "fault.plan.detached", {"plan": "p"}),
            ]
        )
        assert violations == []

    def test_missed_respawn_deadline_is_flagged(self):
        violations = self.feed(
            [
                (10.0, "fault.worker.crash", {"target": "zc-worker", "worker": 1,
                                              "respawn_after_cycles": 100.0}),
                (200.0, "zc.fallback", {"waited_cycles": 0.0}),
            ]
        )
        assert len(violations) == 1
        assert violations[0].checker == "fault-recovery"
        assert "no fault.worker.respawn" in violations[0].message

    def test_detach_before_deadline_cancels_cleanly(self):
        violations = self.feed(
            [
                (10.0, "fault.worker.crash", {"target": "zc-worker", "worker": 1,
                                              "respawn_after_cycles": 1_000.0}),
                (100.0, "fault.plan.detached", {"plan": "p"}),
            ]
        )
        assert violations == []

    def test_explicit_skip_clears_the_deadline(self):
        violations = self.feed(
            [
                (10.0, "fault.worker.crash", {"target": "intel-worker", "worker": 0,
                                              "respawn_after_cycles": 50.0}),
                (60.0, "fault.worker.respawn.skipped", {"target": "intel-worker",
                                                        "worker": 0}),
                (900.0, "fault.plan.detached", {"plan": "p"}),
            ]
        )
        assert violations == []
