"""Suite-wide pytest hooks.

``--audit-invariants`` arms the live paper-invariant checkers of
:mod:`repro.regress.audit` for the integration tests (see
``tests/integration/conftest.py``): every kernel a test builds gets an
:class:`~repro.regress.InvariantAuditor` on its telemetry bus, and any
violation — busy-waiting before a zc fallback, a malformed configuration
phase, a non-argmin decision, a cycle-conservation break — fails the
test that produced it.  Off by default: the checkers attach telemetry to
every simulation, which the plain suite deliberately runs without.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--audit-invariants",
        action="store_true",
        default=False,
        help="attach live paper-invariant checkers to integration-test kernels",
    )
