"""Tests for the cycle-attribution ledger."""

import pytest

from repro.sim import Kernel, MachineSpec
from repro.sim.instructions import Compute, Spin
from repro.telemetry import CycleLedger, classify
from repro.telemetry.ledger import (
    APP,
    BUSY_CATEGORIES,
    CALLER_SPIN,
    HOST_EXEC,
    MARSHAL,
    RUNTIME,
    SCHED,
    TRANSITION,
    WORKER_SPIN,
)


class TestClassify:
    def test_transitions(self):
        assert classify("app", "compute", "eexit") == TRANSITION
        assert classify("app", "compute", "eenter") == TRANSITION
        assert classify("app", "compute", "ecall-enter") == TRANSITION

    def test_marshalling(self):
        assert classify("app", "compute", "marshal-in") == MARSHAL
        assert classify("app", "compute", "ocall-setup") == MARSHAL

    def test_host_prefix(self):
        assert classify("app", "compute", "host-fwrite") == HOST_EXEC
        assert classify("zc-worker", "compute", "host-fread") == HOST_EXEC

    def test_spins_split_by_thread_kind(self):
        assert classify("app", "spin", "sl-wait-pickup") == CALLER_SPIN
        assert classify("intel-worker", "spin", "worker-idle-spin") == WORKER_SPIN
        assert classify("zc-worker", "spin", "zc-idle") == WORKER_SPIN

    def test_scheduler_threads_always_sched(self):
        assert classify("zc-scheduler", "compute", "zc-sched-decide") == SCHED
        assert classify("monitor", "compute", None) == SCHED

    def test_runtime_plumbing(self):
        assert classify("app", "compute", "zc-dispatch") == RUNTIME
        assert classify("intel-worker", "compute", "worker-pickup") == RUNTIME

    def test_untagged_compute_is_app(self):
        assert classify("app", "compute", None) == APP
        assert classify("app", "compute", "kissdb-hash") == APP


class TestCycleLedger:
    def test_charges_accumulate_per_key(self):
        ledger = CycleLedger()
        ledger.charge("app", "compute", "eexit", 10.0, 10.0)
        ledger.charge("app", "compute", "eexit", 5.0, 3.1)
        ledger.charge("app", "spin", None, 7.0, 7.0)
        cells = ledger.cells()
        assert cells[("app", "compute", "eexit")] == (15.0, 13.1)
        assert ledger.total_wall_cycles() == pytest.approx(22.0)
        wall = ledger.wall_by_category()
        assert wall[TRANSITION] == pytest.approx(15.0)
        assert wall[CALLER_SPIN] == pytest.approx(7.0)
        work = ledger.work_by_category()
        assert work[TRANSITION] == pytest.approx(13.1)

    def test_all_categories_present(self):
        assert set(CycleLedger().wall_by_category()) == set(BUSY_CATEGORIES)

    def test_kernel_snapshot_balances(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=2))
        kernel.ledger = ledger = CycleLedger()

        def busy():
            yield Compute(1_000.0, tag="eexit")
            yield Compute(2_000.0)

        def spinner():
            yield Spin(kernel.event("never"), 500.0, tag="sl-wait-pickup")

        kernel.spawn(busy(), name="a")
        kernel.spawn(spinner(), name="b")
        kernel.run()
        snap = ledger.snapshot(kernel)
        snap.assert_balanced()
        assert snap.wall_by_category[TRANSITION] > 0
        assert snap.wall_by_category[CALLER_SPIN] > 0
        # Wall occupancy + idle == capacity, exactly.
        assert snap.conservation_error() == pytest.approx(0.0, abs=1e-6)

    def test_smt_wall_vs_work(self):
        # Two siblings both busy: wall cycles exceed nominal (work) cycles.
        spec = MachineSpec(n_cores=1, smt=2, smt_factor=0.5)
        kernel = Kernel(spec)
        kernel.ledger = ledger = CycleLedger()

        def worker():
            yield Compute(1_000.0, tag="eexit")

        kernel.spawn(worker(), name="a")
        kernel.spawn(worker(), name="b")
        kernel.run()
        snap = ledger.snapshot(kernel)
        snap.assert_balanced()
        assert snap.work_by_category[TRANSITION] == pytest.approx(2_000.0)
        assert snap.wall_by_category[TRANSITION] == pytest.approx(4_000.0)

    def test_unbalanced_snapshot_raises(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))

        def busy():
            yield Compute(1_000.0)

        kernel.spawn(busy(), name="a")
        kernel.run()
        # Ledger attached only after the run: it saw no charges.
        late = CycleLedger()
        snap = late.snapshot(kernel)
        with pytest.raises(AssertionError, match="does not balance"):
            snap.assert_balanced()
