"""Tests for the telemetry event bus."""

import pytest

from repro.telemetry import EventBus


class TestEventBus:
    def test_emit_stamps_clock_and_counts(self):
        t = [0.0]
        bus = EventBus(clock=lambda: t[0])
        bus.emit("a", x=1)
        t[0] = 50.0
        bus.emit("a", x=2)
        bus.emit("b")
        assert bus.count == 3
        assert bus.counts == {"a": 2, "b": 1}
        assert [e.t_cycles for e in bus.events_named("a")] == [0.0, 50.0]
        assert bus.events_named("a")[1].fields == {"x": 2}

    def test_no_clock_stamps_zero(self):
        bus = EventBus()
        bus.emit("a")
        assert bus.events[0].t_cycles == 0.0

    def test_name_field_allowed(self):
        # 'name' is a common payload field (ocall.complete carries one);
        # emit's own name parameter is positional-only so they coexist.
        bus = EventBus()
        bus.emit("ocall.complete", name="fread", mode="regular")
        assert bus.events[0].name == "ocall.complete"
        assert bus.events[0].fields["name"] == "fread"

    def test_subscribers_see_every_event(self):
        bus = EventBus(max_events=1)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")  # dropped from storage, still delivered
        assert [e.name for e in seen] == ["a", "b"]
        assert len(bus.events) == 1
        assert bus.dropped == 1
        assert bus.count == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit("a")
        assert seen == []

    def test_unbounded_when_zero(self):
        bus = EventBus(max_events=0)
        for _ in range(10):
            bus.emit("a")
        assert len(bus.events) == 10
        assert bus.dropped == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            EventBus(max_events=-1)
