"""Exporter edge cases: empty runs, escaping, and the replay round-trip.

These are the paths a CI artifact pipeline hits but a happy-path figure
run never does: a session that captured nothing, metric/label content
with characters the Prometheus text format must escape, and the
JSONL-export → :func:`repro.regress.read_events_jsonl` round-trip the
replay auditor depends on.
"""

import json

import pytest

from repro import __version__, telemetry
from repro.regress import read_events_jsonl
from repro.telemetry.exporters import (
    _escape_label_value,
    _sanitize_metric_name,
    render_prometheus,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.schema import SchemaMismatch


class TestEmptyRun:
    def test_empty_session_exports_valid_artifacts(self, tmp_path):
        with telemetry.TelemetrySession() as session:
            pass  # no cells attached at all
        paths = session.export(str(tmp_path), "empty")
        lines = (tmp_path / "empty.events.jsonl").read_text().splitlines()
        # Only the schema stamp: still a well-formed, replayable file.
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "telemetry.schema"
        assert read_events_jsonl(paths["events"]) == {}
        trace = json.loads((tmp_path / "empty.trace.json").read_text())
        assert trace["traceEvents"] == []
        prom = (tmp_path / "empty.metrics.prom").read_text()
        assert "repro_build_info{" in prom  # never an empty file

    def test_events_jsonl_counts_the_stamp(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        assert write_events_jsonl(path, []) == 1

    def test_chrome_trace_empty(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(path, []) == 0
        document = json.loads(open(path).read())
        assert document["artifact"] == "chrome-trace"
        assert document["repro_version"] == __version__


class TestPrometheusEscaping:
    def test_label_value_escaping(self):
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("two\nlines") == "two\\nlines"

    def test_metric_name_sanitization(self):
        assert _sanitize_metric_name("valid_name:ok") == "valid_name:ok"
        assert _sanitize_metric_name("has-dash.dot") == "has_dash_dot"
        assert _sanitize_metric_name("9starts_digit") == "_9starts_digit"
        assert _sanitize_metric_name("") == "_"

    def test_rendered_output_escapes_hostile_values(self):
        registry = MetricsRegistry()
        registry.counter("calls.total", cell='C1 "zc"\npath\\x').inc(3)
        text = render_prometheus(registry)
        assert "# TYPE calls_total counter" in text
        assert 'cell="C1 \\"zc\\"\\npath\\\\x"' in text
        # Escaping keeps every sample on its own line.
        assert all(
            line.startswith(("#", "repro_", "calls_total"))
            for line in text.strip().splitlines()
        )

    def test_build_info_carries_versions(self):
        text = render_prometheus(MetricsRegistry())
        assert f"# repro_version {__version__}" in text
        assert f'repro_version="{__version__}"' in text


class TestJsonlRoundTrip:
    def _export(self, tmp_path):
        from repro.experiments import fig8
        from repro.experiments.common import zc_spec

        with telemetry.TelemetrySession() as session:
            fig8.run_one(zc_spec(), n_keys=60)
        return session.export(str(tmp_path), "rt")["events"]

    def test_round_trip_preserves_events_and_meta(self, tmp_path):
        path = self._export(tmp_path)
        streams = read_events_jsonl(path)
        assert set(streams) == {"zc"}
        stream = streams["zc"]
        assert stream.n_cpus > 0
        assert stream.workers_cap >= 1
        # Events come back in file (= time) order with their fields.
        times = [event.t_cycles for event in stream.events]
        assert times == sorted(times)
        names = {event.name for event in stream.events}
        assert "ocall.complete" in names
        complete = next(e for e in stream.events if e.name == "ocall.complete")
        assert {"name", "mode", "latency_cycles"} <= set(complete.fields)
        # The meta/schema bookkeeping lines are context, not events.
        assert "telemetry.meta" not in names
        assert "telemetry.schema" not in names

    def test_refuses_unstamped_file(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"t_cycles": 0, "cell": "x", "event": "zc.fallback"}\n')
        with pytest.raises(SchemaMismatch, match="no telemetry.schema stamp"):
            read_events_jsonl(str(path))

    def test_refuses_future_schema_version(self, tmp_path):
        path = self._export(tmp_path)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = telemetry.SCHEMA_VERSION + 1
        (tmp_path / "future.jsonl").write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        with pytest.raises(SchemaMismatch, match="schema_version"):
            read_events_jsonl(str(tmp_path / "future.jsonl"))

    def test_refuses_wrong_artifact_kind(self, tmp_path):
        path = self._export(tmp_path)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["artifact"] = "chrome-trace"
        (tmp_path / "wrong.jsonl").write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        with pytest.raises(SchemaMismatch):
            read_events_jsonl(str(tmp_path / "wrong.jsonl"))
