"""Tests for telemetry sessions and the run-artifact exporters."""

import json

from repro import telemetry
from repro.experiments import fig8
from repro.experiments.common import build_stack, no_sl_spec, zc_spec
from repro.telemetry.ledger import CATEGORIES


class TestSessionAttachment:
    def test_no_session_means_no_instrumentation(self):
        stack = build_stack(no_sl_spec())
        assert stack.telemetry is None
        assert stack.kernel.bus is None
        assert stack.kernel.ledger is None

    def test_session_attaches_and_finalizes(self):
        with telemetry.TelemetrySession() as session:
            stack = build_stack(no_sl_spec())
            assert stack.telemetry is not None
            assert stack.kernel.bus is stack.telemetry.bus
            assert stack.kernel.ledger is stack.telemetry.ledger
            stack.finish()
        capture = session.captures[0]
        assert capture.finalized
        assert capture.label == "no_sl"
        # Simulation references are dropped so sessions stay lightweight.
        assert capture.kernel is None
        assert stack.kernel.bus is None

    def test_duplicate_labels_get_unique_suffixes(self):
        with telemetry.TelemetrySession() as session:
            build_stack(no_sl_spec()).finish()
            build_stack(no_sl_spec()).finish()
        assert [c.label for c in session.captures] == ["no_sl", "no_sl#1"]

    def test_capture_sched_publishes_dispatch_events(self):
        # sched events flow only when opted in: the kernel's dispatch path
        # reads the pre-resolved ``sched_bus``, so the session must wire it.
        with telemetry.TelemetrySession(capture_sched=True) as session:
            fig8.run_one(no_sl_spec(), n_keys=40)
        capture = session.captures[0]
        assert capture.event_counts.get("sched.dispatch", 0) > 0

    def test_sched_events_off_by_default(self):
        with telemetry.TelemetrySession() as session:
            stack = build_stack(no_sl_spec())
            assert stack.kernel.sched_bus is None
            fig8.run_one(no_sl_spec(), n_keys=40)
            stack.finish()
        for capture in session.captures:
            assert capture.event_counts.get("sched.dispatch", 0) == 0

    def test_active_session_stack(self):
        assert telemetry.active_session() is None
        with telemetry.TelemetrySession() as outer:
            assert telemetry.active_session() is outer
            with telemetry.TelemetrySession() as inner:
                assert telemetry.active_session() is inner
            assert telemetry.active_session() is outer
        assert telemetry.active_session() is None


class TestExporters:
    def _run_session(self):
        with telemetry.TelemetrySession() as session:
            fig8.run_one(no_sl_spec(), n_keys=120)
            fig8.run_one(zc_spec(), n_keys=120)
        return session

    def test_full_export(self, tmp_path):
        session = self._run_session()
        paths = session.export(str(tmp_path), "fig8")
        records = [
            json.loads(line)
            for line in (tmp_path / "fig8.events.jsonl").read_text().splitlines()
        ]
        assert all({"t_cycles", "cell", "event"} <= set(r) for r in records)
        # Line 1 is the schema stamp that lets ``repro diff``/replay refuse
        # artifacts from an incompatible exporter.
        assert records[0]["event"] == "telemetry.schema"
        assert records[0]["schema_version"] == telemetry.SCHEMA_VERSION
        cells = {r["cell"] for r in records if r["event"] != "telemetry.schema"}
        assert cells == {"no_sl", "zc"}
        assert any(r["event"] == "ocall.complete" for r in records)
        assert any(r["event"] == "syscall" for r in records)
        # Every cell closes with a meta line carrying the drop counters
        # and the machine context replay needs.
        metas = [r for r in records if r["event"] == "telemetry.meta"]
        assert len(metas) == 2
        assert all(m["n_cpus"] > 0 and m["freq_hz"] > 0 for m in metas)

        document = json.loads((tmp_path / "fig8.trace.json").read_text())
        assert document["schema_version"] == telemetry.SCHEMA_VERSION
        trace = document["traceEvents"]
        names = {e["args"]["name"] for e in trace if e["name"] == "process_name"}
        assert names == {"no_sl", "zc"}
        assert any(e["ph"] == "X" for e in trace)  # sched/ocall slices
        assert any(e["ph"] == "C" for e in trace)  # zc worker counter

        prom = (tmp_path / "fig8.metrics.prom").read_text()
        assert f"# repro_schema_version {telemetry.SCHEMA_VERSION}" in prom
        assert "repro_build_info{" in prom
        assert "# TYPE repro_cycles_total counter" in prom
        assert 'repro_ocalls_total{cell="no_sl",mode="regular"}' in prom
        assert "repro_ocall_latency_cycles" in prom

        budget = (tmp_path / "fig8.cycle_budget.txt").read_text()
        for category in CATEGORIES:
            assert category in budget
        assert "no_sl" in budget and "zc" in budget
        assert set(paths) == {"events", "trace", "metrics", "budget"}

    def test_trace_only_export(self, tmp_path):
        session = self._run_session()
        path = session.export_trace(str(tmp_path), "fig8")
        trace = json.loads((tmp_path / "fig8.trace.json").read_text())
        assert path.endswith("fig8.trace.json")
        assert len(trace["traceEvents"]) > 10

    def test_export_finalizes_unfinished_captures(self, tmp_path):
        with telemetry.TelemetrySession() as session:
            stack = build_stack(no_sl_spec())
            stack.kernel.run()  # drained, but finish() never called
        session.export(str(tmp_path), "x")
        assert session.captures[0].finalized

    def test_latency_summary_matches_call_count(self):
        session = self._run_session()
        capture = session.captures[0]
        summary = capture.latency_summary()
        assert summary["count"] == len(capture.call_events) > 0
        assert summary["p50"] <= summary["p99"] <= summary["max"]
