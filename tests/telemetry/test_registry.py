"""Tests for the metrics registry."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import render_prometheus


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", cell="zc")
        a.inc()
        a.inc(2)
        assert registry.counter("ops", cell="zc") is a
        assert registry.counter("ops", cell="no_sl") is not a
        assert a.value == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ops").inc(-1)

    def test_gauge_series_and_summary(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers", cell="zc")
        gauge.set(4, t_cycles=0.0)
        gauge.set(2, t_cycles=100.0)
        gauge.set(1)  # no timestamp: value only
        assert gauge.value == 1
        assert gauge.series == [(0.0, 4), (100.0, 2)]
        assert gauge.summary()["max"] == 4

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for v in range(1, 101):
            histogram.observe(v)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["max"] == 100

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a="1", b="2") is registry.counter("x", b="2", a="1")


class TestPrometheusRender:
    def test_families_grouped_with_type_headers(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", cell="zc").inc(5)
        registry.gauge("repro_workers", cell="zc").set(2)
        registry.counter("repro_ops_total", cell="no_sl").inc(7)
        registry.histogram("repro_latency", cell="zc").observe(10)
        text = render_prometheus(registry)
        lines = text.splitlines()
        idx = lines.index("# TYPE repro_ops_total counter")
        # Both series directly follow their family header.
        assert lines[idx + 1] == 'repro_ops_total{cell="no_sl"} 7' or (
            lines[idx + 1] == 'repro_ops_total{cell="zc"} 5'
        )
        assert lines[idx + 2].startswith("repro_ops_total{")
        assert "# TYPE repro_workers gauge" in lines
        assert "# TYPE repro_latency summary" in lines
        assert 'repro_latency{cell="zc",quantile="0.5"} 10' in lines
        assert 'repro_latency_count{cell="zc"} 1' in lines
        assert 'repro_latency_sum{cell="zc"} 10' in lines
