"""Ledger conservation across all three backends, on real workloads.

The tentpole property: every simulated core-cycle lands in exactly one
ledger category, so categorised wall cycles (including idle) sum to
``kernel.now × n_logical_cpus`` — for the regular, Intel-switchless and
zc backends alike, on both the kissdb (fig8) and crypto-pipeline (fig10)
workloads.
"""

import pytest

from repro import telemetry
from repro.core import ZcConfig
from repro.experiments import fig8, fig10
from repro.experiments.common import intel_spec, no_sl_spec, zc_spec

T_ES = 13_500.0  # eexit + eenter, SgxCostModel defaults

FIG8_SPECS = [
    no_sl_spec(),
    intel_spec("all", {"fseeko", "fread", "fwrite"}, 2),
    zc_spec(),
]
FIG10_SPECS = [
    no_sl_spec(),
    intel_spec("frwoc", {"fread", "fwrite", "fopen", "fclose"}, 2),
    zc_spec(),
]


def _capture(run):
    with telemetry.TelemetrySession() as session:
        run()
    assert len(session.captures) == 1
    capture = session.captures[0]
    assert capture.finalized
    return capture


class TestConservation:
    @pytest.mark.parametrize("spec", FIG8_SPECS, ids=lambda s: s.label)
    def test_fig8_ledger_balances(self, spec):
        capture = _capture(lambda: fig8.run_one(spec, n_keys=300))
        capture.assert_balanced(rel_tol=1e-6)
        snapshot = capture.snapshot
        assert snapshot.busy_cycles == pytest.approx(
            sum(
                cycles
                for cat, cycles in snapshot.wall_by_category.items()
                if cat != "idle"
            ),
            rel=1e-9,
        )

    @pytest.mark.parametrize("spec", FIG10_SPECS, ids=lambda s: s.label)
    def test_fig10_ledger_balances(self, spec):
        capture = _capture(
            lambda: fig10.run_one(spec, chunks_per_file=16, files_per_thread=1)
        )
        capture.assert_balanced(rel_tol=1e-6)


class TestZcTransitionIdentity:
    def test_transition_work_equals_fallbacks_times_t_es(self):
        # Freeze the worker count at zero: every ocall falls back, so the
        # zc cell's transition cycles are exactly fallback_count·T_es
        # (§IV-A's F·T_es term), with zero worker busy-wait.
        spec = zc_spec(ZcConfig(initial_workers=0, enable_scheduler=False))
        capture = _capture(lambda: fig8.run_one(spec, n_keys=200))
        capture.assert_balanced()
        stats = capture.backend_stats
        assert stats["fallbacks"] > 0
        assert stats["switchless"] == 0
        work = capture.snapshot.work_by_category
        expected = (stats["fallbacks"] + stats["pool_reallocs"]) * T_ES
        assert work["transition"] == pytest.approx(expected, rel=1e-6)
        assert capture.snapshot.wall_by_category["worker-spin"] == 0.0

    def test_default_zc_transitions_track_fallback_count(self):
        # With the adaptive runtime, transitions still come only from
        # fallbacks and pool reallocations.
        capture = _capture(lambda: fig8.run_one(zc_spec(), n_keys=300))
        capture.assert_balanced()
        stats = capture.backend_stats
        work = capture.snapshot.work_by_category
        expected = (stats["fallbacks"] + stats["pool_reallocs"]) * T_ES
        assert work["transition"] == pytest.approx(expected, rel=1e-6, abs=1e-6)
