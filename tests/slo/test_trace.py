"""Span trees: construction, conservation, reconciliation, exporters."""

import json

import pytest

from repro.api import ServeSpec
from repro.serve.bench import build_cluster
from repro.serve.loadgen import LoadGenerator, LoadSpec
from repro.slo import (
    build_span_tree,
    build_span_trees,
    read_spans_jsonl,
    reconcile_with_latency,
    span_conservation_errors,
    spans_from_events,
    tenant_lane_trace_events,
    write_span_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.schema import SchemaMismatch


def record(request_id=1, tenant="gold", status="ok", **overrides):
    """A fully-boundaried span record: 10 cycles per phase."""
    base = {
        "request_id": request_id,
        "tenant": tenant,
        "op": "get",
        "status": status,
        "shard": 0,
        "t_submit": 100.0,
        "t_enqueue": 110.0,
        "t_dequeue": 120.0,
        "t_result": 130.0,
        "t_complete": 140.0,
    }
    base.update(overrides)
    return base


class TestBuildSpanTree:
    def test_full_tree_tiles_the_root_exactly(self):
        tree = build_span_tree(record())
        assert [c.name for c in tree.root.children] == [
            "admission",
            "queue",
            "execute",
            "reply",
        ]
        assert tree.root.duration == 40.0
        assert tree.root.duration == tree.root.child_sum  # exact, not approx
        assert tree.errors() == []
        # Consecutive phases share their boundary instant.
        for left, right in zip(tree.root.children, tree.root.children[1:]):
            assert left.t_end == right.t_start

    def test_shed_at_admission_has_one_child(self):
        tree = build_span_tree(
            record(
                status="shed",
                shard=None,
                t_enqueue=None,
                t_dequeue=None,
                t_result=None,
            )
        )
        assert [c.name for c in tree.root.children] == ["admission"]
        assert tree.root.children[0].duration == tree.root.duration
        assert tree.errors() == []

    def test_evicted_from_queue_absorbs_into_queue_span(self):
        tree = build_span_tree(
            record(status="shed", t_dequeue=None, t_result=None)
        )
        assert [c.name for c in tree.root.children] == ["admission", "queue"]
        assert tree.root.children[1].t_end == 140.0
        assert tree.errors() == []

    def test_non_monotonic_boundaries_reported(self):
        tree = build_span_tree(record(t_dequeue=105.0))  # before t_enqueue
        problems = tree.errors()
        assert problems
        assert any("gap" in p or "ends before" in p for p in problems)


class TestConservation:
    def test_clean_records_have_no_errors(self):
        records = [record(request_id=i) for i in range(1, 6)]
        assert span_conservation_errors(records) == []

    def test_duplicate_request_id_detected(self):
        records = [record(request_id=7), record(request_id=7)]
        problems = span_conservation_errors(records)
        assert any("more than one span record" in p for p in problems)

    def test_reconcile_balances_exact_books(self):
        records = [record(request_id=i) for i in range(1, 4)]
        trees = build_span_trees(records)
        assert reconcile_with_latency(trees, 120.0) is None

    def test_reconcile_ignores_non_ok_requests(self):
        records = [
            record(request_id=1),
            record(request_id=2, status="shed", t_dequeue=None, t_result=None),
        ]
        trees = build_span_trees(records)
        # Only the ok request's 40 cycles are charged to the ledger.
        assert reconcile_with_latency(trees, 40.0) is None

    def test_reconcile_flags_unbalanced_books(self):
        trees = build_span_trees([record()])
        message = reconcile_with_latency(trees, 99.0)
        assert message is not None
        assert "unreconciled" in message


class TestLiveReconciliation:
    """Acceptance demo: span trees sum to the cycle-attribution ledger."""

    def test_bench_spans_reconcile_with_latency_ledger(self):
        cluster = build_cluster(
            ServeSpec(shards=2, policy="round-robin", budget=4),
            telemetry=False,
        )
        try:
            spec = LoadSpec(
                rate_rps=4_000.0,
                duration_s=0.02,
                seed=3,
                tenants=(("bronze", 1.0), ("gold", 3.0)),
            )
            LoadGenerator(cluster.kernel, cluster.router, spec).run()
            router = cluster.router
            assert router.spans, "the run recorded no spans"
            assert span_conservation_errors(router.spans) == []
            trees = build_span_trees(router.spans)
            # Every root equals the sum of its children to the bit...
            for tree in trees:
                assert tree.root.duration == tree.root.child_sum
            # ...and the ok roots sum to exactly what the latency
            # recorder charged, cycle for cycle.
            ledger_total = sum(router.latency.samples_cycles)
            assert reconcile_with_latency(trees, ledger_total) is None
            assert {tree.tenant for tree in trees} == {"gold", "bronze"}
        finally:
            cluster.close()


class TestEventSources:
    def test_spans_from_events_filters_and_projects(self):
        span = record()
        events = [
            TelemetryEvent(t_cycles=0.0, name="serve.request.submit", fields={}),
            TelemetryEvent(
                t_cycles=1.0, name="serve.request.span", fields=dict(span)
            ),
        ]
        extracted = spans_from_events(events)
        assert len(extracted) == 1
        assert extracted[0]["request_id"] == span["request_id"]
        assert extracted[0]["t_complete"] == span["t_complete"]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        records = [record(request_id=i) for i in range(1, 4)]
        assert write_spans_jsonl(path, records) == 3
        assert read_spans_jsonl(path) == records

    def test_jsonl_refuses_unstamped_files(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(json.dumps(record()) + "\n")
        with pytest.raises(SchemaMismatch):
            read_spans_jsonl(str(path))


class TestChromeTrace:
    def test_one_process_lane_per_tenant(self):
        records = [
            record(request_id=1, tenant="gold"),
            record(request_id=2, tenant="bronze"),
            record(request_id=3, tenant="gold"),
        ]
        events = tenant_lane_trace_events(records, freq_hz=1e9)
        lanes = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert lanes == {"tenant bronze": 0, "tenant gold": 1}
        request_pids = {
            e["pid"]
            for e in events
            if e.get("name") == "request" and e["ph"] == "b"
        }
        assert request_pids == {0, 1}

    def test_begin_end_pairs_balance(self):
        events = tenant_lane_trace_events([record()], freq_hz=1e9)
        begins = [e for e in events if e.get("ph") == "b"]
        ends = [e for e in events if e.get("ph") == "e"]
        assert len(begins) == len(ends) == 5  # request + four phases
        # Timestamps scale cycles into microseconds at the given clock.
        root_begin = next(e for e in begins if e["name"] == "request")
        assert root_begin["ts"] == pytest.approx(100.0 * 1e6 / 1e9)

    def test_written_trace_is_stamped(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_span_chrome_trace(path, [record()], freq_hz=1e9)
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["artifact"] == "chrome-trace"
        assert len(document["traceEvents"]) == count
