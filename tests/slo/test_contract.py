"""SLO contracts: validation, round-trip, evaluation, CLI gating."""

import json

import pytest

from repro.cli import main
from repro.slo import (
    SloContract,
    Verdict,
    evaluate_contracts,
    hard_breaches,
    load_contracts,
    render_verdicts,
    save_contracts,
    verdicts_summary,
)
from repro.telemetry.schema import SchemaMismatch


def artifact(per_tenant, plan=None, recoveries=()):
    """A minimal serve-bench artifact slice the evaluator reads."""
    return {
        "params": {"plan": plan},
        "totals": {"recoveries": list(recoveries)},
        "per_tenant": per_tenant,
    }


def tenant_record(
    submitted=1_000,
    throughput_rps=500.0,
    shed_rate=0.0,
    count=1_000,
    p99=50.0,
    p999=80.0,
):
    return {
        "submitted": submitted,
        "throughput_rps": throughput_rps,
        "shed_rate": shed_rate,
        "latency_us": {"count": float(count), "p99": p99, "p999": p999},
    }


class TestContractValidation:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            SloContract(tenant="t", severity="advisory", p99_latency_us=1.0)

    def test_rejects_non_positive_bounds(self):
        for field_name in (
            "p99_latency_us",
            "p999_latency_us",
            "min_throughput_rps",
            "recovery_deadline_s",
        ):
            with pytest.raises(ValueError):
                SloContract(tenant="t", **{field_name: 0.0})

    def test_rejects_shed_rate_outside_unit_interval(self):
        with pytest.raises(ValueError):
            SloContract(tenant="t", max_shed_rate=1.5)

    def test_rejects_contract_that_bounds_nothing(self):
        with pytest.raises(ValueError):
            SloContract(tenant="t")
        # fault_plan alone bounds nothing either.
        with pytest.raises(ValueError):
            SloContract(tenant="t", fault_plan="chaos")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown contract field"):
            SloContract.from_dict({"tenant": "t", "p99_latency_ms": 1.0})

    def test_bounds_names_only_set_objectives(self):
        contract = SloContract(
            tenant="t", p99_latency_us=1.0, max_shed_rate=0.1
        )
        assert contract.bounds() == ("p99_latency_us", "max_shed_rate")


class TestRoundTrip:
    CONTRACTS = [
        SloContract(
            tenant="gold",
            severity="hard",
            p99_latency_us=1_000.0,
            min_throughput_rps=100.0,
            recovery_deadline_s=0.5,
            fault_plan="enclave-lost",
        ),
        SloContract(tenant="bronze", severity="diagnostic", max_shed_rate=0.05),
    ]

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "contracts.json")
        save_contracts(self.CONTRACTS, path)
        assert load_contracts(path) == self.CONTRACTS

    def test_load_refuses_schema_mismatch(self, tmp_path):
        path = tmp_path / "contracts.json"
        save_contracts(self.CONTRACTS, str(path))
        document = json.loads(path.read_text())
        document["meta"]["schema_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(SchemaMismatch):
            load_contracts(str(path))

    def test_load_rejects_duplicate_tenants(self, tmp_path):
        path = tmp_path / "contracts.json"
        duplicated = [self.CONTRACTS[0], self.CONTRACTS[0]]
        save_contracts(duplicated, str(path))
        with pytest.raises(ValueError, match="duplicate tenant"):
            load_contracts(str(path))

    def test_committed_contract_set_loads(self):
        contracts = load_contracts("contracts/quick.json")
        assert {c.tenant for c in contracts} == {"gold", "bronze"}
        severities = {c.tenant: c.severity for c in contracts}
        assert severities == {"gold": "hard", "bronze": "diagnostic"}


class TestEvaluation:
    def test_latency_within_bound_passes(self):
        contract = SloContract(tenant="gold", p99_latency_us=100.0)
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record(p99=50.0)}), [contract]
        )
        assert [v.ok for v in verdicts] == [True]
        assert hard_breaches(verdicts) == []

    def test_hard_latency_breach_gates(self):
        contract = SloContract(tenant="gold", p99_latency_us=10.0)
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record(p99=50.0)}), [contract]
        )
        (verdict,) = verdicts
        assert verdict.gating
        assert verdict.diff_severity() == "regression"

    def test_diagnostic_breach_reports_without_gating(self):
        contract = SloContract(
            tenant="bronze", severity="diagnostic", p99_latency_us=10.0
        )
        verdicts = evaluate_contracts(
            artifact({"bronze": tenant_record(p99=50.0)}), [contract]
        )
        (verdict,) = verdicts
        assert verdict.breached and not verdict.gating
        assert verdict.diff_severity() == "drift"
        summary = verdicts_summary(verdicts)
        assert summary["hard_breaches"] == 0
        assert summary["diagnostic_breaches"] == 1

    def test_low_confidence_hard_breach_downgrades(self):
        # 20 samples cannot attest a p99: the hard breach becomes
        # diagnostic, with the note explaining the confidence floor.
        contract = SloContract(tenant="gold", p99_latency_us=10.0)
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record(count=20, p99=50.0)}), [contract]
        )
        (verdict,) = verdicts
        assert verdict.breached
        assert verdict.severity == "diagnostic"
        assert not verdict.gating
        assert "downgraded to diagnostic" in verdict.note
        assert ">= 100" in verdict.note

    def test_confident_passes_are_not_downgraded(self):
        contract = SloContract(tenant="gold", p99_latency_us=100.0)
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record(count=20, p99=50.0)}), [contract]
        )
        (verdict,) = verdicts
        assert verdict.ok and verdict.severity == "hard" and not verdict.note

    def test_p999_uses_its_own_floor(self):
        contract = SloContract(tenant="gold", p999_latency_us=10.0)
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record(count=500, p999=50.0)}), [contract]
        )
        (verdict,) = verdicts
        # 500 samples clear the p99 floor but not the p999 one.
        assert verdict.severity == "diagnostic"
        assert ">= 1000" in verdict.note

    def test_throughput_floor_and_shed_ceiling(self):
        contract = SloContract(
            tenant="gold", min_throughput_rps=600.0, max_shed_rate=0.01
        )
        verdicts = evaluate_contracts(
            artifact(
                {"gold": tenant_record(throughput_rps=500.0, shed_rate=0.25)}
            ),
            [contract],
        )
        assert {v.check: v.ok for v in verdicts} == {
            "throughput": False,
            "shed_rate": False,
        }
        assert len(hard_breaches(verdicts)) == 2

    def test_missing_tenant_is_a_traffic_breach(self):
        contract = SloContract(tenant="ghost", p99_latency_us=100.0)
        verdicts = evaluate_contracts(artifact({}), [contract])
        (verdict,) = verdicts
        assert verdict.check == "traffic"
        assert verdict.gating
        assert "no traffic" in verdict.message

    def test_recovery_not_exercised_under_other_plan(self):
        contract = SloContract(
            tenant="gold", recovery_deadline_s=0.5, fault_plan="enclave-lost"
        )
        verdicts = evaluate_contracts(
            artifact({"gold": tenant_record()}, plan="crash-heavy"), [contract]
        )
        recovery = [v for v in verdicts if v.check == "recovery"]
        assert [v.ok for v in recovery] == [True]
        assert "not exercised" in recovery[0].message

    def test_recovery_dead_shard_breaches(self):
        contract = SloContract(
            tenant="gold", recovery_deadline_s=0.5, fault_plan="enclave-lost"
        )
        verdicts = evaluate_contracts(
            artifact(
                {"gold": tenant_record()},
                plan="enclave-lost",
                recoveries=[{"shard": 0, "outcome": "dead", "seconds": 0.1}],
            ),
            [contract],
        )
        recovery = [v for v in verdicts if v.check == "recovery"]
        assert [v.ok for v in recovery] == [False]
        assert "never recovered" in recovery[0].message

    def test_recovery_slow_readmit_breaches(self):
        contract = SloContract(tenant="gold", recovery_deadline_s=0.5)
        verdicts = evaluate_contracts(
            artifact(
                {"gold": tenant_record()},
                recoveries=[
                    {"shard": 0, "outcome": "readmitted", "seconds": 0.9}
                ],
            ),
            [contract],
        )
        recovery = [v for v in verdicts if v.check == "recovery"]
        assert [v.ok for v in recovery] == [False]
        assert "over the 0.5 s deadline" in recovery[0].message

    def test_recovery_within_deadline_passes(self):
        contract = SloContract(tenant="gold", recovery_deadline_s=0.5)
        verdicts = evaluate_contracts(
            artifact(
                {"gold": tenant_record()},
                recoveries=[
                    {"shard": 0, "outcome": "readmitted", "seconds": 0.1}
                ],
            ),
            [contract],
        )
        recovery = [v for v in verdicts if v.check == "recovery"]
        assert [v.ok for v in recovery] == [True]

    def test_render_puts_gating_breaches_first(self):
        verdicts = [
            Verdict("a", "p99", "hard", True, 1.0, 2.0, "fine"),
            Verdict("b", "p99", "diagnostic", False, 3.0, 2.0, "drifting"),
            Verdict("c", "p99", "hard", False, 3.0, 2.0, "broken"),
        ]
        rendered = render_verdicts(verdicts)
        lines = rendered.splitlines()
        assert "1 hard breach(es)" in lines[0]
        assert "[gates]" in lines[1] and "broken" in lines[1]
        assert rendered.index("broken") < rendered.index("drifting")


class TestCliGate:
    """Acceptance demo: hard breach exits 1, diagnostic-only passes."""

    BENCH = [
        "serve",
        "bench",
        "--shards",
        "1",
        "--seconds",
        "0.05",
        "--rate",
        "4000",
        "--tenants",
        "gold:3,bronze:1",
    ]

    def test_hard_breach_fails_the_run(self, tmp_path, capsys):
        # gold's p99 bound is unmeetable and gold sends enough traffic to
        # clear the confidence floor: the hard breach gates.
        contracts = str(tmp_path / "strict.json")
        save_contracts(
            [
                SloContract(tenant="gold", p99_latency_us=0.001),
                SloContract(
                    tenant="bronze", severity="diagnostic", p99_latency_us=0.001
                ),
            ],
            contracts,
        )
        code = main(
            [
                *self.BENCH,
                "--contracts",
                contracts,
                "--out",
                str(tmp_path / "bench.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "[gates]" in out
        # The diagnostic tenant's breach is visible but never gating.
        result = json.loads((tmp_path / "bench.json").read_text())
        by_tenant = {
            (v["tenant"], v["check"]): v for v in result["slo"]["verdicts"]
        }
        assert by_tenant[("gold", "p99")]["diff_severity"] == "regression"
        assert by_tenant[("bronze", "p99")]["diff_severity"] == "drift"

    def test_diagnostic_only_breach_passes(self, tmp_path, capsys):
        contracts = str(tmp_path / "lenient.json")
        save_contracts(
            [
                SloContract(
                    tenant="gold", p99_latency_us=1e6, max_shed_rate=1.0
                ),
                SloContract(
                    tenant="bronze", severity="diagnostic", p99_latency_us=0.001
                ),
            ],
            contracts,
        )
        code = main(
            [
                *self.BENCH,
                "--contracts",
                contracts,
                "--out",
                str(tmp_path / "bench.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "BREACH" in out  # bronze's drift is still reported
        assert "no hard breaches" in out
