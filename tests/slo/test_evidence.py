"""Evidence packs: build/verify round-trip, tamper detection, CLI."""

import json
import tarfile

import pytest

from repro.cli import main
from repro.slo import build_evidence_pack, pack_tarball, verify_evidence_pack
from repro.telemetry.schema import SchemaMismatch

CONTENTS = {
    "bench.json": {"totals": {"completed": 42}},
    "notes.txt": "plain text body\n",
    "raw.bin": b"\x00\x01\x02",
    "nested/audit.json": {"ok": True},
}


def build_pack(tmp_path, name="pack"):
    pack_dir = str(tmp_path / name)
    manifest = build_evidence_pack(pack_dir, CONTENTS)
    return pack_dir, manifest


class TestBuild:
    def test_manifest_lists_every_file(self, tmp_path):
        _, manifest = build_pack(tmp_path)
        assert set(manifest["files"]) == set(CONTENTS)
        for entry in manifest["files"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0
        assert manifest["meta"]["artifact"] == "evidence-pack"

    def test_rejects_empty_pack(self, tmp_path):
        with pytest.raises(ValueError):
            build_evidence_pack(str(tmp_path / "empty"), {})

    def test_rejects_reserved_manifest_name(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            build_evidence_pack(
                str(tmp_path / "p"), {"manifest.json": {"nope": 1}}
            )

    def test_rejects_escaping_names(self, tmp_path):
        for name in ("../outside.json", "/abs.json", "a/../../b.json"):
            with pytest.raises(ValueError, match="escapes the pack"):
                build_evidence_pack(str(tmp_path / "p"), {name: "x"})


class TestVerify:
    def test_round_trip_is_clean(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        assert verify_evidence_pack(pack_dir) == []

    def test_tampered_file_fails_sha256(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        target = tmp_path / "pack" / "bench.json"
        target.write_text(target.read_text().replace("42", "43"))
        errors = verify_evidence_pack(pack_dir)
        assert len(errors) == 1
        assert "bench.json" in errors[0] and "SHA-256 mismatch" in errors[0]

    def test_missing_file_reported(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        (tmp_path / "pack" / "notes.txt").unlink()
        errors = verify_evidence_pack(pack_dir)
        assert any("missing" in e for e in errors)

    def test_unmanifested_file_reported(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        (tmp_path / "pack" / "smuggled.txt").write_text("extra")
        errors = verify_evidence_pack(pack_dir)
        assert any("smuggled.txt" in e and "not in the manifest" in e for e in errors)

    def test_refuses_schema_mismatch_before_hashing(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        manifest_path = tmp_path / "pack" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["meta"]["schema_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaMismatch):
            verify_evidence_pack(pack_dir)

    def test_directory_without_manifest_is_not_a_pack(self, tmp_path):
        (tmp_path / "stray.txt").write_text("not a pack")
        errors = verify_evidence_pack(str(tmp_path))
        assert errors and "not an evidence pack" in errors[0]


class TestTarball:
    def test_tarball_round_trip(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        tar_path = pack_tarball(pack_dir, str(tmp_path / "pack.tar.gz"))
        assert verify_evidence_pack(tar_path) == []

    def test_tampered_tarball_fails(self, tmp_path):
        pack_dir, _ = build_pack(tmp_path)
        target = tmp_path / "pack" / "bench.json"
        target.write_text(target.read_text().replace("42", "43"))
        tar_path = pack_tarball(pack_dir, str(tmp_path / "pack.tar.gz"))
        errors = verify_evidence_pack(tar_path)
        assert any("SHA-256 mismatch" in e for e in errors)

    def test_escaping_member_refused(self, tmp_path):
        evil = str(tmp_path / "evil.tar.gz")
        payload = tmp_path / "payload.txt"
        payload.write_text("x")
        with tarfile.open(evil, "w:gz") as archive:
            archive.add(str(payload), arcname="../escape.txt")
        with pytest.raises(SchemaMismatch, match="escapes the pack"):
            verify_evidence_pack(evil)


class TestCli:
    """Acceptance demo: one-command pack, verify, tamper → failure."""

    def build_args(self, tmp_path):
        return [
            "evidence",
            "build",
            "--out",
            str(tmp_path / "evidence"),
            "--tar",
            str(tmp_path / "evidence.tar.gz"),
            "--shards",
            "1",
            "--seconds",
            "0.05",
            "--rate",
            "2000",
            "--budget",
            "4",
            "--tenants",
            "gold:3,bronze:1",
            "--contracts",
            "contracts/quick.json",
        ]

    def test_build_verify_tamper_cycle(self, tmp_path, capsys):
        assert main(self.build_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "evidence pack" in out

        pack_dir = tmp_path / "evidence"
        expected = {
            "run_config.json",
            "bench.json",
            "audit.json",
            "trace.json",
            "spans.jsonl",
            "contracts.json",
            "verdicts.json",
            "manifest.json",
        }
        assert expected <= {p.name for p in pack_dir.rglob("*") if p.is_file()}

        # Both forms verify clean...
        assert main(["evidence", "verify", str(pack_dir)]) == 0
        assert main(["evidence", "verify", str(tmp_path / "evidence.tar.gz")]) == 0
        capsys.readouterr()

        # ...until one byte of the bench artifact changes.
        bench = pack_dir / "bench.json"
        bench.write_text(bench.read_text().replace(": ", " : ", 1))
        assert main(["evidence", "verify", str(pack_dir)]) == 1
        out = capsys.readouterr().out
        assert "SHA-256 mismatch" in out

    def test_verify_refuses_foreign_schema(self, tmp_path, capsys):
        pack_dir, _ = build_pack(tmp_path)
        manifest_path = tmp_path / "pack" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["meta"]["schema_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        assert main(["evidence", "verify", pack_dir]) == 1
        assert "refused" in capsys.readouterr().out
