"""Tests for the static Intel switchless configuration."""

import pytest

from repro.switchless import SwitchlessConfig
from repro.switchless.config import SDK_DEFAULT_RETRIES


class TestSwitchlessConfig:
    def test_sdk_defaults(self):
        config = SwitchlessConfig()
        assert config.retries_before_fallback == SDK_DEFAULT_RETRIES == 20_000
        assert config.retries_before_sleep == 20_000
        assert config.num_uworkers == 2

    def test_switchless_selection_is_static(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"fread", "fwrite"}))
        assert config.is_switchless("fread")
        assert config.is_switchless("fwrite")
        assert not config.is_switchless("fseeko")

    def test_iterable_selection_coerced_to_frozenset(self):
        config = SwitchlessConfig(switchless_ocalls={"read"})  # type: ignore[arg-type]
        assert isinstance(config.switchless_ocalls, frozenset)
        assert config.is_switchless("read")

    def test_default_pool_capacity_tracks_workers(self):
        assert SwitchlessConfig(num_uworkers=3).effective_pool_capacity == 6
        assert SwitchlessConfig(pool_capacity=5).effective_pool_capacity == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_uworkers": 0},
            {"retries_before_fallback": -1},
            {"retries_before_sleep": -1},
            {"pool_capacity": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SwitchlessConfig(**kwargs)
