"""Edge cases of the Intel switchless protocol."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, Sleep
from repro.switchless import SwitchlessConfig
from repro.switchless.backend import IntelSwitchlessBackend


def build(config, n_cores=8, smt=1):
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=smt))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = IntelSwitchlessBackend(config)
    enclave.set_backend(backend)
    return kernel, urts, enclave, backend


def work(duration):
    def handler(value=None):
        yield Compute(duration)
        return value

    return handler


class TestPoolPressure:
    def test_pool_capacity_bounds_concurrent_pending_tasks(self):
        """With capacity 2 and a single slow worker, burst arrivals split
        into: served, pool-queued, and pool-full fallbacks."""
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            pool_capacity=2,
            retries_before_fallback=20_000,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work(3_000_000))

        def app():
            yield from enclave.ocall("f")

        threads = [kernel.spawn(app()) for _ in range(6)]
        kernel.join(*threads)
        assert backend.pool is not None
        assert backend.pool.rejected_full > 0
        assert enclave.stats.total_calls == 6
        assert (
            enclave.stats.total_switchless + enclave.stats.total_fallback == 6
        )

    def test_cancelled_tasks_leave_pool_consistent(self):
        """Callers that give up (rbf) withdraw their tasks; the worker
        must never observe them, and later calls still work."""
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            retries_before_fallback=5,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work(2_000_000))

        def app():
            yield from enclave.ocall("f")

        first_wave = [kernel.spawn(app()) for _ in range(4)]
        kernel.join(*first_wave)
        executed_before = sum(s.tasks_executed for s in backend.worker_stats)

        late = kernel.spawn(app())
        kernel.join(late)
        executed_after = sum(s.tasks_executed for s in backend.worker_stats)
        # The worker only executed claimed (never cancelled) tasks.
        assert executed_after == executed_before + 1
        assert backend.pool.cancelled_total >= 1


class TestSleepWakeOrdering:
    def test_multiple_sleepers_wake_fifo(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=3,
            retries_before_sleep=0,  # sleep immediately when idle
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work(1_000))

        def app():
            yield Sleep(100_000)  # let all three workers fall asleep
            yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        # Exactly one worker was woken for the single task; with rbs=0 it
        # re-slept immediately after serving, so all three end asleep.
        wakes = [s.wakes for s in backend.worker_stats]
        assert sum(wakes) == 1
        woken_index = wakes.index(1)
        assert backend.worker_stats[woken_index].sleeps == 2
        assert backend.pool.sleeping_count() == 3

    def test_rbs_zero_still_serves_back_to_back_load(self):
        """Aggressive sleeping must not lose tasks under streaming load."""
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=2,
            retries_before_sleep=0,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work(500))

        def app():
            for _ in range(50):
                yield from enclave.ocall("f")

        threads = [kernel.spawn(app()) for _ in range(2)]
        kernel.join(*threads)
        assert enclave.stats.total_calls == 100
        assert enclave.stats.total_switchless + enclave.stats.total_fallback == 100


class TestWorkerAccountingKinds:
    def test_worker_cpu_attributed_to_intel_worker_kind(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=2)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work(10_000))

        def app():
            yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        snap = kernel.cpu_snapshot()
        assert snap["by_kind"].get("intel-worker", 0) >= 10_000
