"""Tests for the HotCalls baseline backend."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, Sleep
from repro.switchless.hotcalls import HotCallsBackend, HotCallsConfig


def build(config, n_cores=8, smt=1):
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=smt))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = HotCallsBackend(config)
    enclave.set_backend(backend)
    return kernel, urts, enclave, backend


def work_handler(duration):
    def handler(value=None):
        yield Compute(duration, tag="host")
        return value

    return handler


class TestHotCalls:
    def test_hot_call_executes_without_transition(self):
        config = HotCallsConfig({"f"}, n_responders=1)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(1000))

        def app():
            result = yield from enclave.ocall("f", "x")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "x"
        assert backend.hot_count == 1
        site = enclave.stats.by_name["f"]
        assert site.switchless == 1
        assert site.mean_latency_cycles < 4000

    def test_cold_call_transitions(self):
        config = HotCallsConfig({"f"})
        kernel, urts, enclave, backend = build(config)
        urts.register("g", work_handler(500))

        def app():
            yield from enclave.ocall("g")

        kernel.join(kernel.spawn(app()))
        assert backend.regular_count == 1
        assert enclave.stats.by_name["g"].regular == 1

    def test_no_fallback_ever_caller_waits(self):
        """The defining difference from Intel/zc: a hot call with all
        responders busy waits instead of falling back."""
        config = HotCallsConfig({"f"}, n_responders=1)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(500_000))

        def app():
            yield from enclave.ocall("f")

        a = kernel.spawn(app())
        b = kernel.spawn(app())
        kernel.join(a, b)
        assert backend.hot_count == 2
        assert enclave.stats.total_fallback == 0
        assert enclave.stats.total_regular == 0
        # Serialised on the single responder: ~2x the single-call time.
        assert kernel.now > 1_000_000

    def test_responders_burn_cpu_while_idle(self):
        """Responders never sleep — one full CPU per responder, always."""
        config = HotCallsConfig({"f"}, n_responders=2)
        kernel, urts, enclave, backend = build(config)

        def app():
            yield Sleep(1_000_000)  # no calls at all

        kernel.join(kernel.spawn(app()))
        kernel.flush_accounting()
        for responder in backend.responder_threads:
            assert responder.cycles_by["spin"] == pytest.approx(1_000_000, rel=0.01)

    def test_stop_terminates_responders(self):
        config = HotCallsConfig({"f"}, n_responders=3)
        kernel, urts, enclave, backend = build(config)
        kernel.run(until_time=100_000)
        backend.stop()
        kernel.run()
        assert all(t.done for t in backend.responder_threads)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HotCallsConfig({"f"}, n_responders=0)

    def test_concurrent_responders_serve_in_parallel(self):
        config = HotCallsConfig({"f"}, n_responders=2)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(100_000))

        def app():
            yield from enclave.ocall("f")

        threads = [kernel.spawn(app()) for _ in range(2)]
        kernel.join(*threads)
        assert kernel.now < 180_000  # parallel, not serialised
