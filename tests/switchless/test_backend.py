"""Integration tests for the Intel switchless backend."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, Sleep
from repro.switchless import SwitchlessConfig
from repro.switchless.backend import IntelSwitchlessBackend


def build(config, n_cores=4, smt=2):
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=smt))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = IntelSwitchlessBackend(config)
    enclave.set_backend(backend)
    return kernel, urts, enclave, backend


def work_handler(duration):
    def handler(value):
        yield Compute(duration, tag="host-work")
        return value

    return handler


class TestSwitchlessExecution:
    def test_switchless_call_avoids_transition(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=1)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(1000))

        def app():
            result = yield from enclave.ocall("f", "ok")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "ok"
        assert backend.switchless_count == 1
        assert backend.fallback_count == 0
        site = enclave.stats.by_name["f"]
        assert site.switchless == 1
        # Caller latency is far below a regular ocall (~14,800 cycles).
        assert site.mean_latency_cycles < 4000

    def test_non_selected_ocall_always_transitions(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=1)
        kernel, urts, enclave, backend = build(config)
        urts.register("g", work_handler(500))

        def app():
            yield from enclave.ocall("g", None)

        kernel.join(kernel.spawn(app()))
        assert backend.switchless_count == 0
        assert enclave.stats.by_name["g"].regular == 1

    def test_worker_executes_on_separate_thread(self):
        """While the worker runs the handler, the caller busy-waits: both
        burn CPU, which is the M*T waste term of the paper's model."""
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=1)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(50_000))

        def app():
            yield from enclave.ocall("f", None)

        t = kernel.spawn(app())
        kernel.join(t)
        worker = backend.worker_threads[0]
        assert worker.cycles_by["compute"] >= 50_000
        assert t.cycles_by["spin"] >= 50_000  # caller busy-waited throughout

    def test_two_workers_serve_two_callers_concurrently(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=2)
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(100_000))

        def app():
            yield from enclave.ocall("f", None)

        threads = [kernel.spawn(app()) for _ in range(2)]
        kernel.join(*threads)
        assert backend.switchless_count == 2
        # Concurrent service: total elapsed well below 2 sequential calls.
        assert kernel.now < 180_000


class TestFallback:
    def test_pool_full_falls_back_immediately(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            pool_capacity=1,
            retries_before_fallback=100,
        )
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(500_000))

        def app():
            yield from enclave.ocall("f", None)

        threads = [kernel.spawn(app()) for _ in range(4)]
        kernel.join(*threads)
        assert backend.fallback_count >= 1
        assert backend.switchless_count >= 1
        assert enclave.stats.total_calls == 4

    def test_busy_worker_causes_rbf_fallback(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            retries_before_fallback=10,
        )
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(1_000_000))

        def app():
            yield from enclave.ocall("f", None)

        a = kernel.spawn(app())
        b = kernel.spawn(app())
        kernel.join(a, b)
        # The second caller's task is never picked up within 10 retries.
        assert backend.fallback_count == 1
        assert backend.switchless_count == 1

    def test_default_rbf_burns_millions_of_cycles_before_fallback(self):
        """The §III-C pathology: with the 20,000-retry default, a caller
        waits ~2.8M cycles for a busy worker before falling back — ~200x
        the cost of the transition it was trying to avoid."""
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=1)
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(10_000_000))  # worker busy a long time

        def app():
            yield from enclave.ocall("f", None)

        a = kernel.spawn(app())
        b = kernel.spawn(app())
        kernel.join(a, b)
        assert backend.fallback_count == 1
        # The falling-back caller burnt about rbf * pause cycles spinning
        # (total spin minus the successful caller's completion wait).
        spin = (a.cycles_by["spin"] + b.cycles_by["spin"]) - 10_000_000
        assert spin >= 2.7e6

    def test_rbf_zero_disables_waiting(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            retries_before_fallback=0,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(100))

        def app():
            yield from enclave.ocall("f", None)

        kernel.join(kernel.spawn(app()))
        # With zero retries the task is withdrawn before any pickup.
        assert backend.fallback_count == 1


class TestWorkerSleep:
    def test_idle_worker_sleeps_after_rbs_then_wakes_on_submit(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            retries_before_sleep=100,  # sleep after 14,000 idle cycles
        )
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(1000))

        def app():
            yield Sleep(1_000_000)  # let the worker exhaust rbs and sleep
            result = yield from enclave.ocall("f", "late")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "late"
        stats = backend.worker_stats[0]
        assert stats.sleeps >= 1
        assert stats.wakes >= 1
        assert backend.switchless_count == 1

    def test_sleeping_worker_wake_latency_charged(self):
        config = SwitchlessConfig(
            switchless_ocalls=frozenset({"f"}),
            num_uworkers=1,
            retries_before_sleep=0,  # sleep immediately when idle
        )
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(1000))

        def app():
            yield Sleep(10_000)
            yield from enclave.ocall("f", None)

        t = kernel.spawn(app())
        kernel.join(t)
        site = enclave.stats.by_name["f"]
        # Pickup had to wait for the futex wake (~20k cycles).
        assert site.mean_latency_cycles > enclave.cost.worker_wake_cycles

    def test_stop_terminates_all_workers(self):
        config = SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=3)
        kernel, urts, enclave, backend = build(config)
        kernel.run(until_time=1_000_000)
        backend.stop()
        kernel.run()
        assert all(w.done for w in backend.worker_threads)
