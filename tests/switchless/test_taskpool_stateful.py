"""Stateful property test of the Intel task pool's claim/cancel protocol.

Hypothesis drives random interleavings of enqueue / claim / cancel and
checks the protocol's invariants: a task is executed at most once, a
cancelled task is never observed by a worker, capacity is never exceeded,
and accounting identities hold throughout.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis.strategies import integers

from repro.sgx.enclave import OcallRequest
from repro.sim import Kernel, MachineSpec
from repro.switchless import SwitchlessTask, TaskPool

CAPACITY = 3


class TaskPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        self.pool = TaskPool(self.kernel, CAPACITY)
        self.pending: list[SwitchlessTask] = []
        self.claimed: list[SwitchlessTask] = []
        self.cancelled: list[SwitchlessTask] = []
        self.rejected = 0
        self.counter = 0

    @rule()
    def enqueue(self):
        task = SwitchlessTask(self.kernel, OcallRequest(name=f"t{self.counter}"))
        self.counter += 1
        if self.pool.try_enqueue(task):
            self.pending.append(task)
        else:
            self.rejected += 1

    @rule()
    def claim(self):
        task = self.pool.try_claim()
        if task is None:
            assert not self.pending, "pool said empty while tasks pend"
            return
        expected = self.pending.pop(0)
        assert task is expected, "claims must be FIFO"
        assert not task.cancelled, "worker observed a cancelled task"
        task.picked.fire()
        self.claimed.append(task)

    @precondition(lambda self: self.pending)
    @rule(index=integers(min_value=0, max_value=10))
    def cancel_some_pending(self, index):
        task = self.pending[index % len(self.pending)]
        assert self.pool.try_cancel(task)
        self.pending.remove(task)
        self.cancelled.append(task)

    @precondition(lambda self: self.claimed)
    @rule(index=integers(min_value=0, max_value=10))
    def cancel_after_claim_fails(self, index):
        task = self.claimed[index % len(self.claimed)]
        assert not self.pool.try_cancel(task)

    @invariant()
    def capacity_never_exceeded(self):
        assert len(self.pending) <= CAPACITY

    @invariant()
    def accounting_identities(self):
        assert self.pool.enqueued_total == (
            len(self.pending) + len(self.claimed) + len(self.cancelled)
        )
        assert self.pool.rejected_full == self.rejected
        assert self.pool.cancelled_total == len(self.cancelled)

    @invariant()
    def claimed_tasks_are_picked_exactly_once(self):
        assert all(task.picked.fired for task in self.claimed)
        assert all(not task.picked.fired for task in self.pending)


TaskPoolMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestTaskPoolProtocol = TaskPoolMachine.TestCase
