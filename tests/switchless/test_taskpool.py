"""Tests for the switchless task pool claim/cancel semantics."""

from repro.sgx.enclave import OcallRequest
from repro.sim import Kernel, MachineSpec
from repro.switchless import SwitchlessTask, TaskPool


def make_pool(capacity=2):
    kernel = Kernel(MachineSpec(n_cores=2, smt=1))
    return kernel, TaskPool(kernel, capacity)


def make_task(kernel, name="f"):
    return SwitchlessTask(kernel, OcallRequest(name=name))


class TestTaskPool:
    def test_enqueue_then_claim_fifo(self):
        kernel, pool = make_pool()
        t1 = make_task(kernel, "a")
        t2 = make_task(kernel, "b")
        assert pool.try_enqueue(t1)
        assert pool.try_enqueue(t2)
        assert pool.try_claim() is t1
        assert pool.try_claim() is t2
        assert pool.try_claim() is None

    def test_full_pool_rejects(self):
        kernel, pool = make_pool(capacity=1)
        assert pool.try_enqueue(make_task(kernel))
        assert not pool.try_enqueue(make_task(kernel))
        assert pool.rejected_full == 1

    def test_cancel_pending_succeeds(self):
        kernel, pool = make_pool()
        task = make_task(kernel)
        pool.try_enqueue(task)
        assert pool.try_cancel(task)
        assert task.cancelled
        assert pool.try_claim() is None

    def test_cancel_after_claim_fails(self):
        kernel, pool = make_pool()
        task = make_task(kernel)
        pool.try_enqueue(task)
        assert pool.try_claim() is task
        assert not pool.try_cancel(task)

    def test_enqueue_fires_armed_signals(self):
        kernel, pool = make_pool()
        signal = pool.arm_task_signal()
        assert not signal.fired
        pool.try_enqueue(make_task(kernel))
        assert signal.fired

    def test_arm_signal_prefired_when_work_pending(self):
        kernel, pool = make_pool()
        pool.try_enqueue(make_task(kernel))
        assert pool.arm_task_signal().fired

    def test_enqueue_wakes_one_sleeper(self):
        kernel, pool = make_pool()
        wake1 = pool.register_sleeper()
        wake2 = pool.register_sleeper()
        pool.try_enqueue(make_task(kernel))
        assert wake1.fired
        assert not wake2.fired
        assert pool.sleeping_count() == 1

    def test_wake_all_clears_sleepers_and_signals(self):
        kernel, pool = make_pool()
        wake = pool.register_sleeper()
        signal = pool.arm_task_signal()
        pool.wake_all()
        assert wake.fired
        assert signal.fired
        assert pool.sleeping_count() == 0
