"""Tests for the fleet-level wasted-cycle argmin (§IV-A, one level up).

Everything here is pure arithmetic: same demand in, same plan out.  The
tests pin the properties the controller relies on — determinism,
smallest-config tie-breaking, monotone response to arrivals, and the
enclave-lifecycle cost damping flap-sized blips.
"""

import pytest

from repro.autoscale.optimizer import (
    DEFAULT_OCALL_CYCLES,
    OVERLOAD_WEIGHT,
    FleetDemand,
    FleetPlan,
    fleet_argmin,
    fleet_objective,
)

#: A window wide enough that one window's overload pays for an enclave.
WINDOW = 20_000_000.0

#: Modeled lifecycle prices used throughout (shape, not calibration).
CREATE = 1_000_000.0
DESTROY = 200_000.0


def demand(arrivals=100.0, **overrides):
    kwargs = dict(
        arrivals=arrivals,
        window_cycles=WINDOW,
        service_cycles=15_000.0,
        ocall_cycles=DEFAULT_OCALL_CYCLES,
    )
    kwargs.update(overrides)
    return FleetDemand(**kwargs)


def argmin(arrivals, *, live=2, **overrides):
    return fleet_argmin(
        demand(arrivals, **overrides),
        live_shards=live,
        min_shards=1,
        max_shards=6,
        worker_options=(1, 2, 4),
        batch_options=(1, 2, 4),
        creation_cycles=CREATE,
        destruction_cycles=DESTROY,
        t_es=10_000.0,
    )


class TestFleetDemandValidation:
    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(arrivals=-1.0), "arrivals must be >= 0"),
            (dict(window_cycles=0.0), "window_cycles must be > 0"),
            (dict(service_cycles=0.0), "service_cycles must be > 0"),
            (dict(ocall_cycles=-1.0), "cycle costs must be >= 0"),
            (dict(dispatch_cycles=-1.0), "cycle costs must be >= 0"),
            (dict(servers_per_shard=0), "servers_per_shard must be >= 1"),
        ],
    )
    def test_invalid_fields(self, overrides, message):
        with pytest.raises(ValueError, match=message):
            demand(**overrides)

    def test_plan_capacity_scales_with_shards(self):
        d = demand(100.0)
        small = FleetPlan(shards=1, workers=2, batch=1, u_cycles=0.0)
        large = FleetPlan(shards=4, workers=2, batch=1, u_cycles=0.0)
        assert large.capacity_requests(d) == 4 * small.capacity_requests(d)


class TestFleetObjective:
    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ValueError, match=">= 1"):
            fleet_objective(
                demand(10.0), 0, 1, 1,
                live_shards=1, creation_cycles=CREATE, destruction_cycles=DESTROY,
            )

    def test_overload_outweighs_idleness(self):
        # An overloaded fleet must score worse than the same demand on an
        # amply-provisioned fleet: the gate holds p99, so the optimizer
        # prefers idle cycles over queued ones.
        d = demand(10_000.0)
        starved = fleet_objective(
            d, 1, 1, 1,
            live_shards=1, creation_cycles=0.0, destruction_cycles=0.0,
            t_es=10_000.0,
        )
        ample = fleet_objective(
            d, 6, 1, 1,
            live_shards=6, creation_cycles=0.0, destruction_cycles=0.0,
            t_es=10_000.0,
        )
        assert starved > ample

    def test_overload_term_carries_the_configured_weight(self):
        # Isolate the overload term: zero worker demand, zero dispatch.
        d = demand(10_000.0, ocall_cycles=0.0)
        base = fleet_objective(
            d, 1, 1, 1,
            live_shards=1, creation_cycles=0.0, destruction_cycles=0.0,
            t_es=10_000.0,
        )
        capacity = 1 * d.servers_per_shard * WINDOW / d.service_cycles
        overload = (10_000.0 - capacity) * d.service_cycles
        worker_idle = 1 * WINDOW  # one worker, zero switchless demand
        assert base == pytest.approx(OVERLOAD_WEIGHT * overload + worker_idle)

    def test_scaling_is_charged_on_the_transition(self):
        d = demand(100.0)
        hold = fleet_objective(
            d, 2, 1, 1,
            live_shards=2, creation_cycles=CREATE, destruction_cycles=DESTROY,
        )
        grow = fleet_objective(
            d, 4, 1, 1,
            live_shards=2, creation_cycles=CREATE, destruction_cycles=DESTROY,
        )
        shrink = fleet_objective(
            d, 1, 1, 1,
            live_shards=2, creation_cycles=CREATE, destruction_cycles=DESTROY,
        )
        base_grow = fleet_objective(
            d, 4, 1, 1,
            live_shards=4, creation_cycles=CREATE, destruction_cycles=DESTROY,
        )
        base_shrink = fleet_objective(
            d, 1, 1, 1,
            live_shards=1, creation_cycles=CREATE, destruction_cycles=DESTROY,
        )
        assert grow == pytest.approx(base_grow + 2 * CREATE)
        assert shrink == pytest.approx(base_shrink + 1 * DESTROY)
        assert hold == fleet_objective(
            d, 2, 1, 1,
            live_shards=2, creation_cycles=0.0, destruction_cycles=0.0,
        )

    def test_batching_amortises_dispatch(self):
        # Under slack capacity the idle and dispatch terms cancel exactly
        # (every dispatched cycle is one the servers did not idle), so
        # batching pays off precisely where it matters: when dispatch
        # overhead eats into a saturated fleet's capacity.
        d = demand(20_000.0, dispatch_cycles=500.0)
        unbatched = fleet_objective(
            d, 6, 1, 1,
            live_shards=6, creation_cycles=0.0, destruction_cycles=0.0,
        )
        batched = fleet_objective(
            d, 6, 1, 4,
            live_shards=6, creation_cycles=0.0, destruction_cycles=0.0,
        )
        assert batched < unbatched


class TestFleetArgmin:
    def test_band_validation(self):
        with pytest.raises(ValueError, match="min_shards <= max_shards"):
            fleet_argmin(
                demand(10.0),
                live_shards=0,
                min_shards=1,
                max_shards=6,
                worker_options=(1,),
                batch_options=(1,),
                creation_cycles=CREATE,
                destruction_cycles=DESTROY,
            )

    def test_deterministic(self):
        assert argmin(5_000.0) == argmin(5_000.0)

    def test_equal_cost_resolves_to_the_smallest_configuration(self):
        # Degenerate demand where every candidate scores identically:
        # zero window work of any kind except fixed per-candidate terms
        # is impossible, so instead force ties by making every term zero.
        d = demand(0.0, ocall_cycles=0.0)
        plan = fleet_argmin(
            d,
            live_shards=1,
            min_shards=1,
            max_shards=3,
            worker_options=(1, 2),
            batch_options=(1, 2),
            creation_cycles=0.0,
            destruction_cycles=0.0,
        )
        # server_idle still grows with shards and worker_idle with
        # workers, but batch is genuinely tied — the ascending sweep with
        # strict-< replacement keeps the smallest batch.
        assert (plan.shards, plan.workers, plan.batch) == (1, 1, 1)

    def test_zero_arrivals_shrinks_to_the_floor(self):
        plan = argmin(0.0, live=4)
        assert plan.shards == 1
        assert plan.workers == 1

    def test_heavy_arrivals_grow_the_fleet(self):
        quiet = argmin(100.0)
        storm = argmin(20_000.0)
        assert storm.shards > quiet.shards
        assert storm.shards == 6  # saturating demand hits the ceiling

    def test_more_arrivals_never_mean_fewer_shards(self):
        sizes = [argmin(arrivals).shards for arrivals in
                 (0.0, 500.0, 2_000.0, 8_000.0, 20_000.0)]
        assert sizes == sorted(sizes)

    def test_lifecycle_cost_damps_a_blip(self):
        # The same one-window spike: cheap enclaves scale up, an enclave
        # whose build costs more than the window's overload does not.
        spike = 8_000.0
        cheap = argmin(spike, live=2)
        expensive = fleet_argmin(
            demand(spike),
            live_shards=2,
            min_shards=1,
            max_shards=6,
            worker_options=(1, 2, 4),
            batch_options=(1, 2, 4),
            creation_cycles=1e12,
            destruction_cycles=DESTROY,
            t_es=10_000.0,
        )
        assert cheap.shards > 2
        assert expensive.shards <= 2
