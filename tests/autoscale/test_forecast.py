"""Tests for the per-lane EWMA arrival forecaster."""

import pytest

from repro.autoscale.forecast import EwmaForecaster


class TestEwmaForecaster:
    def test_alpha_must_be_in_unit_interval(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="alpha"):
                EwmaForecaster(alpha)
        EwmaForecaster(1.0)  # the boundary is inclusive on the right

    def test_first_observation_seeds_the_level(self):
        # No warm-up bias toward zero: the first sample IS the forecast.
        forecaster = EwmaForecaster(alpha=0.2)
        assert forecaster.observe("total", 400.0) == 400.0
        assert forecaster.forecast("total") == 400.0

    def test_smoothing_follows_the_ewma_recurrence(self):
        forecaster = EwmaForecaster(alpha=0.5)
        forecaster.observe("total", 100.0)
        assert forecaster.observe("total", 200.0) == 150.0
        assert forecaster.observe("total", 0.0) == 75.0

    def test_alpha_one_trusts_only_the_latest_sample(self):
        forecaster = EwmaForecaster(alpha=1.0)
        forecaster.observe("total", 1_000.0)
        forecaster.observe("total", 3.0)
        assert forecaster.forecast("total") == 3.0

    def test_lanes_are_independent(self):
        forecaster = EwmaForecaster(alpha=0.5)
        forecaster.observe("tenant:gold", 90.0)
        forecaster.observe("tenant:bronze", 10.0)
        forecaster.observe("tenant:gold", 30.0)
        assert forecaster.forecast("tenant:gold") == 60.0
        assert forecaster.forecast("tenant:bronze") == 10.0

    def test_unseen_lane_returns_the_default(self):
        forecaster = EwmaForecaster(alpha=0.5)
        assert forecaster.forecast("tenant:new") == 0.0
        assert forecaster.forecast("tenant:new", default=7.0) == 7.0

    def test_lanes_listing_is_sorted(self):
        forecaster = EwmaForecaster(alpha=0.5)
        for lane in ("total", "tenant:bronze", "tenant:gold"):
            forecaster.observe(lane, 1.0)
        assert forecaster.lanes() == ["tenant:bronze", "tenant:gold", "total"]
