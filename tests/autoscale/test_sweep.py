"""Tests for the diurnal sweep's gate predicate and baseline compare.

The expensive end-to-end sweep runs in CI (``repro autoscale sweep``);
these tests pin the pure logic around it: arm construction, the
acceptance predicate, and the committed-baseline drift gate.
"""

import pytest

from repro.autoscale.bench import (
    AUTOSCALE_ARTIFACT,
    P99_TOLERANCE,
    STATIC_GRID,
    compare_sweep_baseline,
    evaluate_sweep,
    load_sweep_baseline,
    sweep_snapshot,
    sweep_specs,
    write_sweep_baseline,
)
from repro.telemetry.schema import SchemaMismatch


def arm(cpr, p99, completed=1_000, shed=0):
    return {
        "completed": completed,
        "shed": shed,
        "p99_us": p99,
        "cycles_per_request": cpr,
    }


GOOD = {
    "autoscale": arm(3_000_000.0, 15.0),
    "static-2x8": arm(10_000_000.0, 15.0),
    "static-4x16": arm(20_000_000.0, 16.0),
}


def result(arms=None, **overrides):
    doc = {
        "meta": {"artifact": AUTOSCALE_ARTIFACT, "schema": 1},
        "scenario": "diurnal-kv",
        "trace_digest": "abc123",
        "arms": dict(arms if arms is not None else GOOD),
        "gate": {"ok": True, "violations": []},
    }
    doc.update(overrides)
    return doc


class TestSweepSpecs:
    def test_one_elastic_arm_plus_the_static_grid(self):
        arms = sweep_specs()
        names = [name for name, _ in arms]
        assert names[0] == "autoscale"
        assert names[1:] == [f"static-{s}x{b}" for s, b in STATIC_GRID]

    def test_only_the_provisioning_policy_differs(self):
        arms = dict(sweep_specs())
        elastic = arms["autoscale"]
        static = arms["static-2x8"]
        assert elastic.serve.autoscale is not None
        assert elastic.serve.budget is None
        assert static.serve.autoscale is None
        assert static.serve.budget == 8
        # Identical trace and load shape: the comparison is pure policy.
        assert elastic.scenario == static.scenario
        assert elastic.seconds == static.seconds
        assert elastic.seed == static.seed


class TestEvaluateSweep:
    def test_a_winning_sweep_passes(self):
        assert evaluate_sweep(dict(GOOD)) == []

    def test_missing_elastic_arm(self):
        assert evaluate_sweep({"static-2x8": arm(1.0, 1.0)}) == [
            "sweep has no 'autoscale' arm"
        ]

    def test_an_empty_elastic_arm_cannot_be_gated(self):
        arms = dict(GOOD)
        arms["autoscale"] = {"cycles_per_request": None, "p99_us": None}
        violations = evaluate_sweep(arms)
        assert violations == ["autoscale arm completed no requests — nothing to gate"]

    def test_cpr_must_beat_every_static_arm(self):
        arms = dict(GOOD)
        arms["autoscale"] = arm(15_000_000.0, 15.0)
        violations = evaluate_sweep(arms)
        # Beats 20M but not 10M: exactly one violation, naming the arm.
        assert len(violations) == 1
        assert "static-2x8" in violations[0]
        assert "cycles/request" in violations[0]

    def test_p99_slack_is_enforced(self):
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_000_000.0, 15.0 * (1 + P99_TOLERANCE) + 0.1)
        violations = evaluate_sweep(arms)
        assert any("p99 worse than static-2x8" in v for v in violations)

    def test_p99_within_slack_is_tolerated(self):
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_000_000.0, 15.0 * (1 + P99_TOLERANCE) - 0.01)
        assert [v for v in evaluate_sweep(arms) if "static-2x8" in v] == []


class TestBaselineRoundTrip:
    def test_snapshot_write_load(self, tmp_path):
        snapshot = sweep_snapshot(result())
        path = write_sweep_baseline(snapshot, str(tmp_path / "b.json"))
        loaded = load_sweep_baseline(path)
        assert loaded == snapshot
        assert compare_sweep_baseline(result(), loaded) == []

    def test_load_rejects_a_wrong_stamp(self, tmp_path):
        snapshot = sweep_snapshot(result())
        snapshot["meta"]["artifact"] = "serve-bench"
        path = write_sweep_baseline(snapshot, str(tmp_path / "b.json"))
        with pytest.raises(SchemaMismatch):
            load_sweep_baseline(path)


class TestCompareSweepBaseline:
    def test_identity_mismatches_are_flagged(self):
        baseline = sweep_snapshot(result())
        drifted = result(scenario="flashcrowd-kv", trace_digest="zzz")
        violations = compare_sweep_baseline(drifted, baseline)
        assert any("scenario mismatch" in v for v in violations)
        assert any("trace_digest mismatch" in v for v in violations)

    def test_a_failing_live_gate_fails_the_compare(self):
        baseline = sweep_snapshot(result())
        failing = result(gate={"ok": False, "violations": ["cycles/request not better"]})
        violations = compare_sweep_baseline(failing, baseline)
        assert any(v.startswith("acceptance gate:") for v in violations)

    def test_arm_set_changes_are_flagged(self):
        baseline = sweep_snapshot(result())
        arms = dict(GOOD)
        arms.pop("static-4x16")
        violations = compare_sweep_baseline(result(arms=arms), baseline)
        assert any("arm set changed" in v for v in violations)

    def test_completed_counts_must_match_exactly(self):
        baseline = sweep_snapshot(result())
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_000_000.0, 15.0, completed=999)
        violations = compare_sweep_baseline(result(arms=arms), baseline)
        assert violations == [
            "autoscale: completed changed: 999 vs baseline 1000"
        ]

    def test_metric_drift_beyond_threshold_is_flagged(self):
        baseline = sweep_snapshot(result())
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_400_000.0, 15.0)  # ~13% CPR drift
        violations = compare_sweep_baseline(result(arms=arms), baseline)
        assert len(violations) == 1
        assert "cycles_per_request drifted 13%" in violations[0]

    def test_drift_within_threshold_passes(self):
        baseline = sweep_snapshot(result())
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_200_000.0, 15.0)  # ~7% drift
        assert compare_sweep_baseline(result(arms=arms), baseline) == []

    def test_threshold_is_adjustable(self):
        baseline = sweep_snapshot(result())
        arms = dict(GOOD)
        arms["autoscale"] = arm(3_200_000.0, 15.0)
        assert compare_sweep_baseline(
            result(arms=arms), baseline, threshold=0.05
        ) != []
