"""Tests for the autoscale control loop on synthetic obs windows.

A real spec-built cluster, a fake window sampler: each test scripts the
per-lane ``submitted`` records a closed window would carry and fires the
controller's hook directly, so the control decisions (spawn, retire,
suppression, admission gating) are pinned without running a load
generator.
"""

import pytest

from repro.api import AutoscaleSpec, ServeSpec
from repro.autoscale.controller import DEFAULT_SERVICE_CYCLES, AutoscaleController
from repro.serve.bench import build_cluster
from repro.sim.instructions import Sleep

#: Wide enough that one window's overload pays for an enclave build.
WINDOW = 20_000_000.0

AUTOSCALE = AutoscaleSpec(
    min_shards=1,
    max_shards=4,
    worker_options=(1, 2),
    batch_options=(1, 2),
)

SPEC = ServeSpec(shards=2, autoscale=AUTOSCALE)


class FakeSampler:
    """Just the two members the controller uses: interval + hook list."""

    def __init__(self, interval=WINDOW):
        self.interval = interval
        self.hooks = []

    def add_on_window(self, hook):
        self.hooks.append(hook)

    def fire(self, index, records):
        for hook in self.hooks:
            hook(index, records, [])


def window(total, **tenants):
    """One closed window's records: a total lane plus tenant lanes."""
    records = [{"lane": "total", "submitted": total}]
    records.extend(
        {"lane": f"tenant:{name}", "submitted": count}
        for name, count in tenants.items()
    )
    return records


def settle(cluster, cycles=None):
    """Advance simulated time so in-flight bring-ups/teardowns finish."""
    if cycles is None:
        cycles = 10 * WINDOW

    def sleeper():
        yield Sleep(cycles)

    kernel = cluster.kernel
    kernel.join(kernel.spawn(sleeper(), name="test-settle"))


@pytest.fixture
def rig():
    with build_cluster(SPEC, telemetry=False) as cluster:
        sampler = FakeSampler()
        controller = AutoscaleController(cluster, AUTOSCALE, sampler).install()
        yield cluster, sampler, controller


class TestWiring:
    def test_needs_a_spec_built_cluster_and_a_sampler(self):
        with build_cluster(SPEC, telemetry=False) as cluster:
            with pytest.raises(ValueError, match="sampler"):
                AutoscaleController(cluster, AUTOSCALE, None)
            cluster.spec = None
            with pytest.raises(ValueError, match="spec-built"):
                AutoscaleController(cluster, AUTOSCALE, FakeSampler())

    def test_install_arms_the_predictive_gate(self, rig):
        cluster, sampler, controller = rig
        assert cluster.router.predictive_gate == controller._admit
        assert sampler.hooks == [controller._on_window]


class TestScaleUp:
    def test_sustained_overload_spawns_to_the_ceiling(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(50_000))
        assert controller.spawns == 2  # 2 live -> the band's max of 4
        assert controller.decisions[-1]["plan_shards"] == 4
        assert controller.decisions[-1]["spawned"] == 2
        settle(cluster)
        live = [
            s.index
            for s in cluster.router.shards
            if s.index not in cluster.router.retired
        ]
        assert sorted(live) == [0, 1, 2, 3]

    def test_spawned_shards_charge_the_lifecycle_ledger(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(50_000))
        spawned = [e for e in cluster.lifecycle if e["shard"] >= 2]
        assert len(spawned) == 2
        assert all(e["creation_cycles"] > 0 for e in spawned)
        assert all(e["retired_at"] is None for e in spawned)

    def test_quarantine_suppresses_the_spawn(self, rig):
        cluster, sampler, controller = rig
        cluster.router.quarantined.add(0)
        sampler.fire(0, window(50_000))
        assert controller.spawns == 0
        assert controller.suppressed_spawns == 1
        assert controller.decisions[-1]["spawned"] == 0
        # The episode over, the next window scales up normally.
        cluster.router.quarantined.discard(0)
        sampler.fire(1, window(50_000))
        assert controller.spawns > 0


class TestScaleDown:
    def test_idle_windows_retire_to_the_floor(self, rig):
        cluster, sampler, controller = rig
        for index in range(8):
            sampler.fire(index, window(0))
        # min_shards is 1, and the newest-index shard goes first.
        assert controller.retires == 1
        assert cluster.router.retired == {1}
        assert controller.decisions[-1]["plan_shards"] == 1
        settle(cluster)
        entry = next(e for e in cluster.lifecycle if e["shard"] == 1)
        assert entry["retired_at"] is not None
        assert entry["destruction_cycles"] > 0

    def test_the_fleet_tracks_a_diurnal_curve(self, rig):
        cluster, sampler, controller = rig
        live = []
        for index, total in enumerate([50_000, 50_000, 0, 0, 0, 0, 0, 0]):
            sampler.fire(index, window(total))
            settle(cluster)
            live.append(controller._live_shards())
        assert max(live) == 4
        assert live[-1] == 1
        assert controller.spawns == 2
        assert controller.retires == 3

    def test_retire_never_strands_the_last_shard(self, rig):
        cluster, sampler, controller = rig
        # Quarantine one of two shards: the other is the sole candidate,
        # and the candidate floor (> 1) refuses to retire it.
        cluster.router.quarantined.add(1)
        sampler.fire(0, window(0))
        assert controller.retires == 0


class TestServiceEstimate:
    def test_spans_refresh_the_service_estimate(self, rig):
        cluster, sampler, controller = rig
        cluster.router.spans.extend(
            [
                {"status": "ok", "t_dequeue": 0.0, "t_result": 30_000.0},
                {"status": "shed", "t_dequeue": None, "t_result": None},
                {"status": "ok", "t_dequeue": 10.0, "t_result": 10.0},
            ]
        )
        sampler.fire(0, window(10))
        # One valid sample seeds the EWMA; shed/zero-width spans are
        # ignored rather than dragging the estimate to zero.
        assert controller._service == 30_000.0
        assert controller.decisions[-1]["service_cycles"] == 30_000.0

    def test_the_prior_holds_until_a_span_lands(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(10))
        assert (
            controller.decisions[-1]["service_cycles"] == DEFAULT_SERVICE_CYCLES
        )


class TestPredictiveGate:
    def test_open_when_the_forecast_fits(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(10, gold=7, bronze=3))
        assert controller._gate_allowance is None
        assert controller.decisions[-1]["gated"] is False
        assert controller._admit("gold") is True

    def test_sheds_tenants_in_forecast_proportion(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(200_000, gold=150_000, bronze=50_000))
        decision = controller.decisions[-1]
        assert decision["gated"] is True
        allowance = controller._gate_allowance
        capacity = decision["capacity_requests"]
        assert allowance["gold"] == pytest.approx(capacity * 0.75)
        assert allowance["bronze"] == pytest.approx(capacity * 0.25)

    def test_admission_stops_at_the_allowance(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(200_000, gold=150_000, bronze=50_000))
        allowance = controller._gate_allowance["gold"]
        admitted = sum(controller._admit("gold") for _ in range(50_000))
        assert admitted == int(allowance) + (allowance != int(allowance))
        # Lanes the forecaster never saw pass through to queue admission.
        assert controller._admit("guest") is True

    def test_without_tenant_lanes_the_anonymous_lane_is_gated(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(200_000))
        assert set(controller._gate_allowance) == {""}

    def test_each_window_rearms_the_gate(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(200_000, gold=200_000))
        while controller._admit("gold"):
            pass
        sampler.fire(1, window(0, gold=0))
        # Forecast halved (alpha 0.5) but still over capacity; the
        # admitted counter must restart from zero.
        if controller._gate_allowance is not None:
            assert controller._admit("gold") is True


class TestReport:
    def test_decisions_and_report_shape(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(50_000))
        settle(cluster)
        sampler.fire(1, window(0))
        report = controller.report()
        assert report["windows"] == 2
        assert report["spawns"] == controller.spawns
        assert report["final_cap"] == cluster.arbiter.cap
        decision = report["decisions"][0]
        for key in (
            "window",
            "t_cycles",
            "submitted",
            "forecast",
            "service_cycles",
            "live_shards",
            "plan_shards",
            "plan_workers",
            "plan_batch",
            "u_cycles",
            "cap",
            "capacity_requests",
            "gated",
            "spawned",
            "retired",
        ):
            assert key in decision, key

    def test_the_arbiter_cap_follows_the_plan(self, rig):
        cluster, sampler, controller = rig
        sampler.fire(0, window(50_000))
        decision = controller.decisions[-1]
        assert cluster.arbiter.cap == decision["plan_workers"] * decision["plan_shards"]
