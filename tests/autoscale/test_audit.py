"""Tests for the ScalingSanityChecker over scripted event streams.

The checker audits the ``autoscale.*`` / ``serve.shard.*`` streams for
the control loop's three promises: no scale-up under quarantine,
retirement is terminal, and every drained request re-surfaces as a
submit or a shed (re-homing conservation).
"""

from repro.regress import InvariantAuditor, ScalingSanityChecker
from repro.telemetry.events import TelemetryEvent


def feed(events):
    auditor = InvariantAuditor(cell="t", checkers=[ScalingSanityChecker()])
    auditor.feed(
        [TelemetryEvent(t, name, dict(fields)) for t, name, fields in events]
    )
    return auditor.finish()


class TestQuarantineSuppression:
    def test_spawn_while_quarantined_is_flagged(self):
        violations = feed(
            [
                (10.0, "serve.shard.quarantine", {"shard": 1}),
                (20.0, "autoscale.spawn", {"shard": 4}),
            ]
        )
        assert len(violations) == 1
        assert violations[0].checker == "scaling-sanity"
        assert "spawned while shard(s) [1] are quarantined" in violations[0].message

    def test_spawn_after_readmission_is_clean(self):
        assert feed(
            [
                (10.0, "serve.shard.quarantine", {"shard": 1}),
                (20.0, "serve.shard.readmit", {"shard": 1}),
                (30.0, "autoscale.spawn", {"shard": 4}),
            ]
        ) == []

    def test_death_also_ends_the_quarantine_episode(self):
        # A dead shard is out of the routing set for good; its capacity
        # is no longer "in flux", so spawning is legitimate again.
        assert feed(
            [
                (10.0, "serve.shard.quarantine", {"shard": 1}),
                (20.0, "serve.shard.dead", {"shard": 1}),
                (30.0, "autoscale.spawn", {"shard": 4}),
            ]
        ) == []


class TestRetirementIsTerminal:
    def test_double_retire_is_flagged(self):
        violations = feed(
            [
                (10.0, "serve.shard.retire", {"shard": 2, "drained_request_ids": ()}),
                (20.0, "serve.shard.retire", {"shard": 2, "drained_request_ids": ()}),
            ]
        )
        assert [v for v in violations if "retired twice" in v.message]

    def test_submit_on_a_retired_shard_is_flagged(self):
        violations = feed(
            [
                (10.0, "serve.shard.retire", {"shard": 2, "drained_request_ids": ()}),
                (20.0, "serve.request.submit", {"shard": 2, "request_id": "r9"}),
            ]
        )
        assert len(violations) == 1
        assert "r9" in violations[0].message
        assert "after its retirement" in violations[0].message

    def test_readding_a_retired_shard_is_flagged(self):
        violations = feed(
            [
                (10.0, "serve.shard.retire", {"shard": 2, "drained_request_ids": ()}),
                (20.0, "serve.shard.add", {"shard": 2}),
            ]
        )
        assert [v for v in violations if "re-added" in v.message]

    def test_adding_a_fresh_shard_is_clean(self):
        assert feed(
            [
                (10.0, "serve.shard.retire", {"shard": 2, "drained_request_ids": ()}),
                (20.0, "serve.shard.add", {"shard": 3}),
            ]
        ) == []


class TestRehomingConservation:
    RETIRE = (
        10.0,
        "serve.shard.retire",
        {"shard": 2, "drained_request_ids": ("a", "b", "c")},
    )

    def test_every_drained_request_resurfacing_is_clean(self):
        assert feed(
            [
                self.RETIRE,
                (20.0, "serve.request.submit", {"shard": 0, "request_id": "a"}),
                (21.0, "serve.request.submit", {"shard": 1, "request_id": "b"}),
                (22.0, "serve.request.shed", {"request_id": "c"}),
            ]
        ) == []

    def test_a_vanished_request_is_flagged_at_finish(self):
        violations = feed(
            [
                self.RETIRE,
                (20.0, "serve.request.submit", {"shard": 0, "request_id": "a"}),
                (22.0, "serve.request.shed", {"request_id": "c"}),
            ]
        )
        assert len(violations) == 1
        assert "never re-homed or shed" in violations[0].message
        assert "'b'" in violations[0].message

    def test_the_report_lists_at_most_five_ids(self):
        many = tuple(f"r{i}" for i in range(8))
        violations = feed(
            [
                (
                    10.0,
                    "serve.shard.retire",
                    {"shard": 2, "drained_request_ids": many},
                )
            ]
        )
        assert len(violations) == 1
        assert "8 drained request(s)" in violations[0].message
        assert violations[0].message.endswith("…")

    def test_runs_that_never_scale_are_vacuously_green(self):
        assert feed(
            [
                (10.0, "serve.request.submit", {"shard": 0, "request_id": "a"}),
                (20.0, "serve.request.complete", {"request_id": "a"}),
            ]
        ) == []
