"""Tests for the report formatting helpers."""

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["config", "latency"],
            [["no_sl", 1.234567], ["zc", 0.9]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "config" in lines[1]
        assert "1.235" in text  # default 3-digit precision
        assert "0.900" in text

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in text

    def test_integers_not_float_formatted(self):
        text = format_table(["n"], [[42]])
        assert "42" in text
        assert "42.000" not in text

    def test_column_width_covers_longest_cell(self):
        text = format_table(["a"], [["very-long-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-cell-content")


class TestToCsv:
    def test_basic_csv(self):
        from repro.analysis import to_csv

        csv = to_csv(["a", "b"], [[1, 2.5], ["x", "y"]])
        assert csv == "a,b\n1,2.5\nx,y\n"

    def test_quoting(self):
        from repro.analysis import to_csv

        csv = to_csv(["v"], [['he said "hi", twice']])
        assert '"he said ""hi"", twice"' in csv

    def test_row_width_mismatch_rejected(self):
        import pytest

        from repro.analysis import to_csv

        with pytest.raises(ValueError):
            to_csv(["a", "b"], [[1]])

    def test_float_precision_preserved(self):
        from repro.analysis import to_csv

        csv = to_csv(["x"], [[0.1234567890123]])
        assert "0.1234567890123" in csv


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series(
            "fig", [(1, 2.0), (2, 4.0)], x_label="workers", y_label="runtime"
        )
        assert text.splitlines()[0] == "fig"
        assert "workers" in text
        assert "4.000" in text
