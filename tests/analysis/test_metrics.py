"""Tests for the measurement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import LatencyRecorder, summarize
from repro.analysis.metrics import PeriodResult


class TestLatencyRecorder:
    def test_mean(self):
        recorder = LatencyRecorder()
        for v in (10, 20, 30):
            recorder.record(v)
        assert recorder.mean() == pytest.approx(20)
        assert recorder.count == 3

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.percentile(50) == 50
        assert recorder.percentile(99) == 99
        assert recorder.percentile(100) == 100

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.percentile(99) == 0.0
        assert recorder.max() == 0.0

    def test_invalid_inputs(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    @given(values=st.lists(st.floats(min_value=0, max_value=1e9), min_size=1))
    def test_percentile_bounds_property(self, values):
        recorder = LatencyRecorder()
        for v in values:
            recorder.record(v)
        assert min(values) <= recorder.percentile(50) <= max(values)
        assert recorder.percentile(100) == max(values)

    def test_summary(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99
        assert summary["max"] == 100

    def test_summary_empty(self):
        summary = LatencyRecorder().summary()
        assert summary["count"] == 0.0
        assert summary["p99"] == 0.0


class TestPeriodResult:
    def test_zero_duration_is_zero_throughput(self):
        p = PeriodResult(0, 10, 0, 0)
        assert p.throughput_ops_per_s(1e9) == 0.0
        assert p.sustained_ops_per_s(1e9, 0) == 0.0


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == {"mean": 2.0, "min": 1.0, "max": 3.0}

    def test_empty(self):
        assert summarize([]) == {"mean": 0.0, "min": 0.0, "max": 0.0}
