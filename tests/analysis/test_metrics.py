"""Tests for the measurement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import LatencyRecorder, summarize
from repro.analysis.metrics import PeriodResult


class TestLatencyRecorder:
    def test_mean(self):
        recorder = LatencyRecorder()
        for v in (10, 20, 30):
            recorder.record(v)
        assert recorder.mean() == pytest.approx(20)
        assert recorder.count == 3

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.percentile(50) == pytest.approx(50.5)
        assert recorder.percentile(99) == pytest.approx(99.01)
        assert recorder.percentile(100) == 100

    def test_percentile_interpolates_below_max_on_small_samples(self):
        # The old nearest-rank rule clamped p99 of any <100-sample set to
        # the max; interpolation keeps the estimate inside the tail.
        recorder = LatencyRecorder()
        recorder.record_many([float(v) for v in range(1, 11)])
        assert recorder.percentile(99) == pytest.approx(9.91)
        assert recorder.percentile(99) < recorder.max()

    def test_confidence_floor(self):
        recorder = LatencyRecorder()
        recorder.record_many([1.0] * 99)
        assert LatencyRecorder.sample_floor(99) == 100
        assert LatencyRecorder.sample_floor(99.9) == 1000
        assert not recorder.confident(99)
        notes = recorder.diagnostics()
        assert len(notes) == 2 and "99 sample(s)" in notes[0]
        recorder.record(1.0)
        assert recorder.confident(99)
        assert recorder.diagnostics() == [
            "p99.9 read from 100 sample(s); needs >= 1000 for a confident "
            "tail estimate"
        ]
        assert LatencyRecorder().diagnostics() == []

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.percentile(99) == 0.0
        assert recorder.max() == 0.0

    def test_invalid_inputs(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    @given(values=st.lists(st.floats(min_value=0, max_value=1e9), min_size=1))
    def test_percentile_bounds_property(self, values):
        recorder = LatencyRecorder()
        for v in values:
            recorder.record(v)
        assert min(values) <= recorder.percentile(50) <= max(values)
        assert recorder.percentile(100) == max(values)

    def test_summary(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["p999"] == pytest.approx(99.901)
        assert summary["max"] == 100

    def test_summary_empty(self):
        summary = LatencyRecorder().summary()
        assert summary["count"] == 0.0
        assert summary["p99"] == 0.0


class TestPeriodResult:
    def test_zero_duration_is_zero_throughput(self):
        p = PeriodResult(0, 10, 0, 0)
        assert p.throughput_ops_per_s(1e9) == 0.0
        assert p.sustained_ops_per_s(1e9, 0) == 0.0


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == {"mean": 2.0, "min": 1.0, "max": 3.0}

    def test_empty(self):
        assert summarize([]) == {"mean": 0.0, "min": 0.0, "max": 0.0}
