"""Tests for the preallocated untrusted memory pools."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import MemoryPool


class TestMemoryPool:
    def test_bump_allocation(self):
        pool = MemoryPool(100)
        assert pool.try_alloc(40)
        assert pool.try_alloc(60)
        assert pool.used_bytes == 100

    def test_full_pool_rejects(self):
        pool = MemoryPool(100)
        assert pool.try_alloc(80)
        assert not pool.try_alloc(30)
        assert pool.used_bytes == 80

    def test_reset_reclaims_everything(self):
        pool = MemoryPool(100)
        pool.try_alloc(100)
        pool.reset()
        assert pool.used_bytes == 0
        assert pool.reallocs == 1
        assert pool.try_alloc(100)

    def test_oversized_request_admitted_into_empty_pool(self):
        pool = MemoryPool(100)
        assert pool.try_alloc(500)
        assert pool.used_bytes == 100  # pool generation fully consumed
        assert not pool.try_alloc(1)

    def test_zero_byte_alloc(self):
        pool = MemoryPool(10)
        assert pool.try_alloc(0)
        assert pool.used_bytes == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(10).try_alloc(-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(0)

    def test_fill_fraction(self):
        pool = MemoryPool(200)
        pool.try_alloc(50)
        assert pool.fill_fraction == pytest.approx(0.25)


@given(sizes=st.lists(st.integers(min_value=0, max_value=64), max_size=200))
def test_pool_invariants_under_any_sequence(sizes):
    """used_bytes never exceeds capacity; reallocs only grow; every
    allocation eventually succeeds after at most one reset."""
    pool = MemoryPool(256)
    for size in sizes:
        if not pool.try_alloc(size):
            pool.reset()
            assert pool.try_alloc(size)
        assert 0 <= pool.used_bytes <= pool.capacity_bytes
