"""Tests for the wasted-cycle-minimising scheduler."""

import pytest

from repro.core import ZcConfig, wasted_cycles
from repro.core.backend import ZcSwitchlessBackend
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, Sleep


class TestWastedCyclesModel:
    def test_formula_matches_paper(self):
        # U = F * T_es + M * T
        assert wasted_cycles(10, 13_500, 2, 1_000_000) == 10 * 13_500 + 2_000_000

    def test_zero_everything(self):
        assert wasted_cycles(0, 13_500, 0, 0) == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            wasted_cycles(-1, 13_500, 0, 0)
        with pytest.raises(ValueError):
            wasted_cycles(0, 13_500, -1, 0)

    def test_worker_worthwhile_only_above_fallback_rate(self):
        """A worker pays off only when the fallbacks it absorbs would waste
        more than one dedicated CPU: F > window/T_es fallbacks."""
        window = 380_000.0  # one micro-quantum at 3.8 GHz
        t_es = 13_500.0
        breakeven = window / t_es  # ~28 calls
        below = wasted_cycles(int(breakeven) - 5, t_es, 0, window)
        above = wasted_cycles(0, t_es, 1, window)
        assert below < above  # too few fallbacks: 0 workers wins
        busy = wasted_cycles(int(breakeven) * 3, t_es, 0, window)
        assert busy > above  # heavy fallback load: 1 worker wins


def build_system(config, spec=None):
    kernel = Kernel(spec or MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = ZcSwitchlessBackend(config)
    enclave.set_backend(backend)
    return kernel, urts, enclave, backend


def busy_caller(kernel, enclave, stop_at_cycles, enclave_work=2_000.0):
    """An app thread issuing short ocalls back-to-back until a deadline."""

    def program():
        while kernel.now < stop_at_cycles:
            yield Compute(enclave_work, tag="app-work")
            yield from enclave.ocall("f")

    return program()


class TestSchedulerAdaptation:
    # A shorter quantum keeps these integration tests fast; the ratio
    # quantum/micro-quantum stays the paper's 100x.
    CONFIG = ZcConfig(quantum_seconds=0.002, enable_scheduler=True)

    def test_idle_application_converges_to_zero_workers(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)
        horizon = kernel.cycles(0.02)
        kernel.run(until_time=horizon)
        assert backend.scheduler is not None
        decisions = [m for _, _, m in backend.scheduler.decisions]
        assert decisions, "scheduler never decided"
        # With no ocall traffic, every F_i is 0 and i=0 minimises U.
        assert all(m == 0 for m in decisions)

    def test_busy_callers_get_workers(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)

        def handler():
            yield Compute(800, tag="host-f")
            return None

        urts.register("f", handler)
        horizon = kernel.cycles(0.03)
        apps = [
            kernel.spawn(busy_caller(kernel, enclave, horizon), name=f"app{i}")
            for i in range(2)
        ]
        kernel.join(*apps)
        decisions = [m for _, _, m in backend.scheduler.decisions]
        assert decisions
        # Two hot callers: the steady-state decision is >= 1 worker (the
        # paper reports 2 workers for 84.4% of its two-thread benchmark).
        steady = decisions[1:]
        assert sum(m >= 1 for m in steady) > len(steady) * 0.8
        # And most calls executed switchlessly.
        assert backend.stats.switchless_fraction() > 0.8

    def test_paper_formula_policy_is_worker_averse(self):
        """Ablation: the verbatim U_i = F_i*T_es + i*u*Q formula prices a
        worker at a full micro-quantum, which two callers' fallbacks can
        rarely outweigh — the strict-formula scheduler therefore converges
        to ~0 workers where IDLE_WASTE keeps 2."""
        from repro.core import SchedulerPolicy

        config = ZcConfig(
            quantum_seconds=0.002,
            enable_scheduler=True,
            policy=SchedulerPolicy.PAPER_FORMULA,
        )
        kernel, urts, enclave, backend = build_system(config)

        def handler():
            yield Compute(800, tag="host-f")
            return None

        urts.register("f", handler)
        horizon = kernel.cycles(0.03)
        apps = [
            kernel.spawn(busy_caller(kernel, enclave, horizon), name=f"app{i}")
            for i in range(2)
        ]
        kernel.join(*apps)
        decisions = [m for _, _, m in backend.scheduler.decisions]
        assert decisions
        steady = decisions[1:]
        assert sum(m == 0 for m in steady) > len(steady) / 2

    def test_workers_released_when_load_stops(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)

        def handler():
            yield Compute(800, tag="host-f")
            return None

        urts.register("f", handler)
        burst_end = kernel.cycles(0.015)
        apps = [
            kernel.spawn(busy_caller(kernel, enclave, burst_end), name=f"app{i}")
            for i in range(2)
        ]
        kernel.join(*apps)
        kernel.run(until_time=kernel.now + kernel.cycles(0.02))
        decisions = backend.scheduler.decisions
        # Final decisions (after the burst) must be back at 0 workers.
        assert decisions[-1][2] == 0

    def test_decisions_record_probe_utilities(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)
        kernel.run(until_time=kernel.cycles(0.01))
        _, utilities, chosen = backend.scheduler.decisions[0]
        # N/2 + 1 probes on a 8-logical-CPU machine: i in 0..4.
        assert len(utilities) == 5
        assert utilities[chosen] == min(utilities)

    def test_histogram_tracks_lifetime_fractions(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)
        horizon = kernel.cycles(0.02)
        kernel.run(until_time=horizon)
        histogram = backend.stats.worker_count_histogram(kernel.now)
        assert histogram
        assert sum(histogram.values()) == pytest.approx(1.0)
        # Idle run: the dominant state is 0 workers.
        assert histogram.get(0, 0.0) > 0.5

    def test_scheduler_cpu_cost_is_negligible(self):
        kernel, urts, enclave, backend = build_system(self.CONFIG)
        kernel.run(until_time=kernel.cycles(0.02))
        sched_thread = backend.scheduler_thread
        assert sched_thread is not None
        assert sched_thread.cpu_cycles < 0.01 * kernel.now

    def test_phase_structure_matches_fig5(self):
        """Decisions land one scheduler period apart: the initial quantum,
        then (N/2+1 micro-quanta + decision + quantum) per cycle."""
        kernel, urts, enclave, backend = build_system(self.CONFIG)
        kernel.run(until_time=kernel.cycles(0.05))
        decisions = backend.scheduler.decisions
        assert len(decisions) >= 3
        times = [t for t, _, _ in decisions]
        quantum = self.CONFIG.quantum_cycles(kernel.spec)
        micro = self.CONFIG.micro_quantum_cycles(kernel.spec)
        n_probes = kernel.spec.n_logical // 2 + 1
        expected_first = quantum + n_probes * micro + self.CONFIG.decision_cycles
        assert times[0] == pytest.approx(expected_first, rel=0.01)
        period = quantum + n_probes * micro + self.CONFIG.decision_cycles
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(period, rel=0.01)

    def test_many_callers_one_worker_is_consistent(self):
        """Reservation atomicity under pressure: every call is exactly one
        of switchless or fallback, and the worker executed exactly the
        switchless ones."""
        config = ZcConfig(enable_scheduler=False, max_workers=1, initial_workers=1)
        kernel, urts, enclave, backend = build_system(config)

        def handler():
            yield Compute(900, tag="host-f")
            return None

        urts.register("f", handler)

        def caller():
            for _ in range(40):
                yield from enclave.ocall("f")

        threads = [kernel.spawn(caller(), name=f"c{i}") for i in range(6)]
        kernel.join(*threads)
        stats = backend.stats
        assert stats.switchless_count + stats.fallback_count == 240
        assert backend.workers[0].tasks_executed == stats.switchless_count
        assert enclave.stats.total_calls == 240
