"""Integration tests for the ZC-SWITCHLESS backend."""

import pytest

from repro.core import ZcConfig
from repro.core.backend import ZcSwitchlessBackend
from repro.sgx import Enclave, UntrustedRuntime, VanillaMemcpy, ZcMemcpy
from repro.sim import Compute, Kernel, MachineSpec


def build(config=None, n_cores=4, smt=2):
    kernel = Kernel(MachineSpec(n_cores=n_cores, smt=smt))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    backend = ZcSwitchlessBackend(config or ZcConfig(enable_scheduler=False))
    enclave.set_backend(backend)
    return kernel, urts, enclave, backend


def work_handler(duration):
    def handler(value=None):
        yield Compute(duration, tag="host-work")
        return value

    return handler


class TestZcCallPath:
    def test_any_ocall_runs_switchless_without_selection(self):
        """No static selection: a never-before-seen ocall name goes
        switchless if a worker is idle."""
        kernel, urts, enclave, backend = build()
        urts.register("anything", work_handler(1000))

        def app():
            result = yield from enclave.ocall("anything", "x")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "x"
        assert backend.stats.switchless_count == 1
        assert backend.stats.fallback_count == 0

    def test_switchless_latency_well_below_regular(self):
        kernel, urts, enclave, backend = build()
        urts.register("f", work_handler(1000))

        def app():
            yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        site = enclave.stats.by_name["f"]
        assert site.mean_latency_cycles < 4000  # vs ~14,800 regular

    def test_no_idle_worker_falls_back_immediately(self):
        """§IV-C: zero busy-wait on fallback — the caller's spin cycles
        stay bounded by the in-flight switchless waits, never by an
        rbf-style retry loop."""
        config = ZcConfig(enable_scheduler=False, max_workers=1, initial_workers=1)
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(200_000))

        def app():
            yield from enclave.ocall("f")

        a = kernel.spawn(app())
        b = kernel.spawn(app())
        kernel.join(a, b)
        assert backend.stats.fallback_count == 1
        assert backend.stats.switchless_count == 1
        # The falling-back caller did not spin at all: it went straight to
        # the regular path (total ~= transition + work).
        fallback_caller = min((a, b), key=lambda t: t.cycles_by["spin"])
        assert fallback_caller.cycles_by["spin"] == 0

    def test_all_workers_paused_means_all_fallback(self):
        config = ZcConfig(enable_scheduler=False, initial_workers=0)
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(100))

        def app():
            for _ in range(5):
                yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        assert backend.stats.fallback_count == 5
        assert backend.stats.switchless_count == 0

    def test_installs_zc_memcpy_by_default(self):
        kernel, urts, enclave, backend = build()
        assert isinstance(enclave.memcpy_model, ZcMemcpy)

    def test_can_keep_vanilla_memcpy_for_ablation(self):
        config = ZcConfig(enable_scheduler=False, use_zc_memcpy=False)
        kernel, urts, enclave, backend = build(config)
        assert isinstance(enclave.memcpy_model, VanillaMemcpy)

    def test_worker_cap_defaults_to_half_logical_cpus(self):
        kernel, urts, enclave, backend = build(n_cores=4, smt=2)
        assert len(backend.workers) == 4  # 8 logical / 2

    def test_concurrent_callers_use_distinct_workers(self):
        config = ZcConfig(enable_scheduler=False)
        kernel, urts, enclave, backend = build(config, n_cores=8, smt=1)
        urts.register("f", work_handler(100_000))

        def app():
            yield from enclave.ocall("f")

        threads = [kernel.spawn(app()) for _ in range(3)]
        kernel.join(*threads)
        assert backend.stats.switchless_count == 3
        executed = [w.tasks_executed for w in backend.workers]
        assert sum(executed) == 3
        assert max(executed) == 1  # all three ran in parallel

    def test_stop_terminates_workers_and_scheduler(self):
        config = ZcConfig(enable_scheduler=True)
        kernel, urts, enclave, backend = build(config)
        kernel.run(until_time=1_000_000)
        backend.stop()
        kernel.run()
        assert all(t.done for t in backend.worker_threads)
        assert backend.scheduler_thread is not None
        assert backend.scheduler_thread.done


class TestMemoryPoolIntegration:
    def test_pool_exhaustion_triggers_realloc_ocall(self):
        config = ZcConfig(
            enable_scheduler=False,
            pool_capacity_bytes=256,
            request_header_bytes=64,
            max_workers=1,
            initial_workers=1,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(100))

        def app():
            for _ in range(10):  # 10 * 64B headers > 256B pool
                yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        assert backend.stats.pool_reallocs >= 2
        # The realloc shows up as regular ocalls (the Fig. 8 spikes).
        assert enclave.stats.by_name["zc_pool_realloc"].regular >= 2

    def test_oversized_request_still_served(self):
        """A request frame larger than the whole pool gets a dedicated
        pool generation (realloc, then admit) instead of failing."""
        config = ZcConfig(
            enable_scheduler=False,
            pool_capacity_bytes=1024,
            max_workers=1,
            initial_workers=1,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("big", work_handler(100))

        def app():
            # 64 kB in_bytes >> the 1 kB pool, twice in a row.
            yield from enclave.ocall("big", in_bytes=64 * 1024)
            result = yield from enclave.ocall("big", "ok", in_bytes=64 * 1024)
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "ok"
        assert backend.stats.switchless_count == 2
        assert backend.stats.pool_reallocs >= 1

    def test_realloc_spikes_latency(self):
        config = ZcConfig(
            enable_scheduler=False,
            pool_capacity_bytes=256,
            request_header_bytes=64,
            max_workers=1,
            initial_workers=1,
        )
        kernel, urts, enclave, backend = build(config)
        urts.register("f", work_handler(100))
        latencies = []

        def app():
            for _ in range(8):
                t0 = kernel.now
                yield from enclave.ocall("f")
                latencies.append(kernel.now - t0)

        kernel.join(kernel.spawn(app()))
        # Calls that triggered a realloc cost a full extra transition.
        assert max(latencies) > min(latencies) + enclave.cost.t_es


class TestSetActiveWorkers:
    def test_scaling_down_pauses_idle_workers(self):
        config = ZcConfig(enable_scheduler=False)
        kernel, urts, enclave, backend = build(config)
        kernel.run(until_time=100_000)
        backend.set_active_workers(1)
        kernel.run(until_time=kernel.now + 1_000_000)
        paused = [w for w in backend.workers if w.is_paused]
        assert len(paused) == len(backend.workers) - 1

    def test_scaling_up_wakes_paused_workers(self):
        config = ZcConfig(enable_scheduler=False, initial_workers=0)
        kernel, urts, enclave, backend = build(config)
        kernel.run(until_time=1_000_000)
        assert all(w.is_paused for w in backend.workers)
        backend.set_active_workers(2)
        kernel.run(until_time=kernel.now + 1_000_000)
        active = [w for w in backend.workers if w.active]
        assert len(active) == 2

    def test_timeline_recorded(self):
        config = ZcConfig(enable_scheduler=False)
        kernel, urts, enclave, backend = build(config)
        backend.set_active_workers(2)
        backend.set_active_workers(0)
        counts = [count for _, count in backend.stats.worker_count_timeline]
        assert counts == [4, 2, 0]
