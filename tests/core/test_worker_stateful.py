"""Stateful property test of the ZC worker state machine (Fig. 6).

Hypothesis drives random legal sequences of caller/scheduler operations
against one worker and checks the machine's invariants after every step:
the status stays in the legal set, completed work is counted exactly
once, pause only happens when unreserved, and the worker always comes
back.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import WorkerStatus, ZcConfig, ZcWorker
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.enclave import OcallRequest
from repro.sim import Compute, Kernel, MachineSpec

SETTLE_CYCLES = 200_000.0


class WorkerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = Kernel(MachineSpec(n_cores=4, smt=1))
        urts = UntrustedRuntime()
        self.enclave = Enclave(self.kernel, urts)

        def echo(value):
            yield Compute(1_000, tag="host-echo")
            return value

        urts.register("echo", echo)
        self.worker = ZcWorker(self.kernel, 0, ZcConfig(enable_scheduler=False))
        self.thread = self.kernel.spawn(
            self.worker.run(self.enclave), name="w", kind="zc-worker", daemon=True
        )
        self.reserved_by_us = False
        self.submitted = 0
        self.completed = 0
        self.next_token = 0

    def settle(self):
        """Give the worker simulated time to observe state changes."""
        self.kernel.run(until_time=self.kernel.now + SETTLE_CYCLES)

    # ------------------------------------------------------------------
    # Caller-side rules
    # ------------------------------------------------------------------
    @precondition(lambda self: not self.reserved_by_us)
    @rule()
    def reserve_if_unused(self):
        self.settle()
        if self.worker.status is WorkerStatus.UNUSED and not self.worker.pause_requested:
            assert self.worker.try_reserve()
            self.reserved_by_us = True
        elif self.worker.status is not WorkerStatus.UNUSED:
            # Reservation must fail in any non-UNUSED state (and must
            # not have side effects).
            assert not self.worker.try_reserve()

    @precondition(lambda self: self.reserved_by_us)
    @rule()
    def submit_and_complete(self):
        token = self.next_token
        self.next_token += 1
        self.worker.request = OcallRequest(name="echo", args=(token,))
        self.worker.set_status(WorkerStatus.PROCESSING)
        self.submitted += 1

        done = [False]

        def waiter():
            while self.worker.status is not WorkerStatus.WAITING:
                from repro.sim import Sleep

                yield Sleep(1_000)
            done[0] = True
            return self.worker.result

        thread = self.kernel.spawn(waiter(), name="waiter")
        self.kernel.join(thread)
        assert done[0]
        assert thread.result == token  # the right request's result
        self.worker.request = None
        self.worker.set_status(WorkerStatus.UNUSED)
        self.completed += 1
        self.reserved_by_us = False

    # ------------------------------------------------------------------
    # Scheduler-side rules
    # ------------------------------------------------------------------
    @rule()
    def ask_pause(self):
        self.worker.request_pause()

    @rule()
    def ask_unpause(self):
        self.worker.request_unpause()

    @rule()
    def let_time_pass(self):
        self.settle()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def status_is_legal(self):
        assert self.worker.status in (
            WorkerStatus.UNUSED,
            WorkerStatus.RESERVED,
            WorkerStatus.PROCESSING,
            WorkerStatus.WAITING,
            WorkerStatus.PAUSED,
        )

    @invariant()
    def work_is_counted_exactly_once(self):
        assert self.worker.tasks_executed == self.completed == self.submitted

    @invariant()
    def paused_only_when_unreserved(self):
        if self.worker.status is WorkerStatus.PAUSED:
            assert not self.reserved_by_us

    @invariant()
    def worker_thread_alive(self):
        assert not self.thread.done

    def teardown(self):
        if self.reserved_by_us:
            # Return the reservation so the worker can observe the exit.
            self.worker.set_status(WorkerStatus.UNUSED)
            self.reserved_by_us = False
        self.worker.request_exit()
        self.kernel.run()
        assert self.worker.status is WorkerStatus.EXIT
        assert self.thread.done


WorkerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestWorkerStateMachine = WorkerMachine.TestCase
