"""Tests for the TrustZone profile (§IV-D: ZC beyond SGX)."""

import pytest

from repro.core import ZcConfig
from repro.core.backend import ZcSwitchlessBackend
from repro.core.trustzone import TRUSTZONE_WORLD_SWITCH_CYCLES, trustzone_cost_model
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def build(cost):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts, cost=cost)
    return kernel, urts, enclave


class TestTrustZoneCostModel:
    def test_world_switch_an_order_cheaper_than_sgx(self):
        tz = trustzone_cost_model()
        assert tz.t_es == pytest.approx(TRUSTZONE_WORLD_SWITCH_CYCLES)
        from repro.sgx import SgxCostModel

        assert SgxCostModel().t_es / tz.t_es > 8

    def test_overrides(self):
        tz = trustzone_cost_model(pause_cycles=100.0)
        assert tz.pause_cycles == 100.0

    def test_regular_call_pays_world_switch(self):
        kernel, urts, enclave = build(trustzone_cost_model())

        def handler():
            yield Compute(500)
            return None

        urts.register("svc", handler)

        def app():
            yield from enclave.ocall("svc")

        kernel.join(kernel.spawn(app()))
        expected = enclave.cost.ocall_bookkeeping_cycles + TRUSTZONE_WORLD_SWITCH_CYCLES + 500
        assert kernel.now == pytest.approx(expected)


class TestZcOnTrustZone:
    def test_zc_backend_is_tee_agnostic(self):
        """The full ZC runtime (workers + scheduler) drives world-switchless
        calls unchanged on the TrustZone cost model."""
        kernel, urts, enclave = build(trustzone_cost_model())
        backend = ZcSwitchlessBackend(ZcConfig(enable_scheduler=False))
        enclave.set_backend(backend)

        def handler():
            yield Compute(200)
            return "secure"

        urts.register("svc", handler)

        def app():
            result = yield from enclave.ocall("svc")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "secure"
        assert backend.stats.switchless_count == 1

    def test_cheaper_transitions_shrink_the_worker_pool(self):
        """With a ~10x cheaper transition, fallbacks waste far less, so
        the waste-minimising scheduler keeps fewer workers than on SGX
        for the same workload — the quantitative §IV-D story."""

        def mean_workers(cost):
            kernel, urts, enclave = build(cost)
            backend = ZcSwitchlessBackend(ZcConfig(quantum_seconds=0.002))
            enclave.set_backend(backend)

            def handler():
                yield Compute(600)
                return None

            urts.register("svc", handler)
            horizon = kernel.cycles(0.03)

            def app():
                while kernel.now < horizon:
                    yield Compute(6_000, tag="app")
                    yield from enclave.ocall("svc")

            threads = [kernel.spawn(app(), name=f"a{i}") for i in range(2)]
            kernel.join(*threads)
            return backend.stats.mean_worker_count(kernel.now)

        from repro.sgx import SgxCostModel

        sgx_workers = mean_workers(SgxCostModel())
        tz_workers = mean_workers(trustzone_cost_model())
        assert tz_workers <= sgx_workers
