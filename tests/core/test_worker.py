"""Tests for the ZC worker state machine (paper Fig. 6)."""

import pytest

from repro.core import WorkerStatus, ZcConfig, ZcWorker
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.enclave import OcallRequest
from repro.sim import Compute, Kernel, MachineSpec, Sleep


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    worker = ZcWorker(kernel, 0, ZcConfig())
    thread = kernel.spawn(worker.run(enclave), name="zcw", kind="zc-worker", daemon=True)
    return kernel, urts, enclave, worker, thread


def handler(value):
    yield Compute(1000, tag="host")
    return value * 2


class TestStateMachine:
    def test_initial_state_is_unused(self):
        _, _, _, worker, _ = build()
        assert worker.status is WorkerStatus.UNUSED
        assert worker.active

    def test_reserve_succeeds_only_when_unused(self):
        _, _, _, worker, _ = build()
        assert worker.try_reserve()
        assert worker.status is WorkerStatus.RESERVED
        assert not worker.try_reserve()

    def test_full_request_cycle(self):
        kernel, urts, enclave, worker, _ = build()
        urts.register("f", handler)

        def caller():
            assert worker.try_reserve()
            worker.request = OcallRequest(name="f", args=(21,))
            worker.set_status(WorkerStatus.PROCESSING)
            while worker.status is not WorkerStatus.WAITING:
                yield Sleep(100)
            result = worker.result
            worker.set_status(WorkerStatus.UNUSED)
            return result

        t = kernel.spawn(caller())
        kernel.join(t)
        assert t.result == 42
        assert worker.status is WorkerStatus.UNUSED
        assert worker.tasks_executed == 1

    def test_pause_waits_until_unreserved(self):
        """§IV-A: the worker pauses only once no caller has it reserved."""
        kernel, urts, enclave, worker, thread = build()
        urts.register("f", handler)
        worker.try_reserve()
        worker.request_pause()
        kernel.run(until_time=1_000_000)
        assert worker.status is WorkerStatus.RESERVED  # still held

        def caller():
            worker.request = OcallRequest(name="f", args=(1,))
            worker.set_status(WorkerStatus.PROCESSING)
            while worker.status is not WorkerStatus.WAITING:
                yield Sleep(100)
            worker.set_status(WorkerStatus.UNUSED)

        kernel.join(kernel.spawn(caller()))
        kernel.run(until_time=kernel.now + 1_000_000)
        assert worker.status is WorkerStatus.PAUSED
        assert worker.pauses == 1

    def test_paused_worker_consumes_no_cpu(self):
        kernel, _, _, worker, thread = build()
        worker.request_pause()
        kernel.run(until_time=1_000_000)
        assert worker.is_paused
        busy_at_pause = thread.cpu_cycles
        kernel.run(until_time=50_000_000)
        assert thread.cpu_cycles == busy_at_pause

    def test_active_idle_worker_burns_cpu(self):
        """An active worker busy-waits: the M*T cost term is real."""
        kernel, _, _, worker, thread = build()
        kernel.run(until_time=1_000_000)
        assert thread.cycles_by["spin"] == pytest.approx(1_000_000, rel=0.01)

    def test_unpause_signal_reactivates(self):
        kernel, _, _, worker, thread = build()
        worker.request_pause()
        kernel.run(until_time=1_000_000)
        assert worker.is_paused
        worker.request_unpause()
        kernel.run(until_time=2_000_000)
        assert worker.status is WorkerStatus.UNUSED
        assert not worker.try_reserve() or True  # reservable again
        assert worker.active

    def test_exit_from_unused(self):
        kernel, _, _, worker, thread = build()
        kernel.run(until_time=1000)
        worker.request_exit()
        kernel.run()
        assert worker.status is WorkerStatus.EXIT
        assert thread.done

    def test_exit_from_paused(self):
        kernel, _, _, worker, thread = build()
        worker.request_pause()
        kernel.run(until_time=1_000_000)
        assert worker.is_paused
        worker.request_exit()
        kernel.run()
        assert worker.status is WorkerStatus.EXIT
        assert thread.done
