"""Tests for ZC runtime statistics."""

import pytest

from repro.core import ZcStats


class TestZcStats:
    def test_counters(self):
        stats = ZcStats()
        stats.record_switchless()
        stats.record_switchless()
        stats.record_fallback()
        stats.record_pool_realloc()
        assert stats.total_calls == 3
        assert stats.switchless_fraction() == pytest.approx(2 / 3)
        assert stats.pool_reallocs == 1

    def test_empty_fraction(self):
        assert ZcStats().switchless_fraction() == 0.0

    def test_histogram_over_timeline(self):
        stats = ZcStats()
        stats.record_worker_count(0.0, 4)
        stats.record_worker_count(100.0, 2)
        stats.record_worker_count(300.0, 0)
        histogram = stats.worker_count_histogram(400.0)
        assert histogram[4] == pytest.approx(0.25)
        assert histogram[2] == pytest.approx(0.50)
        assert histogram[0] == pytest.approx(0.25)
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_histogram_merges_repeated_counts(self):
        stats = ZcStats()
        stats.record_worker_count(0.0, 1)
        stats.record_worker_count(50.0, 2)
        stats.record_worker_count(100.0, 1)
        histogram = stats.worker_count_histogram(200.0)
        assert histogram[1] == pytest.approx(0.75)
        assert histogram[2] == pytest.approx(0.25)

    def test_empty_timeline(self):
        assert ZcStats().worker_count_histogram(100.0) == {}
        assert ZcStats().mean_worker_count(100.0) == 0.0

    def test_mean_worker_count(self):
        stats = ZcStats()
        stats.record_worker_count(0.0, 4)
        stats.record_worker_count(100.0, 0)
        assert stats.mean_worker_count(200.0) == pytest.approx(2.0)

    def test_histogram_before_any_elapsed_time(self):
        stats = ZcStats()
        stats.record_worker_count(100.0, 3)
        assert stats.worker_count_histogram(100.0) == {}

    def test_timeline_coalesces_repeated_counts(self):
        # The scheduler re-records its decision every quantum even when
        # the worker count is unchanged; only transitions are kept, with
        # the earliest timestamp winning.
        stats = ZcStats()
        stats.record_worker_count(0.0, 2)
        stats.record_worker_count(100.0, 2)
        stats.record_worker_count(200.0, 3)
        stats.record_worker_count(300.0, 3)
        stats.record_worker_count(400.0, 2)
        assert stats.worker_count_timeline == [(0.0, 2), (200.0, 3), (400.0, 2)]
        # Occupancy math is unaffected by the dropped duplicates.
        assert stats.mean_worker_count(500.0) == pytest.approx(
            (200 * 2 + 200 * 3 + 100 * 2) / 500
        )
