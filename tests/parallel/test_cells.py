"""Cell specs and the canonical form that content-addresses them."""

import pickle

from repro.parallel import CellSpec, canonical, cell
from repro.sgx.memcpy import VanillaMemcpy, ZcMemcpy


def test_cell_sorts_params_and_roundtrips_kwargs():
    spec = cell("fig7", 3, size=512, aligned=True, ops=100)
    assert spec.exp_id == "fig7"
    assert spec.index == 3
    assert [name for name, _ in spec.params] == sorted(
        name for name, _ in spec.params
    )
    assert spec.kwargs == {"size": 512, "aligned": True, "ops": 100}


def test_cell_param_order_does_not_matter():
    a = cell("fig7", 0, size=512, aligned=True)
    b = cell("fig7", 0, aligned=True, size=512)
    assert a == b
    assert hash(a) == hash(b)


def test_spec_is_frozen_hashable_and_picklable():
    spec = cell("fig7", 1, size=4096, aligned=False)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert {spec: "row"}[clone] == "row"


def test_label_names_the_cell():
    assert cell("fig7", 2, size=512, aligned=True).label() == "fig7[2]"


def test_canonical_flattens_dataclasses():
    flat = canonical(VanillaMemcpy())
    assert isinstance(flat, dict)
    assert "__type__" in flat
    assert canonical(VanillaMemcpy()) == canonical(VanillaMemcpy())
    assert canonical(VanillaMemcpy()) != canonical(ZcMemcpy())


def test_canonical_orders_sets_and_dicts():
    assert canonical({3, 1, 2}) == canonical({2, 3, 1})
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})


def test_canonical_treats_tuples_as_lists():
    assert canonical((1, 2, 3)) == canonical([1, 2, 3])


def test_canonical_is_json_stable():
    import json

    value = canonical(
        cell("fig8", 0, spec=VanillaMemcpy(), sweep=(1, 2), flags={"x"}).params
    )
    assert json.dumps(value, sort_keys=True) == json.dumps(value, sort_keys=True)
