"""The cell runner: job resolution, cache mixing, spec-order outcomes."""

import os

import pytest

from repro.experiments import fig7
from repro.parallel import CellRunner, ResultCache, fork_available, resolve_jobs, run_cells


def test_resolve_jobs_accepts_auto_none_and_numbers():
    assert resolve_jobs("auto") == (os.cpu_count() or 1)
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    assert resolve_jobs(3) == 3
    assert resolve_jobs("4") == 4


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_fork_available_is_a_bool():
    assert isinstance(fork_available(), bool)


def test_outcomes_come_back_in_spec_order():
    specs = fig7.cells(sizes=(512, 2048), ops=40)
    outcomes = CellRunner(jobs=1).run(specs)
    assert [outcome.spec for outcome in outcomes] == specs
    assert all(not outcome.cached for outcome in outcomes)
    assert all(outcome.wall_seconds > 0.0 for outcome in outcomes)


def test_run_cells_returns_rows_matching_run_cell():
    specs = fig7.cells(sizes=(512,), ops=40)
    rows = run_cells(specs, jobs=1)
    assert rows == [fig7.run_cell(spec) for spec in specs]


def test_runner_mixes_cached_and_fresh_cells(tmp_path):
    cache = ResultCache(str(tmp_path))
    specs = fig7.cells(sizes=(512, 2048), ops=40)
    # Warm exactly the first grid point's pair of (aligned, unaligned)
    # cells; the rest must execute.
    warm = [spec for spec in specs if spec.kwargs["size"] == 512]
    for spec in warm:
        cache.store(spec, fig7.run_cell(spec))

    runner = CellRunner(jobs=1, cache=cache)
    outcomes = runner.run(specs)
    assert [o.cached for o in outcomes] == [s in warm for s in specs]
    assert runner.cache_hits == len(warm)
    assert runner.cache_misses == len(specs) - len(warm)

    # Every executed cell was fed back: a rerun is all hits.
    rerun = CellRunner(jobs=1, cache=ResultCache(str(tmp_path))).run(specs)
    assert all(outcome.cached for outcome in rerun)


def test_cached_rows_equal_fresh_rows(tmp_path):
    specs = fig7.cells(sizes=(512,), ops=40)
    fresh = run_cells(specs, jobs=1)
    run_cells(specs, jobs=1, cache=ResultCache(str(tmp_path)))
    cached = run_cells(specs, jobs=1, cache=ResultCache(str(tmp_path)))
    assert cached == fresh
