"""jobs=N must be bit-identical to jobs=1 — rows, verdicts, telemetry."""

import pickle

import pytest

from repro.experiments import fig7, sec5d
from repro.parallel import fork_available, run_cells
from repro.telemetry import TelemetrySession

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork pool workers"
)

FIG7_KW = {"sizes": (512, 4096), "ops": 40}


@needs_fork
def test_parallel_rows_are_bit_identical():
    specs = fig7.cells(**FIG7_KW)
    serial = run_cells(specs, jobs=1)
    parallel = run_cells(specs, jobs=4)
    assert pickle.dumps(serial) == pickle.dumps(parallel)


@needs_fork
def test_parallel_verdicts_match_serial():
    specs = fig7.cells(**FIG7_KW)
    serial = fig7.assemble(run_cells(specs, jobs=1), ops=FIG7_KW["ops"])
    parallel = fig7.assemble(run_cells(specs, jobs=4), ops=FIG7_KW["ops"])
    assert fig7.check_shape(parallel) == fig7.check_shape(serial)
    assert fig7.table(parallel) == fig7.table(serial)


@needs_fork
def test_mixed_experiment_specs_dispatch_by_exp_id():
    specs = fig7.cells(sizes=(512,), ops=40) + sec5d.cells(
        record_sizes=(4096,), records=40
    )
    serial = run_cells(specs, jobs=1)
    parallel = run_cells(specs, jobs=2)
    assert pickle.dumps(serial) == pickle.dumps(parallel)


def _observed_run(jobs, out_dir):
    with TelemetrySession() as session:
        run_cells(fig7.cells(sizes=(512,), ops=40), jobs=jobs)
        labels = [capture.label for capture in session.captures]
        budget = session.render_cycle_budget()
        paths = session.export(str(out_dir), "fig7")
    artifacts = {}
    for name, path in paths.items():
        with open(path, "rb") as handle:
            artifacts[name] = handle.read()
    return labels, budget, artifacts


@needs_fork
def test_telemetry_exports_are_byte_identical(tmp_path):
    # Worker processes run their cell under their own session and ship a
    # plain-data payload back; absorbing in spec order must reproduce the
    # serial captures exactly — labels, cycle budget and all artifacts.
    serial_labels, serial_budget, serial_artifacts = _observed_run(
        1, tmp_path / "serial"
    )
    parallel_labels, parallel_budget, parallel_artifacts = _observed_run(
        2, tmp_path / "parallel"
    )
    assert parallel_labels == serial_labels
    assert parallel_budget == serial_budget
    assert parallel_artifacts == serial_artifacts
