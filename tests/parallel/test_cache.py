"""The content-addressed result cache: keys, hits, atomicity."""

import dataclasses
import os
import pickle

from repro.parallel import ResultCache, cell
from repro.parallel.cache import environment_fingerprint, source_fingerprint


def test_cold_miss_then_warm_hit_is_byte_identical(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = cell("fig7", 0, size=512, aligned=True, ops=100)
    row = {"gbps": 1.25, "series": (1, 2, 3)}

    hit, _ = cache.load(spec)
    assert not hit
    cache.store(spec, row)
    hit, loaded = cache.load(spec)
    assert hit
    assert pickle.dumps(loaded) == pickle.dumps(row)
    assert (cache.hits, cache.misses) == (1, 1)


def test_key_excludes_the_grid_index(tmp_path):
    # fig9/fig12/fig13 re-plot another figure's cells at different
    # positions; equal work must resolve to one entry.
    cache = ResultCache(str(tmp_path))
    spec = cell("fig7", 0, size=512, aligned=True)
    moved = dataclasses.replace(spec, index=17)
    assert cache.key(spec) == cache.key(moved)


def test_key_depends_on_experiment_and_params(tmp_path):
    cache = ResultCache(str(tmp_path))
    base = cell("fig7", 0, size=512, aligned=True)
    assert cache.key(base) != cache.key(cell("fig13", 0, size=512, aligned=True))
    assert cache.key(base) != cache.key(cell("fig7", 0, size=1024, aligned=True))


def test_key_is_hex_sha256(tmp_path):
    key = ResultCache(str(tmp_path)).key(cell("fig7", 0, size=512))
    assert len(key) == 64
    int(key, 16)


def test_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = cell("fig7", 0, size=512)
    cache.store(spec, [1, 2, 3])
    path = os.path.join(str(tmp_path), f"{cache.key(spec)}.pkl")
    with open(path, "wb") as handle:
        handle.write(b"\x80")  # truncated pickle
    hit, row = cache.load(spec)
    assert not hit
    assert row is None


def test_store_leaves_no_temp_droppings(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.store(cell("fig7", 0, size=512), "row")
    assert all(name.endswith(".pkl") for name in os.listdir(str(tmp_path)))


def test_clear_removes_every_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    for i, size in enumerate((512, 1024, 2048)):
        cache.store(cell("fig7", i, size=size), size)
    assert cache.clear() == 3
    hit, _ = cache.load(cell("fig7", 0, size=512))
    assert not hit


def test_missing_directory_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(str(tmp_path / "never-created"))
    hit, _ = cache.load(cell("fig7", 0, size=512))
    assert not hit


def test_fingerprints_are_stable_within_a_process():
    assert source_fingerprint() == source_fingerprint()
    assert environment_fingerprint() == environment_fingerprint()
    assert len(environment_fingerprint()) == 64
