"""Router admission under skewed tenant mixes.

Unit tests drive the weighted-fair shed path against scripted fake
shards (deterministic queue contents, no servers); the end-to-end tests
run real clusters to check block-mode fairness and that quarantine
re-homing preserves per-tenant queue conservation.
"""

import pytest

from repro.api import BenchSpec, ServeSpec
from repro.faults import FaultPlan, FaultSpec
from repro.regress import attach_auditor
from repro.serve import Router
from repro.serve.bench import run_bench
from repro.telemetry import TelemetrySession
from repro.sim import Kernel, paper_machine

from tests.serve.test_router import FakeShard


class TenantFakeShard(FakeShard):
    """FakeShard plus the tenant-occupancy surface preemption needs."""

    def tenant_occupancy(self):
        occupancy = {}
        for request in self.queue:
            occupancy[request.tenant] = occupancy.get(request.tenant, 0) + 1
        return occupancy

    def evict_newest(self, tenant):
        for position in range(len(self.queue) - 1, -1, -1):
            if self.queue[position].tenant == tenant:
                return self.queue.pop(position)
        return None


def make_tenant_router(kernel, weights, n_shards=1, capacity=3, **kwargs):
    shards = [
        TenantFakeShard(kernel, i, capacity=capacity) for i in range(n_shards)
    ]
    router = Router(kernel, shards, tenant_weights=weights, **kwargs)
    return router, shards


def submit_tenant(kernel, router, tenant, op="get", key=b"k"):
    """Run one tenant-tagged request to the point it parks or finishes."""
    thread = kernel.spawn(
        router.request(op, key, tenant=tenant), name=f"req-{tenant}", kind="app"
    )
    kernel.run()
    return thread


class TestWeightedFairShed:
    def test_rejects_non_positive_weights(self):
        kernel = Kernel(paper_machine())
        with pytest.raises(ValueError):
            make_tenant_router(kernel, {"gold": 0.0})
        with pytest.raises(ValueError):
            make_tenant_router(kernel, {})

    def test_over_share_newest_evicted_for_under_share_newcomer(self):
        kernel = Kernel(paper_machine())
        router, shards = make_tenant_router(
            kernel, {"gold": 3.0, "bronze": 1.0}, capacity=3
        )
        bronze = [submit_tenant(kernel, router, "bronze") for _ in range(3)]
        assert all(not t.done for t in bronze)  # queued, parked on done

        gold = submit_tenant(kernel, router, "gold")
        # bronze pressure 3/1 beats gold's post-admission 1/3: bronze's
        # newest queued request is shed, gold goes in.
        assert router.preempted == 1
        assert router.tenants["bronze"].shed == 1
        assert shards[0].tenant_occupancy() == {"bronze": 2, "gold": 1}
        assert bronze[-1].result == ("shed", None)  # newest, not oldest
        assert all(not t.done for t in bronze[:-1])
        assert not gold.done  # admitted and waiting, not shed

    def test_shed_ordering_tracks_pressure_across_arrivals(self):
        kernel = Kernel(paper_machine())
        router, shards = make_tenant_router(
            kernel, {"gold": 3.0, "bronze": 1.0}, capacity=3
        )
        for _ in range(3):
            submit_tenant(kernel, router, "bronze")
        golds = [submit_tenant(kernel, router, "gold") for _ in range(3)]

        # First two golds each evict a bronze (pressure 3/1 then 2/1);
        # the third finds gold itself at pressure 2/3 vs its own
        # post-admission 3/3 — nobody is further over share, so the
        # newcomer is shed.
        assert router.preempted == 2
        assert router.tenants["bronze"].shed == 2
        assert router.tenants["gold"].shed == 1
        assert shards[0].tenant_occupancy() == {"bronze": 1, "gold": 2}
        assert golds[-1].result == ("shed", None)

    def test_ties_break_to_lexicographically_largest_tenant(self):
        kernel = Kernel(paper_machine())
        router, shards = make_tenant_router(
            kernel, {"a": 1.0, "b": 1.0, "c": 1.0}, capacity=4
        )
        for tenant in ("a", "a", "b", "b"):
            submit_tenant(kernel, router, tenant)
        submit_tenant(kernel, router, "c")
        # a and b tie at pressure 2; the deterministic victim is b.
        assert router.preempted == 1
        assert router.tenants["b"].shed == 1
        assert shards[0].tenant_occupancy() == {"a": 2, "b": 1, "c": 1}

    def test_no_preemption_without_weights(self):
        kernel = Kernel(paper_machine())
        shards = [TenantFakeShard(kernel, 0, capacity=2)]
        router = Router(kernel, shards)  # weights unset: plain shed
        for _ in range(2):
            submit_tenant(kernel, router, "bronze")
        gold = submit_tenant(kernel, router, "gold")
        assert gold.result == ("shed", None)
        assert router.preempted == 0
        assert shards[0].tenant_occupancy() == {"bronze": 2}

    def test_over_share_newcomer_is_shed_itself(self):
        kernel = Kernel(paper_machine())
        router, shards = make_tenant_router(
            kernel, {"gold": 3.0, "bronze": 1.0}, capacity=3
        )
        for _ in range(3):
            submit_tenant(kernel, router, "gold")
        extra = submit_tenant(kernel, router, "gold")
        # gold would be at pressure 4/3 after admission, above everyone
        # queued — weighted fairness offers it no victim.
        assert extra.result == ("shed", None)
        assert router.preempted == 0
        assert router.tenants["gold"].shed == 1

    def test_preempted_request_still_conserved(self):
        kernel = Kernel(paper_machine())
        router, shards = make_tenant_router(
            kernel, {"gold": 2.0, "bronze": 1.0}, capacity=2
        )
        for _ in range(2):
            submit_tenant(kernel, router, "bronze")
        submit_tenant(kernel, router, "gold")
        # Drain the queue by hand and let the submitters finish.
        for request in shards[0].drain():
            request.complete(b"v")
        kernel.run()
        assert router.submitted == 3
        assert router.completed + router.shed + router.failed == 3
        for tenant, stats in router.tenants.items():
            counts = stats.counts()
            assert counts["submitted"] == (
                counts["completed"] + counts["shed"] + counts["failed"]
            ), tenant


#: Enclave loss early enough to land inside the short audited runs.
EARLY_LOST = FaultPlan(
    name="early-lost",
    seed=11,
    faults=(FaultSpec(kind="enclave-lost", at_ms=0.5),),
)

SKEWED_MIX = {"gold": 6.0, "silver": 3.0, "bronze": 1.0}


def per_tenant_conserved(result):
    for tenant, record in result["per_tenant"].items():
        accounted = record["completed"] + record["shed"] + record["failed"]
        assert record["submitted"] == accounted, tenant
    totals = result["totals"]
    for counter in ("submitted", "completed", "shed", "failed"):
        assert totals[counter] == sum(
            record[counter] for record in result["per_tenant"].values()
        ), counter


class TestBlockModeFairness:
    def test_skewed_mix_blocks_instead_of_shedding(self):
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(
                    shards=1,
                    policy="round-robin",
                    admission="block",
                    queue_capacity=2,
                    budget=4,
                    tenants=tuple(sorted(SKEWED_MIX.items())),
                ),
                seconds=0.01,
                rate=None,
                clients=6,
                requests_per_client=100,
            ),
            telemetry=False,
        )
        per_tenant_conserved(result)
        # Blocking admission never sheds and never preempts: every
        # tenant's submissions complete, however skewed the mix.
        assert result["totals"]["shed"] == 0
        assert result["totals"]["preempted"] == 0
        assert set(result["per_tenant"]) == set(SKEWED_MIX)
        for tenant, record in result["per_tenant"].items():
            assert record["submitted"] == record["completed"], tenant
            assert record["shed_rate"] == 0.0

    def test_weighted_mix_reaches_every_tenant(self):
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(
                    shards=2,
                    budget=4,
                    tenants=tuple(sorted(SKEWED_MIX.items())),
                ),
                seconds=0.02,
                rate=4_000.0,
            ),
            telemetry=False,
        )
        per_tenant_conserved(result)
        submitted = {
            tenant: record["submitted"]
            for tenant, record in result["per_tenant"].items()
        }
        assert all(submitted[tenant] > 0 for tenant in SKEWED_MIX)
        # The draw respects the weights at least ordinally on this seed.
        assert submitted["gold"] > submitted["bronze"]


class TestQuarantineRehoming:
    def test_rehoming_keeps_tenant_tags_and_conservation(self):
        # Deterministic re-homing: queue tenant-tagged requests on the
        # victim shard, quarantine it, and check every request lands on
        # the healthy shard with its tenant intact.
        kernel = Kernel(paper_machine())
        shards = [TenantFakeShard(kernel, i, capacity=8) for i in range(2)]
        router = Router(
            kernel,
            shards,
            policy="round-robin",
            tenant_weights={"gold": 3.0, "bronze": 1.0},
        )
        victim, healthy = shards
        mix = ("gold", "bronze", "gold", "gold", "bronze")
        threads = [submit_tenant(kernel, router, tenant) for tenant in mix]
        # Round-robin split the mix; force everything onto the victim.
        victim.queue.extend(healthy.queue)
        healthy.queue = []
        for request in victim.queue:
            request.shard = victim.index

        victim.enclave.lost = True
        router.quarantine(victim)
        victim.enclave.lost = False
        kernel.run()  # drive the re-routing daemons and the probe

        assert router.rerouted == len(mix)
        rehomed = [(r.tenant, r.shard) for r in healthy.queue]
        assert sorted(t for t, _ in rehomed) == sorted(mix)
        assert all(shard == healthy.index for _, shard in rehomed)
        # Complete the re-homed queue: per-tenant books balance exactly.
        for request in healthy.drain():
            request.complete(b"v")
        kernel.run()
        assert all(thread.result == ("ok", b"v") for thread in threads)
        for tenant, stats in router.tenants.items():
            counts = stats.counts()
            assert counts["submitted"] == counts["completed"], tenant

    def test_fault_run_balances_per_tenant_books_under_audit(self):
        auditors = []
        session = TelemetrySession(
            on_attach=lambda capture: auditors.append(attach_auditor(capture))
        )
        with session:
            result = run_bench(
                BenchSpec(
                    serve=ServeSpec(
                        shards=2,
                        policy="round-robin",
                        budget=4,
                        tenants=(("bronze", 1.0), ("gold", 3.0)),
                    ),
                    seconds=0.01,
                    rate=None,
                    clients=4,
                    requests_per_client=200,
                ),
                plan=EARLY_LOST,
                telemetry=session,
            )
        totals = result["totals"]
        assert totals["quarantines"] >= 1
        # The fault cost no request its terminal state: per-tenant books
        # balance exactly, and the live auditors (router conservation,
        # quarantine routing, span conservation) all stay green.
        per_tenant_conserved(result)
        assert auditors, "the serve kernel was not captured"
        for auditor in auditors:
            auditor.finish()
            assert auditor.ok, "\n".join(str(v) for v in auditor.violations)

    def test_recovery_episodes_reported_per_tenant_run(self):
        # Open loop: the run outlives the recovery backoff, so the
        # episode resolves inside the artifact window.
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(
                    shards=2,
                    policy="round-robin",
                    budget=4,
                    tenants=(("bronze", 1.0), ("gold", 3.0)),
                ),
                seconds=0.02,
                rate=4_000.0,
            ),
            plan=EARLY_LOST,
            telemetry=False,
        )
        episodes = result["totals"]["recoveries"]
        assert episodes, "the enclave loss left no recovery episode"
        for episode in episodes:
            assert episode["outcome"] in ("readmitted", "dead")
            assert episode["seconds"] >= 0.0
        assert result["totals"]["readmissions"] >= 1
