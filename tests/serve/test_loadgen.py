"""Tests for the serving load generator (open and closed loop)."""

import pytest

from repro.api import ServeSpec
from repro.serve import LoadGenerator, LoadSpec, build_cluster

QUICK = ServeSpec(shards=2, budget=4, servers_per_shard=1)


class TestLoadSpec:
    def test_closed_loop_needs_a_bound(self):
        with pytest.raises(ValueError, match="bound"):
            LoadSpec(requests_per_client=None, duration_s=None)

    def test_open_loop_needs_a_bound(self):
        with pytest.raises(ValueError, match="bound"):
            LoadSpec(rate_rps=1000.0, total_requests=None, duration_s=None)

    def test_keydist_validated(self):
        with pytest.raises(ValueError, match="keydist"):
            LoadSpec(keydist="hot")


class TestClosedLoop:
    def test_issues_exactly_the_request_budget(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(clients=3, requests_per_client=20)
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            assert generator.issued == 60
            assert cluster.router.submitted == 60
            assert cluster.router.completed == 60

    def test_deadline_bounds_the_run(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(
                clients=2, requests_per_client=None, duration_s=0.001
            )
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            assert generator.issued > 0
            assert cluster.kernel.seconds(cluster.kernel.now) <= 0.002


class TestOpenLoop:
    def test_total_requests_bound(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(rate_rps=100_000.0, total_requests=40)
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            assert generator.issued == 40
            assert cluster.router.completed + cluster.router.shed == 40

    def test_same_seed_same_schedule(self):
        counts = []
        for _ in range(2):
            with build_cluster(QUICK, telemetry=False) as cluster:
                spec = LoadSpec(rate_rps=50_000.0, duration_s=0.002, seed=3)
                generator = LoadGenerator(cluster.kernel, cluster.router, spec)
                generator.run()
                counts.append(
                    (generator.issued, cluster.router.stats()["completed"])
                )
        assert counts[0] == counts[1]

    def test_different_seeds_differ(self):
        issued = []
        for seed in (0, 1):
            with build_cluster(QUICK, telemetry=False) as cluster:
                spec = LoadSpec(rate_rps=50_000.0, duration_s=0.002, seed=seed)
                generator = LoadGenerator(cluster.kernel, cluster.router, spec)
                generator.run()
                issued.append(generator.issued)
        # Poisson gaps are seed-derived; identical counts for different
        # seeds would suggest the seed is ignored.
        assert issued[0] != issued[1]


class TestMix:
    def test_sets_reach_the_wal(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(clients=2, requests_per_client=30, set_fraction=1.0)
            LoadGenerator(cluster.kernel, cluster.router, spec).run()
            mutations = sum(shard.server.mutations for shard in cluster.shards)
            assert mutations == 60

    def test_get_only_mix_mutates_nothing(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(clients=2, requests_per_client=30, set_fraction=0.0)
            LoadGenerator(cluster.kernel, cluster.router, spec).run()
            assert sum(shard.server.mutations for shard in cluster.shards) == 0


class TestEdgeCases:
    def test_zero_weight_tenant_rejected(self):
        with pytest.raises(ValueError, match="weights must be positive"):
            LoadSpec(
                clients=1,
                requests_per_client=1,
                tenants=(("gold", 1.0), ("free", 0.0)),
            )

    def test_negative_weight_tenant_rejected(self):
        with pytest.raises(ValueError, match="weights must be positive"):
            LoadSpec(rate_rps=100.0, duration_s=0.001, tenants=(("t", -2.0),))

    def test_single_request_closed_loop(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(clients=1, requests_per_client=1)
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            assert generator.issued == 1
            assert cluster.router.completed == 1

    def test_single_request_open_loop(self):
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(rate_rps=10_000.0, total_requests=1)
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            assert generator.issued == 1
            assert cluster.router.completed + cluster.router.shed == 1

    def test_arrival_due_exactly_at_the_deadline_is_not_issued(self, monkeypatch):
        # The open-loop window [start, deadline) is half-open, mirroring
        # the sampler's window grid: an arrival due ON the deadline
        # belongs to what follows, and here nothing follows.  Scripted
        # gaps pin arrival 2 exactly on the boundary (0.002 + 0.002
        # cycles sum exactly to the 0.004 deadline in floats).
        import random as random_mod

        import repro.serve.loadgen as loadgen_mod

        gaps = [0.002, 0.002]

        class Scripted(random_mod.Random):
            def expovariate(self, rate):
                return gaps.pop(0) if gaps else 1.0

        monkeypatch.setattr(loadgen_mod.random, "Random", Scripted)
        with build_cluster(QUICK, telemetry=False) as cluster:
            spec = LoadSpec(rate_rps=500.0, duration_s=0.004, seed=0)
            generator = LoadGenerator(cluster.kernel, cluster.router, spec)
            generator.run()
            # Arrival 1 (due at 0.002) issues; arrival 2 (due == the
            # deadline) must not.
            assert generator.issued == 1

    def test_arrival_on_a_sampler_window_edge_lands_in_the_next_window(self):
        # Glue the two half-open grids together: run a sampler whose
        # interval divides the load duration, and check no arrival is
        # ever counted past the horizon (the last window's edge).
        from repro.obs import MetricSampler

        with build_cluster(QUICK, telemetry=False) as cluster:
            kernel = cluster.kernel
            interval = kernel.cycles(0.001)
            sampler = MetricSampler(
                kernel, interval, 4, shards=cluster.shards
            ).install()
            spec = LoadSpec(rate_rps=5_000.0, duration_s=0.004, seed=2)
            LoadGenerator(kernel, cluster.router, spec).run()
            submitted = {
                raw["window"]: raw["lanes"].get("total", {}).get("submitted", 0)
                for raw in sampler.raw_windows
            }
            sampler.detach()
        # Arrivals stay strictly inside the 4-window grid: the deadline
        # coincides with the horizon and both sides are exclusive there.
        assert sampler.spilled.get("total", 0) == 0
        assert sum(submitted.values()) > 0
