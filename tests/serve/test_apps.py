"""Tests for the served-app adapters and multi-app shards."""

import pytest

from repro.api import Runtime
from repro.apps.cryptoservice import CryptoServiceEnclave
from repro.apps.sessionstore import SessionStoreEnclave
from repro.serve.apps import (
    APP_CHOICES,
    CryptoServedApp,
    KvServedApp,
    SessionServedApp,
    make_apps,
    validate_app_names,
)
from repro.api import BenchSpec, ServeSpec
from repro.serve.bench import run_bench
from repro.serve.shard import EnclaveShard, ServedApp


class TestValidation:
    def test_known_names_pass_through(self):
        assert validate_app_names(("kv", "crypto")) == ("kv", "crypto")

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            validate_app_names(("kv", "redis"))
        for choice in APP_CHOICES:
            assert choice in str(excinfo.value)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            validate_app_names(("kv", "kv"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_app_names(())


class TestServedAppProtocol:
    def test_base_class_methods_are_abstract(self):
        app = ServedApp()
        with pytest.raises(NotImplementedError):
            app.start()
        with pytest.raises(NotImplementedError):
            app.handle(None)
        with pytest.raises(NotImplementedError):
            app.probe()
        with pytest.raises(NotImplementedError):
            app.describe()

    def test_make_apps_builds_in_the_given_order(self):
        with Runtime.create(backend="zc", telemetry=False) as runtime:
            apps = make_apps(("session", "kv"), runtime)
            assert list(apps) == ["session", "kv"]
            assert isinstance(apps["session"], SessionServedApp)
            assert isinstance(apps["kv"], KvServedApp)


class TestShardIntegration:
    def test_default_shard_still_hosts_kv(self):
        with Runtime.create(backend="zc", telemetry=False) as runtime:
            shard = EnclaveShard(0, runtime)
            assert list(shard.apps) == ["kv"]
            assert shard.default_app == "kv"
            assert shard.server is shard.apps["kv"].server

    def test_kvless_shard_has_no_server_alias(self):
        with Runtime.create(backend="zc", telemetry=False) as runtime:
            apps = make_apps(("session",), runtime)
            shard = EnclaveShard(0, runtime, apps=apps)
            assert shard.server is None
            assert shard.client is None
            assert shard.default_app == "session"

    def test_unknown_app_in_request_fails_the_request(self):
        result = run_bench(
            BenchSpec(serve=ServeSpec(shards=1), seconds=0.02, rate=1_000.0)
        )
        # Sanity: the single-app path stays all-kv and healthy.
        assert set(result["per_app"]) == {"kv"}
        assert result["totals"]["failed"] == 0


class TestMultiAppBench:
    def test_mixed_run_reports_all_three_apps(self):
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(
                    shards=2,
                    apps=(("kv", 2.0), ("session", 1.0), ("crypto", 0.5)),
                ),
                seconds=0.05,
                rate=3_000.0,
                seed=7,
            )
        )
        assert set(result["per_app"]) == {"kv", "session", "crypto"}
        total = sum(r["submitted"] for r in result["per_app"].values())
        assert total == result["totals"]["submitted"]
        for row in result["per_shard"]:
            assert set(row["apps"]) == {"kv", "session", "crypto"}
            assert row["apps"]["crypto"]["encrypts"] + \
                row["apps"]["crypto"]["decrypts"] >= 0

    def test_single_app_mix_matches_appless_run(self):
        # A one-pair mix installs the app without consuming RNG, so the
        # seeded stream is byte-identical to the classic kv-only run.
        base = BenchSpec(serve=ServeSpec(shards=2), seconds=0.04, rate=2_000.0, seed=3)
        plain = run_bench(base)
        mixed = run_bench(
            base.replace(serve=ServeSpec(shards=2, apps=(("kv", 1.0),)))
        )
        assert plain["totals"]["submitted"] == mixed["totals"]["submitted"]
        assert plain["per_shard"] == mixed["per_shard"]

    def test_crypto_counters_advance_under_load(self):
        result = run_bench(
            BenchSpec(
                serve=ServeSpec(shards=1, apps=(("crypto", 1.0),)),
                seconds=0.05,
                rate=2_000.0,
                seed=5,
            )
        )
        stats = result["per_shard"][0]["apps"]["crypto"]
        assert stats["encrypts"] + stats["decrypts"] > 0
        assert stats["chunks_encrypted"] + stats["chunks_decrypted"] > 0
        assert result["totals"]["failed"] == 0

    def test_session_store_evicts_and_spills(self):
        # Capacity 512 with a 256-key space never evicts; build a tiny
        # store directly to check the LRU spill path.
        with Runtime.create(backend="zc", telemetry=False) as runtime:
            store = SessionStoreEnclave(runtime.enclave, capacity=2)
            kernel = runtime.kernel

            def driver():
                yield from store.start()
                for index in range(4):
                    key = index.to_bytes(8, "big")
                    yield from runtime.enclave.ecall_named(
                        "sess_set", key, b"v" * 16, in_bytes=24, out_bytes=1
                    )
                hit = yield from runtime.enclave.ecall_named(
                    "sess_get", (3).to_bytes(8, "big"), in_bytes=8, out_bytes=64
                )
                miss = yield from runtime.enclave.ecall_named(
                    "sess_get", (0).to_bytes(8, "big"), in_bytes=8, out_bytes=64
                )
                return hit, miss

            thread = kernel.spawn(driver(), name="driver")
            kernel.join(thread)
            hit, miss = thread.result
            assert hit == b"v" * 16
            assert miss is None
            assert store.live == 2
            assert store.evictions == 2
            assert store.spilled_bytes > 0
            assert store.misses == 1

    def test_crypto_service_round_trips_plaintext(self):
        with Runtime.create(backend="zc", telemetry=False) as runtime:
            service = CryptoServiceEnclave(runtime.enclave, slots=2)
            service.seed_files(runtime.fs)
            kernel = runtime.kernel
            key = (1).to_bytes(8, "big")
            slot = service._slot(key)

            def driver():
                encrypted = yield from runtime.enclave.ecall_named(
                    "crypto_encrypt", key, in_bytes=8, out_bytes=8
                )
                decrypted = yield from runtime.enclave.ecall_named(
                    "crypto_decrypt", key, in_bytes=8, out_bytes=8
                )
                return encrypted, decrypted

            thread = kernel.spawn(driver(), name="driver")
            kernel.join(thread)
            encrypted_chunks, decrypted_chunks = thread.result
            assert encrypted_chunks == service.chunks_per_slot
            assert decrypted_chunks == service.chunks_per_slot
            # The encrypt pass lays the output file out exactly like the
            # pre-seeded ciphertext: IV header + padded chunks.
            plaintext = service.slot_plaintext(slot)
            assert runtime.fs.contents(
                service.out_path(slot)
            ) == service.make_ciphertext(plaintext)
