"""Unit tests for the cross-enclave worker-budget arbiter."""

import pytest

from repro.serve import WorkerBudgetArbiter


class Claimant:
    kernel = None


class TestArbiter:
    def test_cap_validation(self):
        with pytest.raises(ValueError):
            WorkerBudgetArbiter(-1)
        assert WorkerBudgetArbiter(0).cap == 0

    def test_grants_within_cap(self):
        arbiter = WorkerBudgetArbiter(8)
        a, b = Claimant(), Claimant()
        assert arbiter.grant(a, 6) == 6
        assert arbiter.grant(b, 6) == 2  # clipped to the remainder
        assert arbiter.in_use == 8
        assert arbiter.clipped == 1

    def test_shrink_frees_budget_for_others(self):
        arbiter = WorkerBudgetArbiter(8)
        a, b = Claimant(), Claimant()
        arbiter.grant(a, 8)
        assert arbiter.grant(b, 4) == 0
        assert arbiter.grant(a, 2) == 2  # a shrinks within its own share
        assert arbiter.grant(b, 4) == 4  # b grows into the freed budget
        assert arbiter.in_use == 6

    def test_release_returns_grant_to_pool(self):
        arbiter = WorkerBudgetArbiter(4)
        a, b = Claimant(), Claimant()
        arbiter.grant(a, 4)
        arbiter.release(a)
        assert arbiter.in_use == 0
        assert arbiter.grant(b, 4) == 4
        arbiter.release(a)  # releasing an unknown claimant is a no-op

    def test_zero_cap_grants_nothing(self):
        arbiter = WorkerBudgetArbiter(0)
        assert arbiter.grant(Claimant(), 5) == 0
        assert arbiter.clipped == 1

    def test_regrant_replaces_not_accumulates(self):
        arbiter = WorkerBudgetArbiter(8)
        a = Claimant()
        for _ in range(5):
            assert arbiter.grant(a, 3) == 3
        assert arbiter.in_use == 3
