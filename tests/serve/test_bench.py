"""Acceptance tests for the serving bench: scaling, faults, baselines."""

import copy

import pytest

from repro.api import BenchSpec, ServeSpec
from repro.faults import FaultPlan, FaultSpec
from repro.regress import attach_auditor
from repro.serve.bench import (
    compare_to_baseline,
    load_baseline,
    run_bench,
    write_result,
)
from repro.telemetry import TelemetrySession

#: Small open-loop spec most artifact tests share.
OPEN_LOOP = BenchSpec(
    serve=ServeSpec(shards=2, budget=4), seconds=0.01, rate=2_000.0
)


#: Closed-loop saturation spec: offered load scales with the shard
#: count, so throughput measures capacity, not the generator.
def saturating(shards, *, plan=None, telemetry=False):
    spec = BenchSpec(
        serve=ServeSpec(shards=shards, policy="round-robin", budget=8),
        seconds=0.005,
        rate=None,
        clients=2 * shards,
        requests_per_client=400,
    )
    return run_bench(spec, plan=plan, telemetry=telemetry)


ONE_LOST = FaultPlan(
    name="one-lost",
    seed=11,
    faults=(FaultSpec(kind="enclave-lost", at_ms=2.0),),
)

#: Same fault, early enough to hit the audit test's shorter run.
EARLY_LOST = FaultPlan(
    name="early-lost",
    seed=11,
    faults=(FaultSpec(kind="enclave-lost", at_ms=0.5),),
)


class TestArtifact:
    def test_deterministic(self):
        first = run_bench(OPEN_LOOP, telemetry=False)
        second = run_bench(OPEN_LOOP, telemetry=False)
        assert first == second

    def test_shape_and_conservation(self):
        result = run_bench(OPEN_LOOP, telemetry=False)
        assert result["meta"]["artifact"] == "serve-bench"
        totals = result["totals"]
        accounted = totals["completed"] + totals["shed"] + totals["failed"]
        assert totals["submitted"] == accounted
        assert totals["completed"] > 0
        assert totals["throughput_rps"] > 0
        assert len(result["per_shard"]) == 2
        assert sum(s["completed"] for s in result["per_shard"]) == totals["completed"]
        assert result["budget"]["cap"] == 4
        # The zc shards serve their WAL appends switchlessly.
        assert sum(s["switchless_ocalls"] for s in result["per_shard"]) > 0

    def test_artifact_embeds_the_spec(self):
        result = run_bench(OPEN_LOOP, telemetry=False)
        assert BenchSpec.from_json(result["spec"]) == OPEN_LOOP

    def test_baseline_round_trip(self, tmp_path):
        spec = OPEN_LOOP.replace(
            serve=ServeSpec(shards=1, budget=4), seconds=0.005
        )
        result = run_bench(spec, telemetry=False)
        path = write_result(result, str(tmp_path / "serve.json"))
        baseline = load_baseline(path)
        assert compare_to_baseline(result, baseline) == []

    def test_gate_catches_regressions(self, tmp_path):
        spec = OPEN_LOOP.replace(
            serve=ServeSpec(shards=1, budget=4), seconds=0.005
        )
        result = run_bench(spec, telemetry=False)
        path = write_result(result, str(tmp_path / "serve.json"))
        baseline = load_baseline(path)
        worse = copy.deepcopy(result)
        worse["totals"]["throughput_rps"] *= 0.5
        worse["totals"]["latency_us"]["p99"] *= 2.0
        worse["totals"]["shed"] += 50
        violations = compare_to_baseline(worse, baseline)
        assert len(violations) == 3


class TestScaling:
    def test_four_shards_at_least_doubles_one(self):
        one = saturating(1)["totals"]
        four = saturating(4)["totals"]
        assert four["throughput_rps"] >= 2.0 * one["throughput_rps"]
        assert four["latency_us"]["p99"] <= 3.0 * one["latency_us"]["p99"]

    def test_budget_respected_under_saturation(self):
        result = saturating(4)
        assert result["budget"]["cap"] == 8
        assert result["budget"]["in_use"] <= 8


class TestPrometheusExport:
    def test_serve_metrics_reach_the_session_registry(self):
        from repro.telemetry.exporters import render_prometheus

        spec = OPEN_LOOP.replace(
            serve=ServeSpec(
                shards=2,
                budget=4,
                tenants=(("bronze", 1.0), ("gold", 3.0)),
            )
        )
        captures = []
        session = TelemetrySession(on_attach=captures.append)
        with session:
            run_bench(spec, telemetry=session)
        assert captures, "the serve kernel was not captured"
        text = render_prometheus(captures[0].registry)
        # Request counters, one family for the router and one per tenant.
        assert "repro_serve_requests_total" in text
        assert 'outcome="completed"' in text
        assert 'tenant="gold"' in text and 'tenant="bronze"' in text
        assert "repro_serve_tenant_latency_cycles" in text
        # Per-shard gauges, labelled by shard index.
        assert "repro_serve_shard_queue_depth" in text
        assert "repro_serve_shard_workers_active" in text
        assert 'shard="0"' in text and 'shard="1"' in text
        # The exporter's usual conventions still apply.
        assert text.startswith("# ") or "repro_build_info" in text
        assert "repro_build_info" in text


class TestFaultTolerance:
    FAULT_SPEC = BenchSpec(
        serve=ServeSpec(shards=4, policy="round-robin", budget=8),
        seconds=0.02,
        rate=None,
        clients=8,
        requests_per_client=1_000,
    )

    def test_losing_one_shard_degrades_at_most_proportionally(self):
        healthy = run_bench(self.FAULT_SPEC, telemetry=False)["totals"]
        faulty = run_bench(self.FAULT_SPEC, plan=ONE_LOST, telemetry=False)[
            "totals"
        ]
        # Every request still completes: the router re-homes, nothing is lost.
        assert faulty["completed"] == healthy["completed"] == 8_000
        assert faulty["failed"] == 0
        # One of four shards out for the outage: throughput must keep at
        # least the proportional 3/4 share.
        ratio = faulty["throughput_rps"] / healthy["throughput_rps"]
        assert ratio >= 0.75, f"fault degraded throughput {ratio:.2f}x"
        assert faulty["quarantines"] >= 1
        assert faulty["readmissions"] >= 1
        assert faulty["dead"] == []

    def test_fault_run_passes_the_invariant_audit(self):
        spec = BenchSpec(
            serve=ServeSpec(shards=2, policy="round-robin", budget=4),
            seconds=0.01,
            rate=None,
            clients=4,
            requests_per_client=200,
        )
        auditors = []
        session = TelemetrySession(
            on_attach=lambda capture: auditors.append(attach_auditor(capture))
        )
        with session:
            result = run_bench(spec, plan=EARLY_LOST, telemetry=session)
        assert result["totals"]["quarantines"] >= 1
        assert auditors, "the serve kernel was not captured"
        for auditor in auditors:
            auditor.finish()
            assert auditor.ok, "\n".join(str(v) for v in auditor.violations)
