"""Unit tests for the serving router against scripted fake shards."""

import pytest

from repro.serve import Router
from repro.serve.router import Request, _rendezvous_score
from repro.sgx import EnclaveLostError
from repro.sim import Kernel, Sleep, paper_machine


class FakeEnclave:
    def __init__(self):
        self.lost = False


class FakeClient:
    """Scripted probe target: succeeds unless the enclave stays lost."""

    def __init__(self, enclave):
        self.enclave = enclave
        self.probes = 0

    def size(self):
        self.probes += 1
        if self.enclave.lost:
            raise EnclaveLostError("unrecoverable")
        return 0
        yield  # pragma: no cover - makes this a generator


class FakeShard:
    """Queue-only shard double: no servers, the test drains by hand."""

    default_app = "kv"

    def __init__(self, kernel, index, capacity=4):
        self.kernel = kernel
        self.index = index
        self.capacity = capacity
        self.queue = []
        self.stopping = False
        self.enclave = FakeEnclave()
        self.client = FakeClient(self.enclave)
        self.router = None
        self._space = None

    @property
    def available(self):
        return not self.stopping and not self.enclave.lost

    def try_enqueue(self, request):
        if len(self.queue) >= self.capacity:
            return False
        request.shard = self.index
        self.queue.append(request)
        return True

    def space_event(self):
        self._space = self.kernel.event(name=f"fake{self.index}.space")
        return self._space

    def fire_space(self):
        if self._space is not None and not self._space.fired:
            self._space.fire()

    def drain(self):
        drained, self.queue = self.queue, []
        return drained

    def stop(self):
        self.stopping = True

    def probe(self):
        result = yield from self.client.size()
        return result


def make_router(kernel, n_shards=3, capacity=4, **kwargs):
    shards = [FakeShard(kernel, i, capacity=capacity) for i in range(n_shards)]
    return Router(kernel, shards, **kwargs), shards


def submit_one(kernel, router, op="get", key=b"k"):
    """Run router.request to the point it parks (or finishes)."""
    thread = kernel.spawn(router.request(op, key), name="req", kind="app")
    kernel.run()
    return thread


class TestValidation:
    def test_needs_shards(self):
        with pytest.raises(ValueError):
            Router(Kernel(paper_machine()), [])

    def test_rejects_unknown_policies(self):
        kernel = Kernel(paper_machine())
        shard = FakeShard(kernel, 0)
        with pytest.raises(ValueError):
            Router(kernel, [shard], policy="random")
        with pytest.raises(ValueError):
            Router(kernel, [shard], admission="drop")


class TestPlacement:
    def test_rendezvous_score_is_process_independent(self):
        # Keyed BLAKE2b, not hash(): same key/shard must always score the
        # same bytes (placement survives restarts and process boundaries).
        assert _rendezvous_score(b"alpha", 0) == _rendezvous_score(b"alpha", 0)
        assert _rendezvous_score(b"alpha", 0) != _rendezvous_score(b"alpha", 1)

    def test_hash_policy_gives_stable_preference(self):
        kernel = Kernel(paper_machine())
        router, _ = make_router(kernel, n_shards=4)
        keys = [f"key-{i}".encode() for i in range(64)]
        first = [router._pick(k).index for k in keys]
        second = [router._pick(k).index for k in keys]
        assert first == second
        assert len(set(first)) > 1  # keys actually spread across shards

    def test_round_robin_spreads_evenly(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=3, policy="round-robin")
        picks = [router._pick(b"same-key").index for _ in range(9)]
        assert picks.count(0) == picks.count(1) == picks.count(2) == 3

    def test_unavailable_shards_skipped(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, policy="round-robin")
        shards[0].stopping = True
        assert all(router._pick(b"k").index == 1 for _ in range(4))


class TestAdmission:
    def test_shed_on_full_queues(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, capacity=1)
        for shard in shards:
            assert shard.try_enqueue(Request(kernel, "get", b"filler"))
        thread = submit_one(kernel, router)
        assert thread.result == ("shed", None)
        assert router.shed == 1
        assert router.submitted == 1

    def test_shed_when_no_shard_available(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2)
        for shard in shards:
            shard.stopping = True
        thread = submit_one(kernel, router)
        assert thread.result == ("shed", None)

    def test_block_admission_waits_for_space(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(
            kernel, n_shards=1, capacity=1, admission="block"
        )
        shard = shards[0]
        filler = Request(kernel, "get", b"filler")
        assert shard.try_enqueue(filler)

        blocked = kernel.spawn(
            router.request("get", b"k"), name="blocked", kind="app"
        )

        def unblocker():
            yield Sleep(kernel.cycles(1e-5))
            assert not blocked.done  # parked on the space event
            shard.queue.pop(0).complete("first")
            shard.fire_space()
            yield Sleep(kernel.cycles(1e-5))
            # The blocked submitter re-picked and enqueued its request.
            assert [r.key for r in shard.queue] == [b"k"]
            shard.queue.pop(0).complete("second")

        kernel.join(kernel.spawn(unblocker(), name="unblock", kind="app"), blocked)
        assert blocked.result == ("ok", "second")
        assert router.completed == 1
        assert router.shed == 0


class TestQuarantine:
    def test_lost_shard_quarantined_and_queue_rerouted(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, policy="round-robin")
        victim, healthy = shards
        queued = [Request(kernel, "get", f"q{i}".encode()) for i in range(3)]
        for request in queued:
            assert victim.try_enqueue(request)

        victim.enclave.lost = True
        router.quarantine(victim)
        assert victim.index in router.quarantined
        assert router.quarantines == 1

        # Re-routing happens on spawned daemon threads; drive them, with
        # the probe finding a recovered enclave.
        victim.enclave.lost = False
        kernel.run()
        assert router.rerouted == 3
        assert [r.shard for r in healthy.queue] == [1, 1, 1]
        assert {r.key for r in healthy.queue} == {b"q0", b"q1", b"q2"}
        # Probe succeeded: the shard is re-admitted.
        assert victim.index not in router.quarantined
        assert router.readmissions == 1
        assert victim.client.probes == 1

    def test_quarantine_is_idempotent(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2)
        router.quarantine(shards[0])
        router.quarantine(shards[0])
        assert router.quarantines == 1
        kernel.run()

    def test_exhausted_recovery_declares_shard_dead(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, policy="round-robin")
        victim = shards[0]
        victim.enclave.lost = True  # stays lost: the probe's ecall raises
        router.quarantine(victim)
        kernel.run()
        assert victim.index in router.dead
        assert victim.index not in router.quarantined
        assert router.readmissions == 0
        # Routing never offers the dead shard again.
        assert all(router._pick(b"k").index == 1 for _ in range(4))

    def test_lazy_detection_on_pick(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, policy="round-robin")
        shards[0].enclave.lost = True
        picked = router._pick(b"k")
        assert picked.index == 1
        assert shards[0].index in router.quarantined  # noticed on sight
        shards[0].enclave.lost = False
        kernel.run()  # probe re-admits

    def test_stats_snapshot(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2)
        stats = router.stats()
        assert stats["submitted"] == 0
        assert stats["quarantined"] == []
        assert stats["dead"] == []
        assert stats["retired"] == []
        assert set(stats) >= {
            "completed",
            "shed",
            "failed",
            "rerouted",
            "quarantines",
            "readmissions",
            "forecast_shed",
            "shards_added",
            "shards_retired",
        }


class TestElasticFleet:
    """Shard add/retire mid-run: the autoscaler's routing surface."""

    def test_add_shard_rehomes_only_the_migrating_keys(self):
        # Rendezvous property under growth: adding shard N changes a
        # key's placement only when shard N now holds the key's highest
        # score — every other key keeps its old shard bit-for-bit.
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=3, capacity=1_000)
        keys = [f"key-{i}".encode() for i in range(256)]
        before = {key: router._pick(key).index for key in keys}
        router.add_shard(FakeShard(kernel, 3, capacity=1_000))
        after = {key: router._pick(key).index for key in keys}
        moved = [key for key in keys if after[key] != before[key]]
        assert moved, "growing the fleet migrated no keys at all"
        assert all(after[key] == 3 for key in moved)
        for key in keys:
            expected = max(
                range(4), key=lambda s: _rendezvous_score(key, s)
            )
            assert after[key] == expected

    def test_mid_run_add_conserves_in_flight_requests(self):
        # Conservation across a mid-run scale-up: requests queued before
        # the add complete exactly where they already sit; requests
        # submitted after follow the grown rendezvous map; every request
        # reaches a terminal state.
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2, capacity=1_000)
        keys = [f"key-{i}".encode() for i in range(48)]
        first_wave = [submit_one(kernel, router, key=key) for key in keys]
        pre_add = {
            request.key: request.shard
            for shard in shards
            for request in shard.queue
        }
        assert len(pre_add) == len(keys)

        grown = FakeShard(kernel, 2, capacity=1_000)
        router.add_shard(grown)
        assert router.stats()["shards_added"] == 1
        # The add moves no queued work: the new shard starts empty and
        # the in-flight requests keep their pre-add placement.
        assert grown.queue == []
        assert {
            request.key: request.shard
            for shard in shards
            for request in shard.queue
        } == pre_add

        second_wave = [submit_one(kernel, router, key=key) for key in keys]
        owner = {
            key: max(range(3), key=lambda s: _rendezvous_score(key, s))
            for key in keys
        }
        for shard in (*shards, grown):
            for request in shard.queue:
                if request.key in owner and request.shard != pre_add.get(
                    request.key
                ):
                    assert request.shard == owner[request.key]
        # Keys whose 3-shard owner is the new shard actually land there.
        migrated = [key for key in keys if owner[key] == 2]
        assert migrated
        assert {request.key for request in grown.queue} == set(migrated)

        for shard in (*shards, grown):
            for request in shard.drain():
                request.complete(b"v")
        kernel.run()
        threads = first_wave + second_wave
        assert all(t.result == ("ok", b"v") for t in threads)
        assert router.submitted == router.completed == 2 * len(keys)

    def test_add_shard_rejects_a_duplicate_index(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=2)
        with pytest.raises(ValueError, match="already routed"):
            router.add_shard(FakeShard(kernel, 1))

    def test_retire_drains_and_rehomes_the_queue(self):
        kernel = Kernel(paper_machine())
        router, shards = make_router(kernel, n_shards=3, capacity=1_000)
        victim = shards[2]
        queued = [Request(kernel, "get", f"q{i}".encode()) for i in range(4)]
        for request in queued:
            assert victim.try_enqueue(request)

        drained = router.retire_shard(victim)
        assert [r.request_id for r in drained] == [
            r.request_id for r in queued
        ]
        assert victim.stopping
        assert router.retired == {2}
        kernel.run()  # drive the re-submit daemons
        assert router.rerouted == 4
        survivors = shards[0].queue + shards[1].queue
        assert {r.key for r in survivors} == {r.key for r in queued}
        assert all(r.shard in (0, 1) for r in survivors)
        # Retire is terminal and idempotent: no re-pick, no double drain.
        assert router.retire_shard(victim) == []
        assert router.stats()["shards_retired"] == 1
        assert all(router._pick(b"k").index != 2 for _ in range(8))
