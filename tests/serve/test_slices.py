"""Slice-parallel serving: partition correctness and deterministic merge.

The guarantee under test (see :mod:`repro.serve.slices`): with rendezvous
placement, every slice regenerates the identical seeded arrival stream,
serves exactly the arrivals whose owner shard it hosts, and the merged
artifact is a deterministic superposition of the slice timelines.  Under
light load (no cross-request CPU contention) a sliced run reproduces the
unsliced per-shard outcomes exactly.
"""

import json

import pytest

from repro.api import BenchSpec, ServeSpec, SpecError
from repro.serve.bench import run_bench
from repro.serve.router import _rendezvous_score
from repro.serve.slices import (
    make_admit,
    merge_slice_results,
    owner_shard,
    run_slice_bench,
    slice_shard_ids,
    split_budget,
)


def light(shards, slices=1, *, tenants=None, budget=None, plan=None, fault_shard=0):
    """The light-load spec the equivalence tests share."""
    return BenchSpec(
        serve=ServeSpec(
            shards=shards,
            tenants=tenants,
            budget=budget,
            plan=plan,
            fault_shard=fault_shard,
        ),
        seconds=0.04,
        rate=3_000.0,
        seed=11,
        slices=slices,
    )


def outcome_keys(entry):
    """The contention-independent per-shard outcome fields."""
    return {
        "shard": entry["shard"],
        "completed": entry["completed"],
        "failed": entry["failed"],
        "mutations": entry["mutations"],
        # Worker wake state is machine-local, so the switchless/fallback
        # split legitimately differs between one host and N modeled
        # hosts — but every request still issues the same ocalls.
        "ocalls": entry["switchless_ocalls"]
        + entry["regular_ocalls"]
        + entry["fallback_ocalls"],
    }


class TestPartition:
    def test_round_robin_partition(self):
        assert slice_shard_ids(4, 2) == [(0, 2), (1, 3)]
        assert slice_shard_ids(5, 3) == [(0, 3), (1, 4), (2,)]
        assert slice_shard_ids(3, 1) == [(0, 1, 2)]

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            slice_shard_ids(4, 5)
        with pytest.raises(ValueError):
            slice_shard_ids(4, 0)

    def test_owner_matches_router_pick(self):
        shards = 7
        for index in range(64):
            key = f"key-{index}".encode()
            expected = max(
                range(shards), key=lambda s: _rendezvous_score(key, s)
            )
            assert owner_shard(key, shards) == expected

    def test_admit_predicates_partition_keyspace(self):
        shards, slices = 6, 3
        admits = [
            make_admit(ids, shards) for ids in slice_shard_ids(shards, slices)
        ]
        for index in range(128):
            key = f"key-{index}".encode()
            assert sum(admit(key) for admit in admits) == 1

    def test_split_budget_apportions_whole_budget(self):
        partitions = slice_shard_ids(5, 3)  # 2 + 2 + 1 shards
        budgets = split_budget(12, partitions, 5)
        assert sum(budgets) == 12
        assert budgets[2] < budgets[0]
        assert split_budget(None, partitions, 5) == [None, None, None]


class TestEquivalence:
    def test_sliced_matches_unsliced_per_shard(self):
        base = run_bench(light(4), telemetry=False)
        sliced = run_slice_bench(light(4, 2), jobs=1)
        assert [outcome_keys(e) for e in base["per_shard"]] == [
            outcome_keys(e) for e in sliced["per_shard"]
        ]
        for field in ("submitted", "completed", "shed", "failed", "issued"):
            assert base["totals"][field] == sliced["totals"][field]

    def test_tenant_streams_survive_slicing(self):
        tenants = (("bronze", 1.0), ("gold", 3.0))
        base = run_bench(light(4, tenants=tenants), telemetry=False)
        sliced = run_slice_bench(light(4, 2, tenants=tenants), jobs=1)
        for tenant, _ in tenants:
            for field in ("submitted", "completed", "shed", "failed"):
                assert (
                    base["per_tenant"][tenant][field]
                    == sliced["per_tenant"][tenant][field]
                ), (tenant, field)

    def test_merge_conserves_counts(self):
        sliced = run_slice_bench(light(5, 3), jobs=1)
        assert sliced["totals"]["completed"] == sum(
            entry["completed"] for entry in sliced["slices"]
        )
        assert sorted(e["shard"] for e in sliced["per_shard"]) == list(range(5))
        owned = [index for entry in sliced["slices"] for index in entry["shard_ids"]]
        assert sorted(owned) == list(range(5))

    def test_fork_pool_matches_serial(self):
        serial = run_slice_bench(light(4, 2), jobs=1)
        pooled = run_slice_bench(light(4, 2), jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_run_bench_dispatches_sliced_specs(self):
        # Runtime.serve / run_bench on a slices>1 spec IS the slice
        # runner: one entry point, identical artifact.
        direct = run_slice_bench(light(4, 2), jobs=1)
        dispatched = run_bench(light(4, 2))
        assert json.dumps(direct, sort_keys=True) == json.dumps(
            dispatched, sort_keys=True
        )

    def test_artifact_shape_and_provenance(self):
        spec = light(4, 2)
        sliced = run_slice_bench(spec, jobs=1)
        assert sliced["meta"]["artifact"] == "serve-bench"
        assert sliced["params"]["slices"] == 2
        assert sliced["params"]["slice_shards"] == [[0, 2], [1, 3]]
        assert "latency_us" in sliced["totals"]
        assert sliced["totals"]["latency_us"]["count"] == float(
            sliced["totals"]["completed"]
        )
        # The merged artifact records the *original* sliced spec.
        assert BenchSpec.from_json(sliced["spec"]) == spec


class TestAudit:
    def test_audit_section_aggregates_slice_verdicts(self):
        sliced = run_slice_bench(light(4, 2), jobs=1, audit=True)
        assert sliced["audit"]["ok"] is True
        assert len(sliced["audit"]["cells"]) == 2
        assert sliced["audit"]["violations"] == 0


class TestValidation:
    def test_requires_hash_policy(self):
        with pytest.raises(SpecError, match="hash"):
            BenchSpec(
                serve=ServeSpec(shards=4, policy="round-robin"),
                seconds=0.04,
                rate=3_000.0,
                slices=2,
            )

    def test_spec_and_legacy_kwargs_are_exclusive(self):
        with pytest.raises(SpecError, match="extra bench keywords"):
            run_slice_bench(light(4, 2), seed=11)

    def test_merge_rejects_empty(self):
        from repro.sim import server_machine

        with pytest.raises(ValueError, match="nothing to merge"):
            merge_slice_results([], server_machine())

    def test_legacy_keyword_path_warns_but_still_runs(self):
        with pytest.deprecated_call():
            sliced = run_slice_bench(
                4, 2, seconds=0.04, rate=3_000.0, seed=11, jobs=1
            )
        assert sliced["params"]["slices"] == 2

    def test_fault_plan_attaches_only_in_owning_slice(self):
        sliced = run_slice_bench(
            light(4, 2, plan="enclave-lost", fault_shard=1, budget=8), jobs=1
        )
        assert sliced["params"]["plan"] == "enclave-lost"
        # Shard 1 lives in slice 1; its quarantine shows up post-merge.
        assert sliced["totals"]["quarantines"] >= 1
