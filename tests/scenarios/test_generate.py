"""Tests for the deterministic trace generator.

The two pinned behaviours mirror the obs anomaly tests' convention:
the declared shift/flash window must be where the effect actually lands
in the generated data, not merely near it.
"""

import pytest

from repro.scenarios.generate import ScenarioSpec, generate_trace
from repro.scenarios.trace import write_trace


class TestDeterminism:
    def test_same_seed_byte_identical_file(self, tmp_path):
        spec = ScenarioSpec(
            name="det",
            seed=42,
            duration_s=0.1,
            rate_rps=2_000.0,
            apps=(("kv", 2.0), ("session", 1.0)),
            tenants=(("bronze", 1.0), ("gold", 3.0)),
        )
        a = write_trace(generate_trace(spec), str(tmp_path / "a.jsonl"))
        b = write_trace(generate_trace(spec), str(tmp_path / "b.jsonl"))
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_different_seeds_differ(self):
        base = dict(name="d", duration_s=0.1, rate_rps=2_000.0)
        one = generate_trace(ScenarioSpec(seed=1, **base))
        two = generate_trace(ScenarioSpec(seed=2, **base))
        assert one.digest != two.digest

    def test_timestamps_sorted_and_in_range(self):
        trace = generate_trace(ScenarioSpec(name="s", seed=3, duration_s=0.05))
        ts = [event.t for event in trace.events]
        assert ts == sorted(ts)
        assert all(0 <= t < 0.05 for t in ts)


class TestMixes:
    def test_apps_and_tenants_only_from_the_declared_mix(self):
        spec = ScenarioSpec(
            name="mix",
            seed=5,
            duration_s=0.1,
            rate_rps=3_000.0,
            apps=(("kv", 1.0), ("session", 1.0), ("crypto", 1.0)),
            tenants=(("gold", 1.0), ("bronze", 1.0)),
        )
        trace = generate_trace(spec)
        assert {e.app for e in trace.events} == {"kv", "session", "crypto"}
        assert {e.tenant for e in trace.events} == {"gold", "bronze"}

    def test_single_app_spec_tags_everything_with_it(self):
        trace = generate_trace(
            ScenarioSpec(name="solo", seed=5, duration_s=0.05)
        )
        assert trace.events
        assert all(e.app == "kv" for e in trace.events)
        assert all(e.tenant == "" for e in trace.events)

    def test_crypto_never_sees_delete(self):
        spec = ScenarioSpec(
            name="nodelete",
            seed=9,
            duration_s=0.2,
            rate_rps=3_000.0,
            apps=(("kv", 1.0), ("crypto", 1.0)),
            delete_fraction=0.3,
        )
        trace = generate_trace(spec)
        crypto_ops = {e.op for e in trace.events if e.app == "crypto"}
        assert crypto_ops and "delete" not in crypto_ops
        # The coercion is app-local: kv still deletes.
        assert "delete" in {e.op for e in trace.events if e.app == "kv"}

    def test_sets_carry_values_gets_do_not(self):
        trace = generate_trace(ScenarioSpec(name="v", seed=4, duration_s=0.05))
        for event in trace.events:
            assert (event.value is not None) == (event.op == "set")


class TestFlashCrowd:
    def test_flash_density_lands_in_the_declared_window(self):
        # rate 1000 outside, 6000 inside [0.1, 0.14): the in-window
        # arrival density must be several times the out-of-window one,
        # and the declared window is where the mass actually is.
        spec = ScenarioSpec(
            name="flash",
            seed=21,
            duration_s=0.3,
            rate_rps=1_000.0,
            arrival="flash",
            flash_at_s=0.1,
            flash_width_s=0.04,
            flash_factor=6.0,
        )
        trace = generate_trace(spec)
        inside = [e for e in trace.events if 0.1 <= e.t < 0.14]
        outside = [e for e in trace.events if not 0.1 <= e.t < 0.14]
        inside_rate = len(inside) / 0.04
        outside_rate = len(outside) / (0.3 - 0.04)
        assert inside_rate > 3 * outside_rate
        assert inside_rate == pytest.approx(6_000.0, rel=0.35)

    def test_flash_needs_onset(self):
        with pytest.raises(ValueError, match="flash_at_s"):
            ScenarioSpec(name="bad", arrival="flash")


class TestDiurnal:
    def test_peak_half_carries_more_arrivals_than_trough_half(self):
        # sin is positive over the first half-period and negative over
        # the second, so with period = duration the first half must be
        # denser — by about (1+a)/(1-a) in expectation.
        spec = ScenarioSpec(
            name="day",
            seed=31,
            duration_s=0.4,
            rate_rps=2_000.0,
            arrival="diurnal",
            diurnal_amplitude=0.6,
        )
        trace = generate_trace(spec)
        first = sum(1 for e in trace.events if e.t < 0.2)
        second = len(trace.events) - first
        assert first > 1.5 * second


class TestHotKeyShift:
    def test_hot_key_rotates_at_the_declared_instant(self):
        spec = ScenarioSpec(
            name="shift",
            seed=41,
            duration_s=0.2,
            rate_rps=4_000.0,
            keydist="zipf",
            zipf_s=1.2,
            hot_shift_at_s=0.1,
        )
        trace = generate_trace(spec)

        def hottest(events):
            counts = {}
            for event in events:
                counts[event.key] = counts.get(event.key, 0) + 1
            return max(counts, key=counts.get)

        before = [e for e in trace.events if e.t < 0.1]
        after = [e for e in trace.events if e.t >= 0.1]
        hot_before = hottest(before)
        hot_after = hottest(after)
        # Rank 0 maps to key 0 before the shift and to keyspace//2 after.
        assert int.from_bytes(hot_before, "big") == 0
        assert int.from_bytes(hot_after, "big") == spec.keyspace // 2
        # The declared instant is exact: no pre-shift event uses the
        # shifted hot key's popularity, the shift is not gradual.
        assert hot_before != hot_after

    def test_shift_requires_zipf(self):
        with pytest.raises(ValueError, match="zipf"):
            ScenarioSpec(name="bad", hot_shift_at_s=0.1, keydist="uniform")


class TestSpecValidation:
    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            ScenarioSpec(name="bad", arrival="bursty")

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            ScenarioSpec(name="bad", set_fraction=0.9, delete_fraction=0.3)

    def test_empty_apps_rejected(self):
        with pytest.raises(ValueError, match="apps"):
            ScenarioSpec(name="bad", apps=())
