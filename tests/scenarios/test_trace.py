"""Tests for the scenario trace format: round-trip and tamper evidence."""

import json

import pytest

from repro.scenarios.trace import (
    TRACE_ARTIFACT,
    ScenarioTrace,
    TraceEvent,
    load_trace,
    trace_digest,
    write_trace,
)
from repro.telemetry.schema import SchemaMismatch


def _tiny_trace(**overrides):
    events = (
        TraceEvent(t=0.001, app="kv", op="set", key=b"\x00" * 8, value=b"v" * 8),
        TraceEvent(t=0.002, app="kv", op="get", key=b"\x00" * 8, tenant="gold"),
        TraceEvent(t=0.003, app="session", op="delete", key=b"\x01" * 8),
    )
    fields = dict(
        name="tiny",
        seed=7,
        duration_s=0.01,
        keyspace=4,
        apps=("kv", "session"),
        tenants={"gold": 1.0},
        generator={"rate_rps": 300.0},
        events=events,
    )
    fields.update(overrides)
    return ScenarioTrace(**fields)


class TestEventSerialization:
    def test_round_trip_preserves_every_field(self):
        event = TraceEvent(
            t=0.0125, app="crypto", op="set", key=b"\x02" * 8,
            tenant="silver", value=b"\xff" * 4,
        )
        assert TraceEvent.from_json(event.to_json()) == event

    def test_valueless_event_omits_the_value_field(self):
        event = TraceEvent(t=0.1, app="kv", op="get", key=b"k" * 8)
        assert "value" not in json.loads(event.to_json())
        assert TraceEvent.from_json(event.to_json()).value is None

    def test_serialization_is_canonical(self):
        # Sorted keys, compact separators: the digest depends on it.
        line = _tiny_trace().events[0].to_json()
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))


class TestTraceValidation:
    def test_events_past_the_duration_rejected(self):
        late = TraceEvent(t=0.02, app="kv", op="get", key=b"k" * 8)
        with pytest.raises(ValueError, match="outside"):
            _tiny_trace(events=(late,))

    def test_undeclared_app_rejected(self):
        stray = TraceEvent(t=0.001, app="crypto", op="get", key=b"k" * 8)
        with pytest.raises(ValueError, match="undeclared"):
            _tiny_trace(events=(stray,))

    def test_empty_app_set_rejected(self):
        with pytest.raises(ValueError, match="at least one app"):
            _tiny_trace(apps=(), events=())


class TestFileRoundTrip:
    def test_write_then_load_preserves_everything(self, tmp_path):
        trace = _tiny_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        loaded = load_trace(path)
        assert loaded == trace
        assert loaded.digest == trace.digest

    def test_header_carries_the_stamp_and_digest(self, tmp_path):
        trace = _tiny_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        header = json.loads(open(path, encoding="utf-8").readline())
        assert header["artifact"] == TRACE_ARTIFACT
        assert header["sha256"] == trace_digest(trace.events)
        assert header["events"] == len(trace.events)

    def test_same_trace_writes_byte_identical_files(self, tmp_path):
        a = write_trace(_tiny_trace(), str(tmp_path / "a.jsonl"))
        b = write_trace(_tiny_trace(), str(tmp_path / "b.jsonl"))
        assert open(a, "rb").read() == open(b, "rb").read()


class TestTamperEvidence:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(path))

    def test_missing_stamp_rejected(self, tmp_path):
        path = tmp_path / "unstamped.jsonl"
        path.write_text('{"name": "x"}\n')
        with pytest.raises(SchemaMismatch):
            load_trace(str(path))

    def test_unparsable_header_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="unparsable trace header"):
            load_trace(str(path))

    def test_dropped_event_caught_by_the_count(self, tmp_path):
        trace = _tiny_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        lines = open(path, encoding="utf-8").read().splitlines()
        open(path, "w", encoding="utf-8").write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_trace(str(path))

    def test_edited_event_caught_by_the_digest(self, tmp_path):
        trace = _tiny_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        lines = open(path, encoding="utf-8").read().splitlines()
        record = json.loads(lines[1])
        record["op"] = "delete"
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="modified"):
            load_trace(str(path))

    def test_corrupt_event_line_rejected(self, tmp_path):
        trace = _tiny_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{broken\n")
        with pytest.raises(ValueError, match="unparsable trace event"):
            load_trace(str(path))
