"""Tests for the scenario catalog and its committed traces/baselines."""

import os

import pytest

from repro.scenarios import (
    CATALOG,
    SCENARIO_NAMES,
    baseline_path,
    generate_trace,
    get_scenario,
    load_scenario_baseline,
    load_trace,
    trace_path,
)

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class TestCatalog:
    def test_names_unique_and_ordered(self):
        assert len(set(SCENARIO_NAMES)) == len(SCENARIO_NAMES)
        assert SCENARIO_NAMES == tuple(spec.name for spec in CATALOG)

    def test_every_spec_has_a_description(self):
        for spec in CATALOG:
            assert spec.description, spec.name

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("nope")
        message = str(excinfo.value)
        for name in SCENARIO_NAMES:
            assert name in message

    def test_catalog_covers_the_interesting_regimes(self):
        arrivals = {spec.arrival for spec in CATALOG}
        assert arrivals == {"steady", "diurnal", "flash"}
        assert any(spec.hot_shift_at_s is not None for spec in CATALOG)
        assert any(len(spec.apps) >= 3 for spec in CATALOG)
        assert any(spec.tenants for spec in CATALOG)


class TestCommittedTraces:
    """The committed eval traces must match their specs byte-for-byte.

    A drifted trace means someone edited the file or the generator
    changed under it; either way the baselines are gating stale bytes.
    """

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_committed_trace_matches_regeneration(self, name):
        path = trace_path(name, ROOT)
        assert os.path.exists(path), (
            f"missing committed trace {path}; run 'repro scenarios gen {name}'"
        )
        committed = load_trace(path)
        regenerated = generate_trace(get_scenario(name))
        assert committed.digest == regenerated.digest, (
            f"{name}: committed trace drifted from its spec; "
            f"regenerate with 'repro scenarios gen {name}'"
        )

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_committed_baseline_exists_and_points_at_the_trace(self, name):
        path = baseline_path(name, ROOT)
        assert os.path.exists(path), (
            f"missing committed baseline {path}; run "
            f"'repro scenarios replay {name} --snapshot {path}'"
        )
        baseline = load_scenario_baseline(path)
        assert baseline["params"]["scenario"] == name
        committed = load_trace(trace_path(name, ROOT))
        assert baseline["params"]["trace_digest"] == committed.digest
        assert baseline["params"]["trace_events"] == len(committed.events)
        assert baseline["totals"]["issued"] == len(committed.events)
