"""Tests for trace replay: loadgen-equivalent exactness guarantees.

The acceptance property of the scenario library: a slice-parallel
replay's per-shard outcomes are bit-identical to the unsliced replay's
(the same hedge :mod:`tests.serve.test_slices` pins for synthetic load —
latency percentiles may wiggle with host-contention modeling, outcomes
may not).
"""

import pytest

from repro.scenarios.generate import ScenarioSpec, generate_trace
from repro.scenarios.replay import (
    compare_scenario_baseline,
    scenario_snapshot,
)
from repro.api import BenchSpec, ServeSpec
from repro.scenarios.trace import write_trace
from repro.serve.bench import run_bench

LIGHT = ServeSpec(
    shards=2,
    backend="zc",
    queue_capacity=64,
    servers_per_shard=2,
)


def light_spec(*, trace=None, slices=1, clients=None, apps=None):
    serve = LIGHT if apps is None else ServeSpec(
        shards=2,
        backend="zc",
        queue_capacity=64,
        servers_per_shard=2,
        apps=apps,
    )
    return BenchSpec(
        serve=serve,
        rate=None if clients else 2_000.0,
        seconds=0.06,
        clients=clients,
        trace=trace,
        slices=slices,
    )


def _light_trace():
    return generate_trace(
        ScenarioSpec(
            name="replay-light",
            seed=17,
            duration_s=0.06,
            rate_rps=2_000.0,
            apps=(("kv", 3.0), ("session", 1.0)),
            tenants=(("gold", 2.0), ("bronze", 1.0)),
        )
    )


def outcome_keys(entry):
    """Contention-independent per-shard outcomes (test_slices convention)."""
    return {
        "shard": entry["shard"],
        "completed": entry["completed"],
        "failed": entry["failed"],
        "ocalls": entry["switchless_ocalls"]
        + entry["regular_ocalls"]
        + entry["fallback_ocalls"],
    }


class TestReplayBasics:
    def test_replay_issues_exactly_the_trace(self):
        trace = _light_trace()
        result = run_bench(light_spec(), trace=trace)
        assert result["totals"]["issued"] == len(trace.events)
        assert result["totals"]["completed"] + result["totals"]["shed"] + \
            result["totals"]["failed"] == len(trace.events)

    def test_replay_is_deterministic(self):
        trace = _light_trace()
        one = run_bench(light_spec(), trace=trace)
        two = run_bench(light_spec(), trace=trace)
        assert one["totals"] == two["totals"]
        assert one["per_shard"] == two["per_shard"]
        assert one["per_app"] == two["per_app"]

    def test_replay_records_trace_provenance(self):
        trace = _light_trace()
        result = run_bench(light_spec(), trace=trace)
        params = result["params"]
        assert params["scenario"] == "replay-light"
        assert params["trace_digest"] == trace.digest
        assert params["trace_events"] == len(trace.events)
        assert params["rate"] is None
        assert params["seconds"] == trace.duration_s

    def test_tenant_and_app_tags_flow_through(self):
        trace = _light_trace()
        result = run_bench(light_spec(), trace=trace)
        assert set(result["per_app"]) == {"kv", "session"}
        assert set(result["per_tenant"]) == {"gold", "bronze"}
        by_app = {
            app: sum(1 for e in trace.events if e.app == app)
            for app in ("kv", "session")
        }
        for app, submitted in by_app.items():
            assert result["per_app"][app]["submitted"] == submitted

    def test_trace_replay_rejects_the_closed_loop(self):
        with pytest.raises(ValueError, match="open-loop"):
            run_bench(light_spec(clients=4), trace=_light_trace())

    def test_installed_apps_must_cover_the_trace(self):
        with pytest.raises(ValueError, match="not in"):
            run_bench(light_spec(apps=(("kv", 1.0),)), trace=_light_trace())


class TestSliceEquivalence:
    def test_sliced_replay_matches_unsliced_per_shard(self, tmp_path):
        trace = _light_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        unsliced = run_bench(light_spec(), trace=trace)
        sliced = run_bench(light_spec(trace=path, slices=2))
        assert [outcome_keys(e) for e in sliced["per_shard"]] == [
            outcome_keys(e) for e in unsliced["per_shard"]
        ]
        for name in ("completed", "shed", "failed"):
            assert sliced["totals"][name] == unsliced["totals"][name]
        assert sliced["totals"]["issued"] == len(trace.events)

    def test_slice_partition_is_exhaustive_and_disjoint(self, tmp_path):
        trace = _light_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        sliced = run_bench(light_spec(trace=path, slices=2))
        # Each slice walks all arrivals and admits only its own: the two
        # slices' admitted counts sum to the trace length.
        admitted = [
            len(trace.events) - entry["skipped_arrivals"]
            for entry in sliced["slices"]
        ]
        assert sum(admitted) == len(trace.events)
        assert all(count > 0 for count in admitted)

    def test_sliced_replay_merges_per_app_sections(self, tmp_path):
        trace = _light_trace()
        path = write_trace(trace, str(tmp_path / "t.jsonl"))
        unsliced = run_bench(light_spec(), trace=trace)
        sliced = run_bench(light_spec(trace=path, slices=2))
        for app in ("kv", "session"):
            for name in ("submitted", "completed", "shed", "failed"):
                assert (
                    sliced["per_app"][app][name]
                    == unsliced["per_app"][app][name]
                )


class TestSnapshotGate:
    def _result(self):
        return run_bench(light_spec(), trace=_light_trace())

    def test_snapshot_round_trips_through_the_gate(self):
        result = self._result()
        snapshot = scenario_snapshot(result)
        assert compare_scenario_baseline(result, snapshot) == []

    def test_gate_catches_a_different_trace(self):
        result = self._result()
        snapshot = scenario_snapshot(result)
        snapshot["params"]["trace_digest"] = "0" * 64
        violations = compare_scenario_baseline(result, snapshot)
        assert any("trace_digest" in v for v in violations)

    def test_gate_catches_lost_completions(self):
        result = self._result()
        snapshot = scenario_snapshot(result)
        snapshot["totals"]["completed"] = int(
            snapshot["totals"]["completed"] * 1.5
        )
        snapshot["totals"]["throughput_rps"] *= 1.5
        violations = compare_scenario_baseline(result, snapshot)
        assert any("completed" in v for v in violations)

    def test_gate_catches_latency_inflation(self):
        result = self._result()
        snapshot = scenario_snapshot(result)
        snapshot["totals"]["latency_us"]["p99"] /= 2.0
        violations = compare_scenario_baseline(result, snapshot)
        assert any("p99" in v for v in violations)

    def test_gate_tolerates_drift_inside_the_threshold(self):
        result = self._result()
        snapshot = scenario_snapshot(result)
        snapshot["totals"]["throughput_rps"] *= 1.05
        assert compare_scenario_baseline(result, snapshot) == []
