"""repro profile meta: hot-function table and scheduler trace export."""

import json

import pytest

from repro.profiler.meta import (
    export_sched_trace,
    profile_storm,
    render_profile,
    run_storm,
)


@pytest.fixture(scope="module")
def artifact():
    return profile_storm(use_zc=True, n_ocalls=200, timers="wheel", top=10)


class TestProfileStorm:
    def test_artifact_shape(self, artifact):
        assert artifact["backend"] == "zc"
        assert artifact["timers"] == "wheel"
        assert artifact["n_ocalls"] == 200
        assert artifact["events_processed"] > 0
        assert artifact["simulated_s"] > 0
        assert artifact["host_seconds"] > 0
        assert "timer_stats" in artifact

    def test_hot_rows_are_ranked_by_tottime(self, artifact):
        hot = artifact["hot"]
        assert hot, "profile found no functions"
        times = [row["tottime_s"] for row in hot]
        assert times == sorted(times, reverse=True)
        for row in hot:
            assert set(row) >= {"function", "ncalls", "tottime_s", "cumtime_s"}

    def test_storm_is_deterministic(self):
        a = run_storm(use_zc=True, n_ocalls=150, timers="wheel")
        b = run_storm(use_zc=True, n_ocalls=150, timers="wheel")
        assert a.events_processed == b.events_processed
        assert a.now == b.now

    def test_regular_backend_storm(self):
        kernel = run_storm(use_zc=False, n_ocalls=100, timers="heap")
        assert kernel.events_processed > 0


class TestRendering:
    def test_render_includes_header_and_rows(self, artifact):
        text = render_profile(artifact)
        assert "events" in text
        assert artifact["hot"][0]["function"] in text

    def test_render_paths_are_repo_relative(self, artifact):
        text = render_profile(artifact)
        assert "/root/" not in text


class TestTraceExport:
    def test_trace_file_is_chrome_compatible(self, tmp_path):
        path = tmp_path / "trace.json"
        export_sched_trace(str(path), use_zc=True, n_ocalls=120, timers="wheel")
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        for event in events[:20]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
