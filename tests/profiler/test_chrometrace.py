"""Tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.profiler import CallTracer
from repro.profiler.chrometrace import (
    call_trace_events,
    export_chrome_trace,
    sched_trace_events,
)
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec, SchedTrace


def build(trace=None):
    kernel = Kernel(MachineSpec(n_cores=2, smt=1, freq_hz=1e6), trace=trace)
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler():
        yield Compute(500)
        return None

    urts.register("f", handler)
    return kernel, enclave


class TestSchedTraceExport:
    def test_dispatch_intervals_become_slices(self):
        trace = SchedTrace()
        kernel, enclave = build(trace)

        def app():
            yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app(), name="app"))
        events = sched_trace_events(trace, freq_hz=1e6)
        assert events, "expected at least one slice"
        slice_ = events[0]
        assert slice_["ph"] == "X"
        assert slice_["name"] == "app"
        assert slice_["dur"] > 0
        # At 1 MHz, 1 cycle = 1 us: bookkeeping(300) + T_es(13,500) +
        # handler(500) = 14,300 cycles on-CPU, in one uninterrupted slice.
        assert slice_["dur"] == pytest.approx(14_300)

    def test_unmatched_dispatch_skipped(self):
        trace = SchedTrace(max_entries=1)  # dispatches fall off the ring
        kernel, enclave = build(trace)

        def app():
            yield Compute(100)

        kernel.join(kernel.spawn(app(), name="a"))
        # Only the finish survives; exporter must not crash.
        events = sched_trace_events(trace, freq_hz=1e6)
        assert events == []


class TestCallTraceExport:
    def test_ocalls_become_coloured_slices(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)

        def app():
            for _ in range(3):
                yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app()))
        events = call_trace_events(tracer.events, freq_hz=1e6)
        assert len(events) == 3
        assert all(e["name"] == "f" for e in events)
        assert all(e["cname"] == "bad" for e in events)  # regular mode
        assert all(e["args"]["mode"] == "regular" for e in events)
        # Slices are disjoint and ordered.
        ends = [e["ts"] + e["dur"] for e in events]
        starts = [e["ts"] for e in events]
        assert all(end <= start + 1e-9 for end, start in zip(ends, starts[1:]))


class TestCombinedExport:
    def test_export_writes_loadable_json(self, tmp_path):
        trace = SchedTrace()
        kernel, enclave = build(trace)
        tracer = CallTracer().install(enclave)

        def app():
            yield from enclave.ocall("f")

        kernel.join(kernel.spawn(app(), name="app"))
        out = tmp_path / "trace.json"
        count = export_chrome_trace(
            str(out), sched=trace, calls=tracer.events, freq_hz=1e6
        )
        data = json.loads(out.read_text())
        assert len(data) == count
        phases = {e["ph"] for e in data}
        assert phases == {"M", "X"}
        names = {e["args"]["name"] for e in data if e["ph"] == "M"}
        assert names == {"CPUs", "ocalls"}
