"""Tests for profile comparison (before/after a mechanism change)."""

import pytest

from repro.api import make_backend
from repro.core import ZcConfig
from repro.profiler import CallTracer, build_profiles
from repro.profiler.profile import compare_profiles, format_deltas
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def profile_workload(use_zc: bool):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))

    def handler():
        yield Compute(800)
        return None

    urts.register("hot", handler)
    tracer = CallTracer().install(enclave)

    def app():
        for _ in range(50):
            yield from enclave.ocall("hot")

    kernel.join(kernel.spawn(app()))
    return build_profiles(tracer.events, tracer.window_cycles())


class TestCompareProfiles:
    def test_switchless_speedup_visible_per_site(self):
        before = profile_workload(use_zc=False)
        after = profile_workload(use_zc=True)
        deltas = compare_profiles(before, after)
        assert len(deltas) == 1
        delta = deltas[0]
        assert delta.name == "hot"
        assert delta.speedup > 3  # transition removed from a short call
        assert delta.before_switchless == 0.0
        assert delta.after_switchless == 1.0

    def test_only_common_sites_compared(self):
        before = profile_workload(use_zc=False)
        after = {}
        assert compare_profiles(before, after) == []

    def test_format(self):
        before = profile_workload(use_zc=False)
        after = profile_workload(use_zc=True)
        text = format_deltas(compare_profiles(before, after))
        assert "speedup" in text and "hot" in text

    def test_zero_after_latency_is_infinite_speedup(self):
        from repro.profiler.profile import CallProfile, ProfileDelta

        delta = ProfileDelta("x", 100.0, 0.0, 0.0, 1.0)
        assert delta.speedup == float("inf")
