"""Tests for the trace timeline and sparkline rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.profiler.timeline import bucket_events, render_timeline, sparkline
from repro.profiler.tracer import CallEvent


def make_event(completed, latency=1000.0, mode="regular"):
    return CallEvent(
        name="f",
        issued_at_cycles=completed - latency,
        completed_at_cycles=completed,
        host_cycles=latency / 2,
        mode=mode,
        in_bytes=0,
        out_bytes=0,
    )


class TestBucketing:
    def test_events_land_in_their_interval(self):
        events = [make_event(500), make_event(1500), make_event(1600)]
        buckets = bucket_events(events, interval_cycles=1000)
        assert [b.calls for b in buckets] == [1, 2]

    def test_switchless_fraction_per_interval(self):
        events = [
            make_event(100, mode="switchless"),
            make_event(200, mode="regular"),
        ]
        buckets = bucket_events(events, interval_cycles=1000)
        assert buckets[0].switchless_fraction == pytest.approx(0.5)

    def test_mean_latency(self):
        events = [make_event(100, latency=100), make_event(200, latency=300)]
        buckets = bucket_events(events, interval_cycles=1000)
        assert buckets[0].mean_latency_cycles == pytest.approx(200)

    def test_horizon_pads_empty_intervals(self):
        events = [make_event(100)]
        buckets = bucket_events(events, interval_cycles=1000, t_end_cycles=3500)
        assert len(buckets) == 4
        assert [b.calls for b in buckets] == [1, 0, 0, 0]

    def test_empty_and_invalid(self):
        assert bucket_events([], 1000) == []
        with pytest.raises(ValueError):
            bucket_events([make_event(1)], 0)

    def test_rate_per_s(self):
        events = [make_event(100), make_event(200)]
        buckets = bucket_events(events, interval_cycles=1e6)
        # 2 calls in 1M cycles at 1 GHz = 2000/s.
        assert buckets[0].rate_per_s(1e9) == pytest.approx(2000)


class TestSparkline:
    def test_monotone_values_use_increasing_levels(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestRenderTimeline:
    def test_renders_three_series(self):
        events = [make_event(i * 1000.0 + 500, mode="switchless") for i in range(20)]
        buckets = bucket_events(events, interval_cycles=5000)
        text = render_timeline(buckets)
        assert "call rate" in text
        assert "switchless" in text
        assert "mean latency" in text

    def test_no_events(self):
        assert render_timeline([]) == "(no events)"
