"""Tests for profile aggregation and the switchless advisor."""

import pytest

from repro.profiler import CallTracer, SwitchlessAdvisor, build_profiles
from repro.profiler.advisor import format_recommendations
from repro.profiler.profile import format_profiles
from repro.profiler.tracer import CallEvent
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def make_event(name, host, issued=0.0, completed=None, mode="regular", nbytes=8):
    return CallEvent(
        name=name,
        issued_at_cycles=issued,
        completed_at_cycles=completed if completed is not None else issued + host + 14_000,
        host_cycles=host,
        mode=mode,
        in_bytes=nbytes,
        out_bytes=0,
    )


class TestBuildProfiles:
    def test_aggregates_per_name(self):
        events = [
            make_event("f", 100, issued=i * 1000.0) for i in range(10)
        ] + [make_event("g", 50_000, issued=5000.0)]
        profiles = build_profiles(events, window_cycles=3.8e9)  # 1 second
        assert profiles["f"].calls == 10
        assert profiles["f"].rate_per_s == pytest.approx(10.0)
        assert profiles["f"].mean_host_cycles == pytest.approx(100)
        assert profiles["f"].is_short
        assert not profiles["g"].is_short

    def test_percentile_and_bytes(self):
        events = [make_event("f", host, nbytes=16) for host in range(100)]
        profiles = build_profiles(events, window_cycles=3.8e9)
        assert profiles["f"].p95_host_cycles == 94
        assert profiles["f"].mean_bytes == 16

    def test_switchless_fraction(self):
        events = [make_event("f", 10, mode="switchless"), make_event("f", 10)]
        profiles = build_profiles(events, window_cycles=3.8e9)
        assert profiles["f"].switchless_fraction == pytest.approx(0.5)

    def test_format(self):
        events = [make_event("f", 100)]
        text = format_profiles(build_profiles(events, 3.8e9))
        assert "ocall" in text and "f" in text and "short" in text


class TestAdvisor:
    def test_short_frequent_call_recommended(self):
        events = [make_event("f", 500, issued=i * 100_000.0) for i in range(1000)]
        profiles = build_profiles(events, window_cycles=3.8e7)  # 10 ms window
        advisor = SwitchlessAdvisor()
        assert advisor.switchless_set(profiles) == {"f"}
        top = advisor.advise(profiles)[0]
        assert top.switchless
        assert top.estimated_saving_cycles_per_s > 0

    def test_long_call_rejected(self):
        events = [make_event("g", 70_000, issued=i * 100_000.0) for i in range(1000)]
        profiles = build_profiles(events, window_cycles=3.8e7)
        advisor = SwitchlessAdvisor()
        recommendations = advisor.advise(profiles)
        assert not recommendations[0].switchless
        assert "long" in recommendations[0].reason

    def test_infrequent_call_rejected(self):
        events = [make_event("rare", 100)]
        profiles = build_profiles(events, window_cycles=3.8e9)  # 1/s
        advisor = SwitchlessAdvisor(min_rate_per_s=1000)
        recommendations = advisor.advise(profiles)
        assert not recommendations[0].switchless
        assert "infrequent" in recommendations[0].reason

    def test_recommendations_ranked_by_saving(self):
        events = [make_event("hot", 100, issued=i * 10_000.0) for i in range(2000)]
        events += [make_event("warm", 100, issued=i * 100_000.0) for i in range(200)]
        profiles = build_profiles(events, window_cycles=3.8e7)
        ranked = SwitchlessAdvisor().advise(profiles)
        assert ranked[0].name == "hot"
        assert ranked[0].estimated_saving_cycles_per_s > ranked[1].estimated_saving_cycles_per_s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SwitchlessAdvisor(short_call_factor=0)
        with pytest.raises(ValueError):
            SwitchlessAdvisor(min_rate_per_s=-1)

    def test_format(self):
        events = [make_event("f", 100, issued=i * 10_000.0) for i in range(100)]
        profiles = build_profiles(events, window_cycles=3.8e6)
        text = format_recommendations(SwitchlessAdvisor().advise(profiles))
        assert "verdict" in text


class TestEndToEndAdvice:
    def test_advisor_reconstructs_the_papers_kissdb_insight(self):
        """Profile the kissdb workload, then check the advisor recommends
        exactly the calls the paper's i-all configuration selects: the
        short, frequent fseeko/fread/fwrite/ftell — i.e. measurement
        replaces the developer guesswork of §III-A."""
        from repro.apps import KissDB
        from repro.hostos import HostFileSystem, PosixHost

        kernel = Kernel(MachineSpec(n_cores=4, smt=2))
        fs = HostFileSystem()
        urts = UntrustedRuntime()
        PosixHost(fs).install(urts)
        enclave = Enclave(kernel, urts)
        tracer = CallTracer().install(enclave)
        db = KissDB(enclave, "/db", hash_table_size=64)

        def app():
            yield from db.open()
            for i in range(400):
                yield from db.put(i.to_bytes(8, "big"), bytes(8))
            yield from db.close()

        kernel.join(kernel.spawn(app()))
        profiles = build_profiles(tracer.events, tracer.window_cycles())
        chosen = SwitchlessAdvisor(min_rate_per_s=10_000).switchless_set(profiles)
        assert {"fseeko", "fwrite", "ftell"} <= chosen
        # The one-shot fopen/fclose must not be selected.
        assert "fopen" not in chosen
        assert "fclose" not in chosen
