"""Tests for the call tracer."""

import pytest

from repro.profiler import CallTracer
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def handler(duration):
        yield Compute(duration, tag="host")
        return duration

    urts.register("work", handler)
    return kernel, enclave


class TestCallTracer:
    def test_records_one_event_per_call(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)

        def app():
            for duration in (100, 200, 300):
                yield from enclave.ocall("work", duration)

        kernel.join(kernel.spawn(app()))
        assert tracer.count == 3
        assert [e.host_cycles for e in tracer.events] == [100, 200, 300]
        assert all(e.mode == "regular" for e in tracer.events)

    def test_host_cycles_exclude_transition(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)

        def app():
            yield from enclave.ocall("work", 1000, in_bytes=64)

        kernel.join(kernel.spawn(app()))
        event = tracer.events[0]
        assert event.host_cycles == pytest.approx(1000)
        # End-to-end latency includes transition + marshalling + handler.
        assert event.latency_cycles > 1000 + enclave.cost.t_es

    def test_ring_buffer_drops_oldest(self):
        kernel, enclave = build()
        tracer = CallTracer(max_events=2).install(enclave)

        def app():
            for duration in (10, 20, 30):
                yield from enclave.ocall("work", duration)

        kernel.join(kernel.spawn(app()))
        assert tracer.count == 2
        assert tracer.dropped == 1
        assert [e.host_cycles for e in tracer.events] == [20, 30]

    def test_probe_overhead_charged(self):
        kernel, enclave = build()
        CallTracer(probe_cycles=500).install(enclave)

        def app():
            yield from enclave.ocall("work", 1000)

        kernel.join(kernel.spawn(app()))
        expected = enclave.cost.ocall_bookkeeping_cycles + enclave.cost.t_es + 1500
        assert kernel.now == pytest.approx(expected)

    def test_uninstall_restores_enclave(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)
        tracer.uninstall()

        def app():
            yield from enclave.ocall("work", 100)

        kernel.join(kernel.spawn(app()))
        assert tracer.count == 0
        assert enclave.completion_hooks == []

    def test_double_install_rejected(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)
        with pytest.raises(RuntimeError):
            tracer.install(enclave)

    def test_events_for_and_window(self):
        kernel, enclave = build()
        tracer = CallTracer().install(enclave)

        def handler2():
            yield Compute(50)
            return None

        enclave.urts.register("other", handler2)

        def app():
            yield from enclave.ocall("work", 100)
            yield from enclave.ocall("other")

        kernel.join(kernel.spawn(app()))
        assert len(tracer.events_for("work")) == 1
        assert len(tracer.events_for("other")) == 1
        assert tracer.window_cycles() > 0

    def test_traces_switchless_modes(self):
        from repro.api import make_backend
        from repro.core import ZcConfig

        kernel, enclave = build()
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))
        tracer = CallTracer().install(enclave)

        def app():
            yield from enclave.ocall("work", 400)

        kernel.join(kernel.spawn(app()))
        event = tracer.events[0]
        assert event.mode == "switchless"
        # The handler ran on a worker thread; host wall time is the 400
        # nominal cycles, stretched at most by SMT contention (1/0.62).
        assert 400 <= event.host_cycles < 700
