"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_KWARGS, main, run_experiment
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_run_quick_fig7(self, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "unaligned_GBps" in out
        assert "shape check: OK" in out

    def test_run_quick_sec3a(self, capsys):
        assert main(["run", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper_scaled_s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_experiment_returns_violation_count(self, capsys):
        assert run_experiment("fig13", quick=True) == 0

    def test_csv_export(self, capsys, tmp_path):
        assert main(["run", "fig7", "--quick", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().splitlines()
        assert lines[0] == "size_B,aligned_GBps,unaligned_GBps"
        assert len(lines) >= 3

    def test_every_experiment_has_a_table(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "table"), module.__name__


class TestTelemetryFlags:
    @pytest.fixture()
    def tiny_fig8(self, monkeypatch):
        # Shrink the quick fig8 sweep further: these tests exercise the
        # export plumbing, not the figure itself.
        monkeypatch.setitem(
            QUICK_KWARGS, "fig8", {"n_keys_sweep": (120,), "worker_counts": (2,)}
        )

    def test_telemetry_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--telemetry", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Cycle budget" in out
        assert "telemetry written to" in out
        for suffix in ("events.jsonl", "trace.json", "metrics.prom", "cycle_budget.txt"):
            assert (tmp_path / f"fig8.{suffix}").exists(), suffix

    def test_trace_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert (tmp_path / "fig8.trace.json").exists()
        # --trace alone does not print the cycle-budget table.
        assert "Cycle budget" not in out

    def test_no_flags_no_artifacts(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick"]) == 0
        assert list(tmp_path.iterdir()) == []
