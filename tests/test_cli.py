"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_KWARGS, main, run_experiment
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_run_quick_fig7(self, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "unaligned_GBps" in out
        assert "shape check: OK" in out

    def test_run_quick_sec3a(self, capsys):
        assert main(["run", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper_scaled_s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_experiment_returns_violation_count(self, capsys):
        assert run_experiment("fig13", quick=True) == 0

    def test_csv_export(self, capsys, tmp_path):
        assert main(["run", "fig7", "--quick", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().splitlines()
        assert lines[0] == "size_B,aligned_GBps,unaligned_GBps"
        assert len(lines) >= 3

    def test_every_experiment_has_a_table(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "table"), module.__name__


class TestTelemetryFlags:
    @pytest.fixture()
    def tiny_fig8(self, monkeypatch):
        # Shrink the quick fig8 sweep further: these tests exercise the
        # export plumbing, not the figure itself.
        monkeypatch.setitem(
            QUICK_KWARGS, "fig8", {"n_keys_sweep": (120,), "worker_counts": (2,)}
        )

    def test_telemetry_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--telemetry", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Cycle budget" in out
        assert "telemetry written to" in out
        for suffix in ("events.jsonl", "trace.json", "metrics.prom", "cycle_budget.txt"):
            assert (tmp_path / f"fig8.{suffix}").exists(), suffix

    def test_trace_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert (tmp_path / "fig8.trace.json").exists()
        # --trace alone does not print the cycle-budget table.
        assert "Cycle budget" not in out

    def test_no_flags_no_artifacts(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestRegressCommands:
    @pytest.fixture()
    def tiny_sec3a(self, monkeypatch):
        # The regression CLI is plumbing; keep the workload minimal.
        monkeypatch.setitem(
            QUICK_KWARGS, "sec3a", {"total_calls": 1_200, "g_pauses": 200}
        )

    def test_baseline_then_self_diff(self, capsys, tmp_path, tiny_sec3a):
        out_file = tmp_path / "base.json"
        assert (
            main(
                [
                    "baseline",
                    "--quick",
                    "--experiments",
                    "sec3a",
                    "--out",
                    str(out_file),
                    "--name",
                    "t",
                ]
            )
            == 0
        )
        assert out_file.exists()
        assert "baseline 't' written" in capsys.readouterr().out
        report_file = tmp_path / "diff.md"
        assert (
            main(["diff", str(out_file), "--report", str(report_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "Verdict: PASS" in out
        assert "Verdict: PASS" in report_file.read_text()

    def test_diff_against_second_snapshot(self, capsys, tmp_path, tiny_sec3a):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            assert (
                main(
                    [
                        "baseline",
                        "--quick",
                        "--experiments",
                        "sec3a",
                        "--out",
                        str(path),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert main(["diff", str(a), "--against", str(b)]) == 0
        assert "Verdict: PASS" in capsys.readouterr().out

    def test_baseline_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["baseline", "--experiments", "nope"])

    def test_audit_live(self, capsys, tiny_sec3a):
        assert main(["audit", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_audit_replay_from_export(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(
            QUICK_KWARGS, "fig8", {"n_keys_sweep": (120,), "worker_counts": (2,)}
        )
        assert main(["run", "fig8", "--quick", "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        events = tmp_path / "fig8.events.jsonl"
        assert main(["audit", "--events", str(events)]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_audit_without_target_errors(self):
        with pytest.raises(SystemExit):
            main(["audit"])


class TestServeObsFlags:
    QUICK = [
        "serve",
        "bench",
        "--shards",
        "2",
        "--seconds",
        "0.01",
        "--rate",
        "2000",
        "--backend",
        "intel",
    ]

    def test_slices_exceeding_shards_rejected(self):
        with pytest.raises(SystemExit, match="must not exceed shards"):
            main([*self.QUICK, "--slices", "4"])

    def test_nonpositive_slices_rejected(self):
        with pytest.raises(SystemExit, match="slices must be >= 1"):
            main([*self.QUICK, "--slices", "0"])

    def test_nonpositive_obs_interval_rejected(self):
        with pytest.raises(SystemExit, match="positive cycle count"):
            main([*self.QUICK, "--obs-interval", "0"])

    def test_obs_run_writes_the_window_stream(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main([*self.QUICK, "--obs", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "obs:" in text and "window(s)" in text
        stream = tmp_path / "serve.windows.jsonl"
        assert stream.exists()
        assert "obs-windows" in stream.read_text().splitlines()[0]

    def test_live_falls_back_to_plain_lines_off_tty(self, capsys, tmp_path):
        # capsys swaps in a non-TTY stdout: the console must degrade to
        # one plain line per window, no ANSI panel.
        out = tmp_path / "serve.json"
        assert main([*self.QUICK, "--live", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "[obs] window 1 " in text
        assert "\x1b[" not in text

    def test_diff_dispatches_on_the_obs_artifact(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        snap = tmp_path / "obs-base.json"
        assert main(
            [*self.QUICK, "--obs", "--out", str(out), "--obs-snapshot", str(snap)]
        ) == 0
        capsys.readouterr()
        assert main(["diff", str(snap), "--against", str(snap)]) == 0
        assert "obs baseline gate: OK" in capsys.readouterr().out


class TestScenarioFlags:
    """Arg hygiene for the scenario/trace serve flags and subcommands."""

    QUICK = ["serve", "bench", "--shards", "2", "--seconds", "0.01"]

    def test_unknown_scenario_lists_the_choices(self):
        with pytest.raises(SystemExit, match="steady-mixed"):
            main([*self.QUICK, "--scenario", "not-a-scenario"])

    def test_scenario_and_trace_mutually_exclusive(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("{}\n")
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([*self.QUICK, "--scenario", "steady-mixed",
                  "--trace", str(trace)])

    def test_unstamped_trace_fails_cleanly(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"name": "x"}\n')
        with pytest.raises(SystemExit, match="scenario-trace"):
            main([*self.QUICK, "--trace", str(trace)])

    def test_corrupt_trace_fails_cleanly(self, tmp_path):
        trace = tmp_path / "garbage.jsonl"
        trace.write_text("not json\n")
        with pytest.raises(SystemExit, match="unparsable"):
            main([*self.QUICK, "--trace", str(trace)])

    def test_missing_trace_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main([*self.QUICK, "--trace", str(tmp_path / "absent.jsonl")])

    def test_tampered_trace_fails_cleanly(self, tmp_path):
        from repro.scenarios import ScenarioSpec, generate_trace, write_trace

        trace = generate_trace(
            ScenarioSpec(name="t", seed=1, duration_s=0.01, rate_rps=500.0)
        )
        path = tmp_path / "t.jsonl"
        write_trace(trace, str(path))
        lines = path.read_text().splitlines()
        lines.pop()  # drop an event: count check must fire
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SystemExit, match="declares"):
            main([*self.QUICK, "--trace", str(path)])

    def test_trace_with_clients_rejected(self, tmp_path):
        from repro.scenarios import ScenarioSpec, generate_trace, write_trace

        path = tmp_path / "t.jsonl"
        write_trace(
            generate_trace(
                ScenarioSpec(name="t", seed=1, duration_s=0.01, rate_rps=500.0)
            ),
            str(path),
        )
        with pytest.raises(SystemExit, match="open-loop"):
            main([*self.QUICK, "--trace", str(path), "--clients", "2"])

    def test_unknown_app_rejected_with_choices(self):
        with pytest.raises(SystemExit, match="session"):
            main([*self.QUICK, "--apps", "kv:1,redis:2"])

    def test_duplicate_app_rejected(self):
        with pytest.raises(SystemExit, match="duplicate"):
            main([*self.QUICK, "--apps", "kv:1,kv:2"])

    def test_bad_app_weight_rejected(self):
        with pytest.raises(SystemExit, match="bad weight"):
            main([*self.QUICK, "--apps", "kv:heavy"])

    def test_apps_not_covering_trace_rejected(self, tmp_path):
        from repro.scenarios import ScenarioSpec, generate_trace, write_trace

        path = tmp_path / "t.jsonl"
        write_trace(
            generate_trace(
                ScenarioSpec(
                    name="t", seed=1, duration_s=0.01, rate_rps=500.0,
                    apps=(("kv", 1.0), ("session", 1.0)),
                )
            ),
            str(path),
        )
        with pytest.raises(SystemExit, match="installed app set"):
            main([*self.QUICK, "--trace", str(path), "--apps", "kv:1"])


class TestScenarioCommands:
    def test_list_names_every_scenario(self, capsys):
        from repro.scenarios import SCENARIO_NAMES

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out

    def test_gen_replay_and_gate_round_trip(self, capsys, tmp_path, monkeypatch):
        # gen writes a deterministic trace; replay produces a snapshot;
        # diff dispatches on the scenario-bench artifact and passes.
        monkeypatch.chdir(tmp_path)
        assert main(["scenarios", "gen", "hotkey-shift"]) == 0
        assert (tmp_path / "traces" / "hotkey-shift.trace.jsonl").exists()
        assert main(["scenarios", "gen", "hotkey-shift", "--check"]) == 0
        out = tmp_path / "bench.json"
        snap = tmp_path / "snap.json"
        assert main([
            "scenarios", "replay", "hotkey-shift",
            "--shards", "2",
            "--out", str(out), "--snapshot", str(snap),
        ]) == 0
        capsys.readouterr()
        assert main(["diff", str(snap)]) == 0
        assert "scenario baseline gate: OK" in capsys.readouterr().out

    def test_gen_check_flags_drift(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scenarios", "gen", "diurnal-kv"]) == 0
        path = tmp_path / "traces" / "diurnal-kv.trace.jsonl"
        lines = path.read_text().splitlines()
        lines.pop()
        path.write_text("\n".join(lines) + "\n")
        assert main(["scenarios", "gen", "diurnal-kv", "--check"]) == 1

    def test_replay_unknown_scenario_fails_cleanly(self):
        with pytest.raises(SystemExit, match="choices"):
            main(["scenarios", "replay", "nope"])

    def test_replay_missing_trace_fails_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="scenarios gen"):
            main(["scenarios", "replay", "flash-crowd"])
