"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_KWARGS, main, run_experiment
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_run_quick_fig7(self, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "unaligned_GBps" in out
        assert "shape check: OK" in out

    def test_run_quick_sec3a(self, capsys):
        assert main(["run", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper_scaled_s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_experiment_returns_violation_count(self, capsys):
        assert run_experiment("fig13", quick=True) == 0

    def test_csv_export(self, capsys, tmp_path):
        assert main(["run", "fig7", "--quick", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().splitlines()
        assert lines[0] == "size_B,aligned_GBps,unaligned_GBps"
        assert len(lines) >= 3

    def test_every_experiment_has_a_table(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "table"), module.__name__


class TestTelemetryFlags:
    @pytest.fixture()
    def tiny_fig8(self, monkeypatch):
        # Shrink the quick fig8 sweep further: these tests exercise the
        # export plumbing, not the figure itself.
        monkeypatch.setitem(
            QUICK_KWARGS, "fig8", {"n_keys_sweep": (120,), "worker_counts": (2,)}
        )

    def test_telemetry_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--telemetry", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Cycle budget" in out
        assert "telemetry written to" in out
        for suffix in ("events.jsonl", "trace.json", "metrics.prom", "cycle_budget.txt"):
            assert (tmp_path / f"fig8.{suffix}").exists(), suffix

    def test_trace_export(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick", "--trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert (tmp_path / "fig8.trace.json").exists()
        # --trace alone does not print the cycle-budget table.
        assert "Cycle budget" not in out

    def test_no_flags_no_artifacts(self, capsys, tmp_path, tiny_fig8):
        assert main(["run", "fig8", "--quick"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestRegressCommands:
    @pytest.fixture()
    def tiny_sec3a(self, monkeypatch):
        # The regression CLI is plumbing; keep the workload minimal.
        monkeypatch.setitem(
            QUICK_KWARGS, "sec3a", {"total_calls": 1_200, "g_pauses": 200}
        )

    def test_baseline_then_self_diff(self, capsys, tmp_path, tiny_sec3a):
        out_file = tmp_path / "base.json"
        assert (
            main(
                [
                    "baseline",
                    "--quick",
                    "--experiments",
                    "sec3a",
                    "--out",
                    str(out_file),
                    "--name",
                    "t",
                ]
            )
            == 0
        )
        assert out_file.exists()
        assert "baseline 't' written" in capsys.readouterr().out
        report_file = tmp_path / "diff.md"
        assert (
            main(["diff", str(out_file), "--report", str(report_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "Verdict: PASS" in out
        assert "Verdict: PASS" in report_file.read_text()

    def test_diff_against_second_snapshot(self, capsys, tmp_path, tiny_sec3a):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            assert (
                main(
                    [
                        "baseline",
                        "--quick",
                        "--experiments",
                        "sec3a",
                        "--out",
                        str(path),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert main(["diff", str(a), "--against", str(b)]) == 0
        assert "Verdict: PASS" in capsys.readouterr().out

    def test_baseline_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["baseline", "--experiments", "nope"])

    def test_audit_live(self, capsys, tiny_sec3a):
        assert main(["audit", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_audit_replay_from_export(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(
            QUICK_KWARGS, "fig8", {"n_keys_sweep": (120,), "worker_counts": (2,)}
        )
        assert main(["run", "fig8", "--quick", "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        events = tmp_path / "fig8.events.jsonl"
        assert main(["audit", "--events", str(events)]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_audit_without_target_errors(self):
        with pytest.raises(SystemExit):
            main(["audit"])


class TestServeObsFlags:
    QUICK = [
        "serve",
        "bench",
        "--shards",
        "2",
        "--seconds",
        "0.01",
        "--rate",
        "2000",
        "--backend",
        "intel",
    ]

    def test_slices_exceeding_shards_rejected(self):
        with pytest.raises(SystemExit, match="exceeds the shard count"):
            main([*self.QUICK, "--slices", "4"])

    def test_nonpositive_slices_rejected(self):
        with pytest.raises(SystemExit, match="at least 1"):
            main([*self.QUICK, "--slices", "0"])

    def test_nonpositive_obs_interval_rejected(self):
        with pytest.raises(SystemExit, match="positive cycle count"):
            main([*self.QUICK, "--obs-interval", "0"])

    def test_obs_run_writes_the_window_stream(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main([*self.QUICK, "--obs", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "obs:" in text and "window(s)" in text
        stream = tmp_path / "serve.windows.jsonl"
        assert stream.exists()
        assert "obs-windows" in stream.read_text().splitlines()[0]

    def test_live_falls_back_to_plain_lines_off_tty(self, capsys, tmp_path):
        # capsys swaps in a non-TTY stdout: the console must degrade to
        # one plain line per window, no ANSI panel.
        out = tmp_path / "serve.json"
        assert main([*self.QUICK, "--live", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "[obs] window 1 " in text
        assert "\x1b[" not in text

    def test_diff_dispatches_on_the_obs_artifact(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        snap = tmp_path / "obs-base.json"
        assert main(
            [*self.QUICK, "--obs", "--out", str(out), "--obs-snapshot", str(snap)]
        ) == 0
        capsys.readouterr()
        assert main(["diff", str(snap), "--against", str(snap)]) == 0
        assert "obs baseline gate: OK" in capsys.readouterr().out
