"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_KWARGS, main, run_experiment
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(EXPERIMENTS)

    def test_run_quick_fig7(self, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "unaligned_GBps" in out
        assert "shape check: OK" in out

    def test_run_quick_sec3a(self, capsys):
        assert main(["run", "sec3a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper_scaled_s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_experiment_returns_violation_count(self, capsys):
        assert run_experiment("fig13", quick=True) == 0

    def test_csv_export(self, capsys, tmp_path):
        assert main(["run", "fig7", "--quick", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().splitlines()
        assert lines[0] == "size_B,aligned_GBps,unaligned_GBps"
        assert len(lines) >= 3

    def test_every_experiment_has_a_table(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "table"), module.__name__
