"""Tests for the suite runner and markdown report generator."""

from repro.experiments.suite import (
    ExperimentOutcome,
    _markdown_table,
    render_markdown,
    run_suite,
)


class TestRunSuite:
    def test_subset_with_overrides(self):
        outcomes = run_suite(
            ["fig7", "sec5d"],
            overrides={
                "fig7": {"sizes": (512, 32_768), "ops": 40},
                "sec5d": {"record_sizes": (4096,), "records": 30},
            },
        )
        assert [o.exp_id for o in outcomes] == ["fig7", "sec5d"]
        assert all(o.ok for o in outcomes)
        assert all(o.rows for o in outcomes)


class TestRenderMarkdown:
    def make_outcome(self, ok=True):
        return ExperimentOutcome(
            exp_id="fig7",
            headers=["x", "y"],
            rows=[[1, 2.34567], ["a", "b"]],
            violations=[] if ok else ["expected something"],
            wall_seconds=1.5,
        )

    def test_markdown_structure(self):
        text = render_markdown([self.make_outcome()])
        assert text.startswith("# Reproduction report")
        assert "1/1 experiments match" in text
        assert "## fig7" in text
        assert "Shape check: **OK**" in text
        assert "| x | y |" in text
        assert "2.346" in text  # 4 significant digits

    def test_violations_listed(self):
        text = render_markdown([self.make_outcome(ok=False)])
        assert "0/1 experiments match" in text
        assert "VIOLATION: expected something" in text

    def test_markdown_table_shapes(self):
        table = _markdown_table(["a"], [[1], [2]])
        lines = table.splitlines()
        assert lines[0] == "| a |"
        assert lines[1] == "|---|"
        assert len(lines) == 4


class TestCliReport:
    def test_report_command_writes_file(self, tmp_path, capsys, monkeypatch):
        from repro import cli

        # Shrink to two fast experiments for the test.
        monkeypatch.setattr(
            cli,
            "QUICK_KWARGS",
            {"fig7": {"sizes": (512, 32_768), "ops": 40}},
        )
        from repro import experiments

        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"fig7": experiments.EXPERIMENTS["fig7"]}
        )
        monkeypatch.setattr(
            "repro.experiments.suite.EXPERIMENTS",
            {"fig7": experiments.EXPERIMENTS["fig7"]},
        )
        out = tmp_path / "report.md"
        assert cli.main(["report", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
