"""Fast, scaled-down executions of every experiment runner.

These verify the harness mechanics (structure, determinism, reports); the
full paper-shape assertions run at benchmark scale in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    sec3a,
    sec5d,
)
from repro.workloads.dynamic import DynamicSpec


class TestSec3a:
    def test_small_run_and_report(self):
        result = sec3a.run(total_calls=2000)
        assert {row.config for row in result.rows} == {"C1", "C2", "C3", "C4", "C5"}
        text = sec3a.report(result)
        assert "C1" in text and "paper_scaled_s" in text

    def test_shape_holds_even_at_small_scale(self):
        result = sec3a.run(total_calls=4000)
        assert sec3a.check_shape(result) == []


class TestFig7:
    def test_points_and_report(self):
        result = fig7.run(sizes=(512, 32_768), ops=50)
        assert len(result.points) == 4
        assert fig7.check_shape(result) == []
        assert "unaligned_GBps" in fig7.report(result)

    def test_throughput_positive_and_bounded(self):
        result = fig7.run(sizes=(1024,), ops=20)
        for point in result.points:
            assert 0 < point.gbps < 50


class TestFig13:
    def test_speedups_and_report(self):
        result = fig13.run(sizes=(512, 32_768), ops=50)
        assert fig13.check_shape(result) == []
        assert "speedup_un" in fig13.report(result)

    def test_speedup_accessor(self):
        result = fig13.run(sizes=(32_768,), ops=20)
        assert result.speedup(32_768, False) > result.speedup(32_768, True)


class TestFig8And9:
    @pytest.fixture(scope="class")
    def small_result(self):
        return fig8.run(n_keys_sweep=(400,), worker_counts=(2,), n_threads=2)

    def test_rows_cover_all_configs(self, small_result):
        assert set(small_result.labels) == {
            "no_sl",
            "zc",
            "i-fseeko-2",
            "i-fwrite-2",
            "i-fread-2",
            "i-frw-2",
            "i-all-2",
        }

    def test_zc_beats_no_sl_even_small(self, small_result):
        assert small_result.mean_latency("zc") < small_result.mean_latency("no_sl")

    def test_latency_percentiles_ordered(self, small_result):
        for row in small_result.rows:
            assert row.mean_latency_us <= row.p99_latency_us <= row.max_latency_us

    def test_fig9_reuses_base(self, small_result):
        result9 = fig9.run(base=small_result)
        assert result9.base is small_result
        assert "mean_cpu_pct" in fig9.report(result9)
        for label in small_result.labels:
            assert 0 < small_result.mean_cpu(label) <= 100


class TestFig10:
    def test_structure_small(self):
        result = fig10.run(worker_counts=(2,), chunks_per_file=8, files_per_thread=1)
        assert "zc" in result.labels
        assert all(row.latency_s > 0 for row in result.rows)
        assert "switchless_frac" in fig10.report(result)


class TestSec5d:
    def test_speedup_in_paper_band_even_small(self):
        result = sec5d.run(record_sizes=(4096, 16_384), records=40)
        assert sec5d.check_shape(result) == []
        assert "speedup_pct" in sec5d.report(result)

    def test_transfers_are_deterministic(self):
        a = sec5d.run(record_sizes=(8192,), records=20)
        b = sec5d.run(record_sizes=(8192,), records=20)
        assert a.points == b.points


class TestFig11And12:
    SPEC = DynamicSpec(tau_seconds=0.002, periods_per_phase=2, base_ops=64, peak_ops=256)

    @pytest.fixture(scope="class")
    def small_result(self):
        return fig11.run(worker_counts=(2,), spec=self.SPEC)

    def test_period_counts(self, small_result):
        for run_ in small_result.runs:
            assert len(run_.reader_periods) == 6
            assert len(run_.writer_periods) == 6

    def test_reader_targets_follow_schedule(self, small_result):
        run_ = small_result.get("no_sl")
        targets = [p.target_ops for p in run_.reader_periods]
        # Two doubling periods reach 128 (peak cap 256 never hit), then
        # two constant periods and two halving periods.
        assert targets == [64, 128, 128, 128, 128, 64]

    def test_fig12_reuses_base(self, small_result):
        result12 = fig12.run(base=small_result)
        assert "peak_cpu" in fig12.report(result12)

    def test_check_shape_handles_single_worker_count(self, small_result):
        """Regression: the shape checks must not assume both worker
        counts are present (quick runs sweep only one)."""
        fig11.check_shape(small_result)  # must not raise
        fig12.check_shape(fig12.run(base=small_result))  # must not raise
