"""Tests for the experiment system-under-test builders."""

import pytest

from repro.core.backend import ZcSwitchlessBackend
from repro.experiments.common import (
    BackendSpec,
    build_stack,
    intel_spec,
    no_sl_spec,
    zc_spec,
)
from repro.sgx.backend import RegularBackend
from repro.switchless.backend import IntelSwitchlessBackend


class TestSpecs:
    def test_labels_follow_paper_conventions(self):
        assert no_sl_spec().label == "no_sl"
        assert zc_spec().label == "zc"
        assert intel_spec("frw", {"fread", "fwrite"}, 4).label == "i-frw-4"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendSpec(label="x", kind="mystery")


class TestBuildStack:
    def test_no_sl_uses_regular_backend(self):
        stack = build_stack(no_sl_spec())
        assert isinstance(stack.enclave.backend, RegularBackend)
        stack.finish()

    def test_intel_backend_with_config(self):
        stack = build_stack(intel_spec("all", {"read", "write"}, 3))
        backend = stack.enclave.backend
        assert isinstance(backend, IntelSwitchlessBackend)
        assert backend.config.num_uworkers == 3
        assert backend.config.is_switchless("read")
        stack.finish()

    def test_zc_backend(self):
        stack = build_stack(zc_spec())
        assert isinstance(stack.enclave.backend, ZcSwitchlessBackend)
        stack.finish()

    def test_devices_and_files_present(self):
        stack = build_stack(no_sl_spec(), files={"/data": b"abc"})
        assert stack.fs.exists("/dev/null")
        assert stack.fs.exists("/dev/zero")
        assert stack.fs.contents("/data") == b"abc"
        stack.finish()

    def test_cpu_measurement_window(self):
        from repro.sim import Compute

        stack = build_stack(no_sl_spec())
        stack.start_measuring()

        def busy():
            yield Compute(100_000)

        t = stack.kernel.spawn(busy())
        stack.kernel.join(t)
        usage = stack.cpu_usage_pct()
        assert usage == pytest.approx(100.0 / 8, rel=0.05)
        stack.finish()

    def test_measurement_requires_start(self):
        stack = build_stack(no_sl_spec())
        with pytest.raises(RuntimeError):
            stack.cpu_usage_pct()
        stack.finish()

    def test_finish_stops_backend_threads(self):
        stack = build_stack(zc_spec())
        stack.kernel.run(until_time=100_000)
        stack.finish()
        backend = stack.enclave.backend
        assert all(t.done for t in backend.worker_threads)
