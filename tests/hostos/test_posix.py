"""Tests for the PosixHost ocall handlers (cost + semantics)."""

import pytest

from repro.hostos import DevNull, DevZero, HostFileSystem, PosixHost, SyscallCostModel
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, MachineSpec


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    fs.mount_device("/dev/zero", DevZero())
    host = PosixHost(fs)
    urts = UntrustedRuntime()
    host.install(urts)
    enclave = Enclave(kernel, urts)
    return kernel, fs, host, enclave


class TestStdioHandlers:
    def test_full_stdio_round_trip_through_ocalls(self):
        kernel, fs, host, enclave = build()

        def app():
            fd = yield from enclave.ocall("fopen", "/data.bin", "w+")
            yield from enclave.ocall("fwrite", fd, b"hello world", in_bytes=11)
            yield from enclave.ocall("fseeko", fd, 0, 0)
            data = yield from enclave.ocall("fread", fd, 5, out_bytes=5)
            yield from enclave.ocall("fclose", fd)
            return data

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == b"hello"
        assert fs.contents("/data.bin") == b"hello world"
        assert fs.open_fd_count() == 0

    def test_handler_costs_scale_with_size(self):
        costs = SyscallCostModel()
        small = costs.fwrite_cycles(8)
        large = costs.fwrite_cycles(4096)
        assert large > small
        # kissdb-style 8-byte ops must be short relative to a transition.
        assert small < 13_500

    def test_crypto_chunks_are_about_6x_kissdb_calls(self):
        """§V-B: the crypto pipeline's fread/fwrite are ~6x longer than
        kissdb's 8-byte stdio calls."""
        costs = SyscallCostModel()
        kissdb_call = costs.fread_cycles(8)
        crypto_call = costs.fread_cycles(4096)
        assert 4 < crypto_call / kissdb_call < 9


class TestSyscallHandlers:
    def test_lmbench_style_word_io(self):
        kernel, fs, host, enclave = build()

        def app():
            zero_fd = yield from enclave.ocall("open", "/dev/zero", "r")
            null_fd = yield from enclave.ocall("open", "/dev/null", "w")
            word = yield from enclave.ocall("read", zero_fd, 8, out_bytes=8)
            written = yield from enclave.ocall("write", null_fd, word, in_bytes=8)
            yield from enclave.ocall("close", zero_fd)
            yield from enclave.ocall("close", null_fd)
            return word, written

        t = kernel.spawn(app())
        kernel.join(t)
        word, written = t.result
        assert word == bytes(8)
        assert written == 8

    def test_word_syscall_is_short_call(self):
        """lmbench read/write are the canonical short ocalls: much cheaper
        than the enclave transition, hence good switchless candidates."""
        costs = SyscallCostModel()
        assert costs.dev_read_cycles(8) < 2000
        assert costs.dev_write_cycles(8) < 2000

    def test_stat_family(self):
        kernel, fs, host, enclave = build()
        fs.create("/some-file", b"0123456789")

        def app():
            st = yield from enclave.ocall("stat", "/some-file", out_bytes=64)
            fd = yield from enclave.ocall("open", "/some-file", "r")
            fst = yield from enclave.ocall("fstat", fd, out_bytes=64)
            yield from enclave.ocall("close", fd)
            dev = yield from enclave.ocall("stat", "/dev/zero", out_bytes=64)
            return st, fst, dev

        t = kernel.spawn(app())
        kernel.join(t)
        st, fst, dev = t.result
        assert st == {"st_size": 10, "is_device": 0}
        assert fst == {"st_size": 10, "is_device": 0}
        assert dev == {"st_size": 0, "is_device": 1}

    def test_stat_missing_file_faults(self):
        kernel, fs, host, enclave = build()

        def app():
            yield from enclave.ocall("stat", "/missing")

        kernel.spawn(app())
        import pytest as _pytest

        with _pytest.raises(FileNotFoundError):
            kernel.run()

    def test_null_syscall_is_cheapest(self):
        costs = SyscallCostModel()
        assert costs.syscall_cycles < costs.fstat_cycles < costs.stat_cycles
