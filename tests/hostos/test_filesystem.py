"""Tests for the in-memory host filesystem."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hostos import DevNull, DevZero, HostFileSystem
from repro.hostos.filesystem import (
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    BadFileDescriptor,
    FileSystemError,
)


@pytest.fixture
def fs():
    return HostFileSystem()


class TestOpenModes:
    def test_read_missing_file_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.open("/missing", "r")

    def test_write_mode_truncates(self, fs):
        fs.create("/f", b"old-contents")
        fd = fs.open("/f", "w")
        fs.write(fd, b"new")
        fs.close(fd)
        assert fs.contents("/f") == b"new"

    def test_append_mode_positions_at_eof(self, fs):
        fs.create("/f", b"abc")
        fd = fs.open("/f", "a")
        fs.write(fd, b"def")
        fs.close(fd)
        assert fs.contents("/f") == b"abcdef"

    def test_read_plus_allows_read_and_write(self, fs):
        fs.create("/f", b"hello")
        fd = fs.open("/f", "r+")
        assert fs.read(fd, 2) == b"he"
        fs.write(fd, b"LLO")
        fs.close(fd)
        assert fs.contents("/f") == b"heLLO"

    def test_write_only_handle_rejects_read(self, fs):
        fd = fs.open("/f", "w")
        with pytest.raises(FileSystemError):
            fs.read(fd, 1)

    def test_read_only_handle_rejects_write(self, fs):
        fs.create("/f", b"x")
        fd = fs.open("/f", "r")
        with pytest.raises(FileSystemError):
            fs.write(fd, b"y")

    def test_unsupported_mode_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.open("/f", "rb+")

    def test_bad_fd_raises(self, fs):
        with pytest.raises(BadFileDescriptor):
            fs.read(999, 1)
        with pytest.raises(BadFileDescriptor):
            fs.close(999)


class TestReadWriteSeek:
    def test_sequential_read(self, fs):
        fs.create("/f", b"0123456789")
        fd = fs.open("/f", "r")
        assert fs.read(fd, 4) == b"0123"
        assert fs.read(fd, 4) == b"4567"
        assert fs.read(fd, 4) == b"89"
        assert fs.read(fd, 4) == b""

    def test_seek_set_cur_end(self, fs):
        fs.create("/f", b"0123456789")
        fd = fs.open("/f", "r+")
        assert fs.seek(fd, 4, SEEK_SET) == 4
        assert fs.read(fd, 1) == b"4"
        assert fs.seek(fd, 2, SEEK_CUR) == 7
        assert fs.read(fd, 1) == b"7"
        assert fs.seek(fd, -1, SEEK_END) == 9
        assert fs.read(fd, 1) == b"9"

    def test_sparse_write_zero_fills(self, fs):
        fd = fs.open("/f", "w")
        fs.seek(fd, 5, SEEK_SET)
        fs.write(fd, b"x")
        assert fs.contents("/f") == b"\x00\x00\x00\x00\x00x"

    def test_overwrite_middle(self, fs):
        fs.create("/f", b"aaaaaa")
        fd = fs.open("/f", "r+")
        fs.seek(fd, 2, SEEK_SET)
        fs.write(fd, b"XY")
        assert fs.contents("/f") == b"aaXYaa"

    def test_negative_seek_rejected(self, fs):
        fs.create("/f", b"abc")
        fd = fs.open("/f", "r")
        with pytest.raises(FileSystemError):
            fs.seek(fd, -10, SEEK_SET)

    def test_independent_handle_positions(self, fs):
        fs.create("/f", b"0123456789")
        fd1 = fs.open("/f", "r")
        fd2 = fs.open("/f", "r")
        assert fs.read(fd1, 3) == b"012"
        assert fs.read(fd2, 3) == b"012"

    def test_unlink(self, fs):
        fs.create("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileNotFoundError):
            fs.unlink("/f")


class TestDevices:
    def test_dev_null_discards(self, fs):
        null = DevNull()
        fs.mount_device("/dev/null", null)
        fd = fs.open("/dev/null", "w")
        assert fs.write(fd, b"data") == 4
        assert fs.read(fs.open("/dev/null", "r"), 8) == b""
        assert null.bytes_discarded == 4

    def test_dev_zero_reads_zeroes(self, fs):
        fs.mount_device("/dev/zero", DevZero())
        fd = fs.open("/dev/zero", "r")
        assert fs.read(fd, 8) == bytes(8)

    def test_device_seek_is_noop(self, fs):
        fs.mount_device("/dev/zero", DevZero())
        fd = fs.open("/dev/zero", "r")
        assert fs.seek(fd, 100, SEEK_SET) == 0


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=64),  # seek target
            st.binary(min_size=0, max_size=32),  # payload
        ),
        max_size=30,
    )
)
def test_write_read_matches_reference_bytearray(ops):
    """Property: our FS behaves exactly like a seek/write on a bytearray."""
    fs = HostFileSystem()
    fd = fs.open("/f", "w+")
    reference = bytearray()
    for target, payload in ops:
        fs.seek(fd, target, SEEK_SET)
        fs.write(fd, payload)
        if target > len(reference):
            reference.extend(bytes(target - len(reference)))
        end = target + len(payload)
        if end > len(reference):
            reference.extend(bytes(end - len(reference)))
        reference[target:end] = payload
    assert fs.contents("/f") == bytes(reference)
