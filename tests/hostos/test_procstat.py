"""Tests for /proc/stat-style CPU accounting."""

import pytest

from repro.hostos import CpuUsageMonitor, ProcStat
from repro.sim import Compute, Kernel, MachineSpec, Sleep


class TestProcStat:
    def test_usage_between_samples(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        stat = ProcStat(kernel)

        def busy():
            yield Compute(10_000)

        s0 = stat.sample()
        kernel.spawn(busy())
        kernel.run()
        s1 = stat.sample()
        window = stat.usage_between(s0, s1)
        # One of two cores busy for the whole window.
        assert window.usage_pct == pytest.approx(50.0)

    def test_by_kind_breakdown_percentages(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        stat = ProcStat(kernel)

        def prog():
            yield Compute(1000)

        s0 = stat.sample()
        kernel.spawn(prog(), kind="app")
        kernel.spawn(prog(), kind="worker")
        kernel.run()
        window = stat.usage_between(s0, stat.sample())
        assert window.by_kind_pct["app"] == pytest.approx(50.0)
        assert window.by_kind_pct["worker"] == pytest.approx(50.0)

    def test_unordered_samples_rejected(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1))
        stat = ProcStat(kernel)
        s = stat.sample()
        with pytest.raises(ValueError):
            stat.usage_between(s, s)


class TestCpuUsageMonitor:
    def test_monitor_records_time_series(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        monitor = CpuUsageMonitor(kernel, interval_cycles=1000).start()

        def duty_cycle():
            # 50% duty: busy 500, idle 500, repeated.
            for _ in range(8):
                yield Compute(500)
                yield Sleep(500)

        t = kernel.spawn(duty_cycle())
        kernel.join(t)
        monitor.stop()
        kernel.run(until_time=kernel.now + 2000)
        assert len(monitor.windows) >= 7
        # One thread at 50% duty on a 2-core machine -> ~25% usage.
        assert monitor.mean_usage_pct() == pytest.approx(25.0, abs=3.0)

    def test_series_is_time_ordered_seconds(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, freq_hz=1e9))
        monitor = CpuUsageMonitor(kernel, interval_cycles=1e6).start()

        def prog():
            yield Compute(5e6)

        kernel.join(kernel.spawn(prog()))
        monitor.stop()
        series = monitor.series()
        times = [t for t, _ in series]
        assert times == sorted(times)
        assert all(0 <= pct <= 100 for _, pct in series)
