"""Cross-backend equivalence: results must not depend on the call path.

The three execution modes (regular, Intel switchless, ZC-SWITCHLESS) only
change *where and when* a host handler runs — never its result.  These
tests run identical workloads under all three backends and require
bit-identical outcomes, while timing and CPU usage are allowed (and
expected) to differ.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import DevNull, DevZero, HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, MachineSpec
from repro.switchless import SwitchlessConfig

ALL_STDIO = frozenset({"fopen", "fclose", "fseeko", "fread", "fwrite", "ftell"})


def build(mode: str):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    fs.mount_device("/dev/zero", DevZero())
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    if mode == "intel":
        enclave.set_backend(
            make_backend("intel",
                SwitchlessConfig(switchless_ocalls=ALL_STDIO, num_uworkers=2)
            )
        )
    elif mode == "zc":
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))
    return kernel, fs, enclave


MODES = ("regular", "intel", "zc")


class TestKissdbEquivalence:
    def run_workload(self, mode, operations):
        kernel, fs, enclave = build(mode)
        db = KissDB(enclave, "/db", hash_table_size=8)

        def app():
            yield from db.open()
            reads = []
            for op, key_i, value_i in operations:
                key = key_i.to_bytes(8, "big")
                if op == "put":
                    yield from db.put(key, value_i.to_bytes(8, "big"))
                else:
                    value = yield from db.get(key)
                    reads.append(value)
            yield from db.close()
            return reads

        thread = kernel.spawn(app())
        kernel.join(thread)
        contents = fs.contents("/db")
        enclave.stop_backend()
        kernel.run()
        return thread.result, contents

    def test_fixed_workload_identical_across_backends(self):
        operations = [
            ("put", 1, 11),
            ("put", 2, 22),
            ("get", 1, 0),
            ("put", 1, 111),
            ("get", 1, 0),
            ("get", 3, 0),
            ("put", 9, 99),
            ("get", 9, 0),
        ]
        results = {mode: self.run_workload(mode, operations) for mode in MODES}
        baseline_reads, baseline_file = results["regular"]
        for mode in ("intel", "zc"):
            reads, file_bytes = results[mode]
            assert reads == baseline_reads, f"{mode} returned different values"
            assert file_bytes == baseline_file, f"{mode} produced a different file"

    @settings(max_examples=10, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["put", "get"]),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_random_workloads_equivalent(self, operations):
        baseline = self.run_workload("regular", operations)
        for mode in ("intel", "zc"):
            assert self.run_workload(mode, operations) == baseline


class TestCryptoPipelineEquivalence:
    def run_pipeline(self, mode):
        from repro.apps import CryptoFileApp
        from repro.crypto import FastXorEngine

        kernel, fs, enclave = build(mode)
        plaintext = bytes(i % 253 for i in range(6 * 4096 + 99))
        fs.create("/plain", plaintext)
        app = CryptoFileApp(
            enclave, lambda: FastXorEngine(bytes(32), bytes(16)), chunk_bytes=4096
        )

        def pipeline():
            yield from app.encrypt_file("/plain", "/cipher")
            yield from app.decrypt_file("/cipher", "/round")

        kernel.join(kernel.spawn(pipeline()))
        cipher = fs.contents("/cipher")
        round_trip = fs.contents("/round")
        enclave.stop_backend()
        kernel.run()
        return cipher, round_trip, plaintext

    def test_ciphertext_identical_across_backends(self):
        baseline = self.run_pipeline("regular")
        for mode in ("intel", "zc"):
            assert self.run_pipeline(mode) == baseline
        cipher, round_trip, plaintext = baseline
        assert round_trip == plaintext
        assert plaintext[:64] not in cipher


class TestTimingDiffers:
    def test_switchless_modes_are_faster_but_equivalent(self):
        """Same bytes, different clocks: the whole point of the paper."""

        def run(mode):
            kernel, fs, enclave = build(mode)
            db = KissDB(enclave, "/db", hash_table_size=64)

            def app():
                yield from db.open()
                for i in range(200):
                    yield from db.put(i.to_bytes(8, "big"), i.to_bytes(8, "little"))
                yield from db.close()

            kernel.join(kernel.spawn(app()))
            contents = fs.contents("/db")
            enclave.stop_backend()
            kernel.run()
            return kernel.now, contents

        regular_time, regular_file = run("regular")
        zc_time, zc_file = run("zc")
        assert zc_file == regular_file
        assert zc_time < regular_time
