"""§IV-E security analysis, as executable tests.

The paper argues the ZC scheduler lives in the *untrusted* runtime, so a
malicious host can tamper with it — but the worst it can achieve is
denial of service (fewer/no switchless workers); enclave data integrity
and the correctness of results are unaffected, because every call falls
back to a regular (transitioned) ocall.

These tests play the malicious host: killing workers mid-run, pausing
everything, and injecting absurd scheduler decisions — and assert the
application's *results* stay bit-identical while only performance
degrades.
"""

import pytest

from repro.apps import KissDB
from repro.api import make_backend
from repro.core import ZcConfig
from repro.hostos import HostFileSystem, PosixHost
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Kernel, MachineSpec


def build(config=None):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    fs = HostFileSystem()
    urts = UntrustedRuntime()
    PosixHost(fs).install(urts)
    enclave = Enclave(kernel, urts)
    backend = make_backend("zc", config or ZcConfig(enable_scheduler=False))
    enclave.set_backend(backend)
    return kernel, fs, enclave, backend


def kissdb_workload(kernel, enclave, n_keys=300, attack=None, attack_at=None):
    db = KissDB(enclave, "/db", hash_table_size=32)

    def client():
        yield from db.open()
        for i in range(n_keys):
            if attack is not None and i == attack_at:
                attack()
            yield from db.put(i.to_bytes(8, "big"), (i * 3).to_bytes(8, "little"))
        values = []
        for i in range(n_keys):
            value = yield from db.get(i.to_bytes(8, "big"))
            values.append(value)
        yield from db.close()
        return values

    thread = kernel.spawn(client())
    kernel.join(thread)
    return thread.result, kernel.now


EXPECTED = [(i * 3).to_bytes(8, "little") for i in range(300)]


class TestSchedulerTamperingIsOnlyDoS:
    def test_killing_all_workers_mid_run_preserves_results(self):
        kernel, fs, enclave, backend = build()

        def kill_workers():
            # Malicious untrusted scheduler: terminate every worker.
            for worker in backend.workers:
                worker.request_exit()

        values, _ = kissdb_workload(
            kernel, enclave, attack=kill_workers, attack_at=100
        )
        assert values == EXPECTED
        # After the attack, calls degrade to regular/fallback, not errors.
        assert enclave.stats.total_fallback > 0

    def test_pausing_all_workers_degrades_performance_only(self):
        baseline_kernel, _, baseline_enclave, _ = build()
        baseline_values, baseline_time = kissdb_workload(
            baseline_kernel, baseline_enclave
        )

        kernel, fs, enclave, backend = build()

        def pause_everything():
            backend.set_active_workers(0)

        values, attacked_time = kissdb_workload(
            kernel, enclave, attack=pause_everything, attack_at=0
        )
        assert values == baseline_values == EXPECTED
        # Pure DoS: same results, more time.
        assert attacked_time > baseline_time

    def test_flapping_scheduler_decisions_preserve_results(self):
        kernel, fs, enclave, backend = build()
        flip = [0]

        def flap():
            flip[0] = (flip[0] + 1) % 2
            backend.set_active_workers(4 * flip[0])

        db_values = []
        db = KissDB(enclave, "/db", hash_table_size=32)

        def client():
            yield from db.open()
            for i in range(200):
                if i % 10 == 0:
                    flap()
                yield from db.put(i.to_bytes(8, "big"), bytes(8))
            for i in range(200):
                value = yield from db.get(i.to_bytes(8, "big"))
                db_values.append(value)
            yield from db.close()

        kernel.join(kernel.spawn(client()))
        assert db_values == [bytes(8)] * 200

    def test_killed_workers_cannot_corrupt_file_contents(self):
        """The integrity claim: attack or not, the database file bytes
        are identical."""
        kernel_a, fs_a, enclave_a, _ = build()
        kissdb_workload(kernel_a, enclave_a)

        kernel_b, fs_b, enclave_b, backend_b = build()

        def kill_half():
            for worker in backend_b.workers[::2]:
                worker.request_exit()

        kissdb_workload(kernel_b, enclave_b, attack=kill_half, attack_at=50)
        assert fs_a.contents("/db") == fs_b.contents("/db")
