"""Failure-injection tests: errors crossing the enclave boundary.

Host handlers can fail (missing files, bad descriptors, injected faults).
On real SGX the error crosses the boundary as a return value; here the
``HostFault`` mechanism must (1) re-raise on the *calling* thread for
every backend, and (2) leave worker threads alive and reusable.
"""

import pytest

from repro.api import make_backend
from repro.core import ZcConfig
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.urts import UnknownOcallError
from repro.sim import Compute, Kernel, MachineSpec, ThreadState
from repro.switchless import SwitchlessConfig


class InjectedFault(RuntimeError):
    pass


def build(backend=None):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if backend is not None:
        enclave.set_backend(backend)

    calls = {"count": 0}

    def flaky(fail: bool):
        yield Compute(500, tag="host-flaky")
        calls["count"] += 1
        if fail:
            raise InjectedFault("boom")
        return "ok"

    urts.register("flaky", flaky)
    return kernel, enclave, calls


BACKENDS = {
    "regular": lambda: None,
    "intel": lambda: make_backend("intel",
        SwitchlessConfig(switchless_ocalls=frozenset({"flaky"}), num_uworkers=2)
    ),
    "zc": lambda: make_backend("zc", ZcConfig(enable_scheduler=False)),
}


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestFaultPropagation:
    def test_fault_reraised_on_calling_thread(self, backend_name):
        kernel, enclave, calls = build(BACKENDS[backend_name]())
        caught = []

        def app():
            try:
                yield from enclave.ocall("flaky", True)
            except InjectedFault as exc:
                caught.append(str(exc))
            result = yield from enclave.ocall("flaky", False)
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert caught == ["boom"]
        assert t.result == "ok"
        assert calls["count"] == 2

    def test_workers_survive_faulting_calls(self, backend_name):
        backend = BACKENDS[backend_name]()
        kernel, enclave, calls = build(backend)

        def app():
            for i in range(10):
                try:
                    yield from enclave.ocall("flaky", i % 2 == 0)
                except InjectedFault:
                    pass

        kernel.join(kernel.spawn(app()))
        assert calls["count"] == 10
        if backend is not None:
            workers = getattr(backend, "worker_threads", [])
            assert all(w.state is not ThreadState.DONE for w in workers)

    def test_unknown_ocall_fault(self, backend_name):
        kernel, enclave, _ = build(BACKENDS[backend_name]())

        def app():
            yield from enclave.ocall("does_not_exist")

        kernel.spawn(app())
        with pytest.raises(UnknownOcallError):
            kernel.run()


class TestFaultAccounting:
    def test_faulting_calls_still_recorded_in_stats(self):
        kernel, enclave, _ = build(
            make_backend("zc", ZcConfig(enable_scheduler=False))
        )

        def app():
            try:
                yield from enclave.ocall("flaky", True)
            except InjectedFault:
                pass

        kernel.join(kernel.spawn(app()))
        site = enclave.stats.by_name["flaky"]
        assert site.calls == 1
        assert site.switchless == 1  # executed switchlessly, then faulted

    def test_fault_during_regular_fallback(self):
        """A fault on the fallback path (no idle worker) also propagates."""
        backend = make_backend("zc",
            ZcConfig(enable_scheduler=False, initial_workers=0)
        )
        kernel, enclave, _ = build(backend)
        caught = []

        def app():
            try:
                yield from enclave.ocall("flaky", True)
            except InjectedFault:
                caught.append(True)

        kernel.join(kernel.spawn(app()))
        assert caught == [True]
        assert backend.stats.fallback_count == 1
