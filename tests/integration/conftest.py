"""Live invariant auditing for the integration suite (opt-in).

With ``pytest --audit-invariants``, every :class:`~repro.sim.Kernel` an
integration test constructs is attached to a telemetry session carrying
an :class:`~repro.regress.InvariantAuditor`, so the paper-level scheduler
guarantees (§IV-A/§IV-C — see ``docs/observability.md``) are asserted on
the *real* workloads these tests run, not just on purpose-built fixtures.
A violation in any audited kernel fails the test that built it, with the
offending event window in the message.
"""

import itertools

import pytest


@pytest.fixture(autouse=True)
def audit_invariants(request, monkeypatch):
    """Attach invariant checkers to every kernel the test creates."""
    if not request.config.getoption("--audit-invariants"):
        yield
        return

    from repro.regress import attach_auditor
    from repro.sim import kernel as kernel_module
    from repro.telemetry import TelemetrySession

    auditors = []
    session = TelemetrySession(
        on_attach=lambda capture: auditors.append(attach_auditor(capture))
    )
    counter = itertools.count()
    real_init = kernel_module.Kernel.__init__

    def attaching_init(self, *args, **kwargs):
        real_init(self, *args, **kwargs)
        session.attach(self, label=f"{request.node.name}[{next(counter)}]")

    monkeypatch.setattr(kernel_module.Kernel, "__init__", attaching_init)
    with session:
        yield
    violations = []
    for auditor in auditors:
        # Most tests never finalize a capture, so there is no final ledger
        # snapshot; finish() then runs only the streaming checks.
        violations.extend(auditor.finish())
    assert not violations, "paper invariants violated:\n" + "\n".join(
        f"  {violation}" for violation in violations
    )
