"""Full-stack determinism: identical runs produce identical results.

The simulator has no wall clock and no unseeded randomness; every
experiment must therefore be bit-reproducible.  These tests run scaled
experiment cells twice and compare everything — the property that makes
the benchmark tables in EXPERIMENTS.md stable artifacts rather than
samples.
"""

from repro.experiments import fig7, fig8, fig10, sec3a


class TestExperimentDeterminism:
    def test_fig7_identical_runs(self):
        a = fig7.run(sizes=(512, 4096), ops=50)
        b = fig7.run(sizes=(512, 4096), ops=50)
        assert a.points == b.points

    def test_sec3a_identical_runs(self):
        a = sec3a.run(total_calls=2000)
        b = sec3a.run(total_calls=2000)
        assert a.rows == b.rows

    def test_fig8_identical_runs_including_zc(self):
        """zc involves workers, a scheduler and pool reallocs — all of it
        must still be deterministic."""
        kwargs = {"n_keys_sweep": (300,), "worker_counts": (2,), "n_threads": 2}
        a = fig8.run(**kwargs)
        b = fig8.run(**kwargs)
        assert a.rows == b.rows

    def test_fig10_identical_runs(self):
        kwargs = {"worker_counts": (2,), "chunks_per_file": 8, "files_per_thread": 1}
        a = fig10.run(**kwargs)
        b = fig10.run(**kwargs)
        assert a.rows == b.rows
