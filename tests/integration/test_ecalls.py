"""Tests for switchless ecalls (the reverse call direction).

The paper focuses its evaluation on ocalls but notes the techniques
"can equally be used for ecalls" (§II); the SDK supports both.  These
tests cover regular named ecalls, Intel switchless ecalls via trusted
workers, and the ZC ecall runtime.
"""

import pytest

from repro.core import ZcConfig, ZcEcallRuntime
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, MachineSpec
from repro.api import make_backend
from repro.switchless import SwitchlessConfig


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def seal(data: bytes):
        yield Compute(2_000, tag="enclave-seal")
        return bytes(b ^ 0xFF for b in data)

    def get_counter():
        yield Compute(300, tag="enclave-counter")
        return 42

    enclave.trts.register_many({"seal": seal, "get_counter": get_counter})
    return kernel, enclave


class TestRegularEcalls:
    def test_named_ecall_round_trip(self):
        kernel, enclave = build()

        def host_app():
            sealed = yield from enclave.ecall_named("seal", b"\x00\x01", in_bytes=2, out_bytes=2)
            return sealed

        t = kernel.spawn(host_app())
        kernel.join(t)
        assert t.result == b"\xff\xfe"
        site = enclave.ecall_stats.by_name["seal"]
        assert site.regular == 1
        # Regular ecall pays the full transition.
        assert site.mean_latency_cycles > enclave.cost.t_es

    def test_unknown_ecall_raises_on_caller(self):
        from repro.sgx.trts import UnknownEcallError

        kernel, enclave = build()

        def host_app():
            yield from enclave.ecall_named("nope")

        kernel.spawn(host_app())
        with pytest.raises(UnknownEcallError):
            kernel.run()

    def test_ecall_fault_propagates(self):
        kernel, enclave = build()

        def bad():
            yield Compute(10)
            raise ValueError("enclave abort")

        enclave.trts.register("bad", bad)
        caught = []

        def host_app():
            try:
                yield from enclave.ecall_named("bad")
            except ValueError as exc:
                caught.append(str(exc))

        kernel.join(kernel.spawn(host_app()))
        assert caught == ["enclave abort"]


class TestIntelSwitchlessEcalls:
    def test_switchless_ecall_avoids_transition(self):
        kernel, enclave = build()
        backend = make_backend("intel",
            SwitchlessConfig(
                switchless_ecalls=frozenset({"get_counter"}), num_tworkers=1
            )
        )
        enclave.set_backend(backend)

        def host_app():
            value = yield from enclave.ecall_named("get_counter")
            return value

        t = kernel.spawn(host_app())
        kernel.join(t)
        assert t.result == 42
        assert backend.ecall_switchless_count == 1
        site = enclave.ecall_stats.by_name["get_counter"]
        assert site.switchless == 1
        assert site.mean_latency_cycles < 4_000

    def test_unselected_ecall_transitions(self):
        kernel, enclave = build()
        backend = make_backend("intel",
            SwitchlessConfig(switchless_ecalls=frozenset({"get_counter"}))
        )
        enclave.set_backend(backend)

        def host_app():
            yield from enclave.ecall_named("seal", b"z", in_bytes=1, out_bytes=1)

        kernel.join(kernel.spawn(host_app()))
        assert enclave.ecall_stats.by_name["seal"].regular == 1

    def test_trusted_worker_executes_on_own_thread(self):
        kernel, enclave = build()
        backend = make_backend("intel",
            SwitchlessConfig(switchless_ecalls=frozenset({"seal"}), num_tworkers=1)
        )
        enclave.set_backend(backend)

        def host_app():
            yield from enclave.ecall_named("seal", b"abc", in_bytes=3, out_bytes=3)

        kernel.join(kernel.spawn(host_app()))
        kernel.flush_accounting()
        tworker = backend.tworker_threads[0]
        assert tworker.cycles_by.get("compute", 0) >= 2_000

    def test_no_tworkers_without_switchless_ecalls(self):
        kernel, enclave = build()
        backend = make_backend("intel",
            SwitchlessConfig(switchless_ocalls=frozenset({"f"}))
        )
        enclave.set_backend(backend)
        assert backend.tworker_threads == []
        assert enclave.ecall_dispatcher is None


class TestBothDirectionsTogether:
    def test_intel_serves_ocalls_and_ecalls_simultaneously(self):
        """One backend instance: untrusted workers for ocalls, trusted
        workers for ecalls, both switchless, concurrently."""
        kernel, enclave = build()

        def host_log(message):
            yield Compute(400, tag="host-log")
            return len(message)

        enclave.urts.register("log", host_log)
        backend = make_backend("intel",
            SwitchlessConfig(
                switchless_ocalls=frozenset({"log"}),
                switchless_ecalls=frozenset({"get_counter"}),
                num_uworkers=1,
                num_tworkers=1,
            )
        )
        enclave.set_backend(backend)

        def enclave_thread():
            # Runs inside the enclave: makes ocalls.
            total = 0
            for _ in range(20):
                total += yield from enclave.ocall("log", "event", in_bytes=5)
            return total

        def host_thread():
            # Runs outside: makes ecalls.
            total = 0
            for _ in range(20):
                total += yield from enclave.ecall_named("get_counter")
            return total

        t_enclave = kernel.spawn(enclave_thread(), name="enclave-side")
        t_host = kernel.spawn(host_thread(), name="host-side")
        kernel.join(t_enclave, t_host)
        assert t_enclave.result == 100
        assert t_host.result == 20 * 42
        assert backend.switchless_count == 20
        assert backend.ecall_switchless_count == 20


class TestZcEcalls:
    def test_any_ecall_runs_switchless(self):
        kernel, enclave = build()
        runtime = ZcEcallRuntime(ZcConfig(enable_scheduler=False)).attach(enclave)

        def host_app():
            value = yield from enclave.ecall_named("get_counter")
            sealed = yield from enclave.ecall_named("seal", b"\x0f", in_bytes=1, out_bytes=1)
            return value, sealed

        t = kernel.spawn(host_app())
        kernel.join(t)
        assert t.result == (42, b"\xf0")
        assert runtime.stats.switchless_count == 2
        assert runtime.stats.fallback_count == 0

    def test_fallback_when_all_tworkers_busy(self):
        kernel, enclave = build()
        runtime = ZcEcallRuntime(
            ZcConfig(enable_scheduler=False, max_workers=1, initial_workers=1)
        ).attach(enclave)

        def slow():
            yield Compute(500_000)
            return None

        enclave.trts.register("slow", slow)

        def host_app():
            yield from enclave.ecall_named("slow")

        a = kernel.spawn(host_app())
        b = kernel.spawn(host_app())
        kernel.join(a, b)
        assert runtime.stats.fallback_count == 1
        assert runtime.stats.switchless_count == 1

    def test_scheduler_releases_trusted_workers_when_idle(self):
        kernel, enclave = build()
        runtime = ZcEcallRuntime(ZcConfig(quantum_seconds=0.002)).attach(enclave)
        kernel.run(until_time=kernel.cycles(0.02))
        assert runtime.scheduler is not None
        decisions = [m for _, _, m in runtime.scheduler.decisions]
        assert decisions and all(m == 0 for m in decisions)

    def test_pool_recycle_stays_inside_enclave(self):
        """Trusted pools recycle without an ocall: no entry in the ocall
        stats, unlike the ocall side's reallocation spikes."""
        kernel, enclave = build()
        runtime = ZcEcallRuntime(
            ZcConfig(
                enable_scheduler=False,
                pool_capacity_bytes=256,
                request_header_bytes=64,
                max_workers=1,
                initial_workers=1,
            )
        ).attach(enclave)

        def host_app():
            for _ in range(10):
                yield from enclave.ecall_named("get_counter")

        kernel.join(kernel.spawn(host_app()))
        assert runtime.stats.pool_reallocs >= 2
        assert enclave.stats.total_calls == 0  # no ocalls at all

    def test_stop_terminates_trusted_workers(self):
        kernel, enclave = build()
        runtime = ZcEcallRuntime(ZcConfig()).attach(enclave)
        kernel.run(until_time=1_000_000)
        enclave.stop_backend()
        kernel.run()
        assert all(t.done for t in runtime.worker_threads)
