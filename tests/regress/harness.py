"""Shared workload harness for the regression-sentinel tests.

``run_audited`` drives an ocall storm against any backend under a
telemetry session with a live :class:`~repro.regress.InvariantAuditor`
attached, returning both.  ``BusyWaitZcBackend`` is the deliberately
broken scheduler double: it reintroduces the Intel SDK's
``retries_before_fallback`` busy-wait in front of the zc backend's
immediate fallback, which §IV-C forbids — the auditor must catch it
through the backend's own ``zc.fallback`` events.
"""

from __future__ import annotations

from repro.api import make_backend
from repro.core import ZcConfig
from repro.core.backend import ZcSwitchlessBackend
from repro.regress import attach_auditor
from repro.sgx import Enclave, UntrustedRuntime
from repro.sim import Compute, Kernel, paper_machine
from repro.telemetry import TelemetrySession

#: A quantum small enough that a short storm spans several configuration
#: phases (the default 10 ms would outlast the whole workload).
FAST_SCHED = dict(quantum_seconds=2e-4, mu=0.05)


class BusyWaitZcBackend(ZcSwitchlessBackend):
    """zc backend that spins SDK-style before conceding the fallback."""

    def __init__(self, config=None, retries=3, retry_cycles=5_000.0):
        super().__init__(config)
        self.retries = retries
        self.retry_cycles = retry_cycles

    def invoke(self, request):
        if self._find_unused() is None:
            for _ in range(self.retries):
                yield Compute(self.retry_cycles, tag="zc-retry-wait")
                if self._find_unused() is not None:
                    break
        result = yield from super().invoke(request)
        return result


def run_audited(
    backend=None,
    n_calls: int = 2_000,
    n_threads: int = 8,
    host_cycles: float = 20_000.0,
    label: str = "cell",
    session: TelemetrySession | None = None,
    checkers=None,
):
    """Run an ocall storm with a live auditor; returns (capture, auditor).

    With ``session`` the caller controls the session lifetime (e.g. to
    export afterwards); otherwise a throwaway one wraps the run.
    """
    own_session = session is None
    if own_session:
        session = TelemetrySession()
        session.__enter__()
    try:
        kernel = Kernel(paper_machine())
        capture = session.attach(kernel, label=label)
        auditor = attach_auditor(capture, checkers=checkers)
        urts = UntrustedRuntime()
        enclave = Enclave(kernel, urts)
        if backend is not None:
            enclave.set_backend(backend)
        capture.bind_enclave(enclave)

        def handler():
            yield Compute(host_cycles)
            return None

        urts.register("f", handler)

        def app():
            for _ in range(n_calls // n_threads):
                yield from enclave.ocall("f")

        threads = [
            kernel.spawn(app(), name=f"app-{i}", kind="app")
            for i in range(n_threads)
        ]
        kernel.join(*threads)
        enclave.stop_backend()
        kernel.run()
        capture.finalize()
    finally:
        if own_session:
            session.__exit__(None, None, None)
    auditor.finish()
    return capture, auditor


def fast_zc_backend() -> ZcSwitchlessBackend:
    """A real zc backend whose scheduler is active within the storm."""
    return make_backend("zc", ZcConfig(**FAST_SCHED))


def broken_zc_backend() -> BusyWaitZcBackend:
    """The busy-waiting double, same fast scheduler."""
    return BusyWaitZcBackend(ZcConfig(**FAST_SCHED))
