"""Tests for the trace-based invariant auditor (live mode).

The headline guarantees: the real scheduler passes every paper invariant
*non-vacuously* (decisions, probes and fallbacks all observed), and a
deliberately broken scheduler — the SDK-style busy-wait double — is
caught by the §IV-C immediate-fallback checker.
"""

import pytest

from repro.core import ZcConfig
from repro.regress import (
    ArgminChecker,
    ConfigPhaseChecker,
    ImmediateFallbackChecker,
    InvariantAuditor,
    ObsAnomalyChecker,
    Violation,
)
from repro.api import make_backend
from repro.switchless import SwitchlessConfig
from repro.telemetry.events import EventBus, TelemetryEvent

from tests.regress.harness import broken_zc_backend, fast_zc_backend, run_audited


def event(kind, t=0.0, **fields):
    return TelemetryEvent(t, kind, fields)


class TestLiveAudit:
    def test_real_zc_scheduler_passes_non_vacuously(self):
        capture, auditor = run_audited(fast_zc_backend())
        assert auditor.ok, "\n".join(map(str, auditor.violations))
        counts = capture.event_counts
        # The invariants were actually exercised, not skipped.
        assert counts.get("zc.sched.decision", 0) >= 2
        assert counts.get("zc.sched.probe", 0) > counts["zc.sched.decision"]
        assert counts.get("zc.fallback", 0) > 0

    def test_busy_wait_double_is_caught(self):
        _, auditor = run_audited(broken_zc_backend())
        assert not auditor.ok
        checkers = {violation.checker for violation in auditor.violations}
        assert "immediate-fallback" in checkers
        first = next(
            v for v in auditor.violations if v.checker == "immediate-fallback"
        )
        assert "busy-waited" in first.message
        # The violation carries its event window for diagnosis.
        assert any("zc.fallback" in entry for entry in first.window)

    def test_regular_backend_passes(self):
        _, auditor = run_audited(backend=None)
        assert auditor.ok

    def test_intel_backend_passes(self):
        # Intel's wait-then-fallback is that mechanism's documented
        # contract; the §IV-C checker must not fire on intel.fallback.
        backend = make_backend("intel",
            SwitchlessConfig(switchless_ocalls=frozenset({"f"}), num_uworkers=2)
        )
        capture, auditor = run_audited(backend)
        assert auditor.ok
        assert capture.event_counts.get("intel.fallback", 0) > 0

    def test_conservation_checked_mid_run(self):
        # With a window far smaller than the run, the checker must have
        # snapshotted — and balanced — the ledger at interior boundaries,
        # not just at the end (the default window, one 10 ms quantum,
        # would outlast this whole storm).
        from repro.regress import (
            ConfigPhaseChecker,
            ConservationChecker,
            ImmediateFallbackChecker,
        )

        conservation = ConservationChecker(window_cycles=500_000.0)
        _, auditor = run_audited(
            fast_zc_backend(),
            checkers=[conservation, ImmediateFallbackChecker(), ConfigPhaseChecker()],
        )
        assert auditor.ok, "\n".join(map(str, auditor.violations))
        assert conservation._next_boundary > 2 * conservation.window_cycles


class TestCheckerUnits:
    def test_argmin_flags_non_minimum_choice(self):
        auditor = InvariantAuditor(cell="u", checkers=[ArgminChecker()])
        auditor.feed([event("zc.sched.decision", utilities=[5.0, 1.0, 3.0], chosen=2)])
        assert len(auditor.violations) == 1
        assert "argmin" in auditor.violations[0].message

    def test_argmin_accepts_the_minimum(self):
        auditor = InvariantAuditor(cell="u", checkers=[ArgminChecker()])
        auditor.feed([event("zc.sched.decision", utilities=[5.0, 1.0, 3.0], chosen=1)])
        assert auditor.ok

    def test_argmin_flags_malformed_decision(self):
        auditor = InvariantAuditor(cell="u", checkers=[ArgminChecker()])
        auditor.feed([event("zc.sched.decision", utilities=[1.0], chosen=7)])
        assert any("malformed" in v.message for v in auditor.violations)

    def _phase(self, counts, utilities, chosen=0):
        events = [
            event("zc.sched.probe", workers=i, fallbacks=0, u_cycles=u)
            for i, u in zip(counts, utilities)
        ]
        events.append(event("zc.sched.decision", utilities=utilities, chosen=chosen))
        return events

    def test_config_phase_accepts_the_paper_sweep(self):
        auditor = InvariantAuditor(
            cell="u", checkers=[ConfigPhaseChecker(expected_probes=3)]
        )
        auditor.feed(self._phase([0, 1, 2], [9.0, 2.0, 4.0], chosen=1))
        assert auditor.ok

    def test_config_phase_flags_wrong_quantum_count(self):
        auditor = InvariantAuditor(
            cell="u", checkers=[ConfigPhaseChecker(expected_probes=3)]
        )
        auditor.feed(self._phase([0, 1], [9.0, 2.0], chosen=1))
        assert any("N/2 + 1" in v.message for v in auditor.violations)

    def test_config_phase_flags_non_ascending_probes(self):
        auditor = InvariantAuditor(
            cell="u", checkers=[ConfigPhaseChecker(expected_probes=3)]
        )
        auditor.feed(self._phase([0, 2, 1], [9.0, 4.0, 2.0], chosen=2))
        assert any("ascending" in v.message for v in auditor.violations)

    def test_config_phase_flags_probe_decision_disagreement(self):
        auditor = InvariantAuditor(
            cell="u", checkers=[ConfigPhaseChecker(expected_probes=2)]
        )
        events = self._phase([0, 1], [9.0, 2.0], chosen=1)
        events[-1] = event("zc.sched.decision", utilities=[9.0, 555.0], chosen=1)
        auditor.feed(events)
        assert any("disagrees" in v.message for v in auditor.violations)

    def test_expected_probe_count_follows_the_paper(self):
        # N/2 + 1 micro-quanta, capped by the pool that actually exists.
        assert InvariantAuditor(n_cpus=8, workers_cap=4).expected_probe_count() == 5
        assert InvariantAuditor(n_cpus=8, workers_cap=2).expected_probe_count() == 3
        assert InvariantAuditor(n_cpus=None).expected_probe_count() is None

    def test_fallback_tolerance(self):
        checker = ImmediateFallbackChecker(tolerance_cycles=10.0)
        auditor = InvariantAuditor(cell="u", checkers=[checker])
        auditor.feed(
            [
                event("zc.fallback", waited_cycles=0.0),
                event("zc.fallback", waited_cycles=9.0),
                event("zc.fallback", waited_cycles=11.0),
            ]
        )
        assert len(auditor.violations) == 1

    def test_intel_fallback_not_checked(self):
        auditor = InvariantAuditor(cell="u")
        auditor.feed([event("intel.fallback", reason="retries-exhausted")])
        assert auditor.ok


class TestObsAnomalyChecker:
    def _anomaly(self, **overrides):
        fields = dict(
            lane="total",
            metric="throughput_rps",
            kind="ewma-band",
            window=4,
            value=900.0,
            z=6.2,
        )
        fields.update(overrides)
        # Not via event(): its leading parameter is also named "kind".
        return TelemetryEvent(0.0, "obs.anomaly", fields)

    def test_anomaly_is_a_diagnostic_not_a_violation(self):
        auditor = InvariantAuditor(cell="u", checkers=[ObsAnomalyChecker()])
        auditor.feed([self._anomaly()])
        assert auditor.ok
        assert auditor.violations == []
        assert len(auditor.diagnostics) == 1
        note = str(auditor.diagnostics[0])
        assert "total/throughput_rps" in note
        assert "ewma-band" in note

    def test_diagnostics_render_with_the_verdict(self):
        auditor = InvariantAuditor(cell="u", checkers=[ObsAnomalyChecker()])
        auditor.feed([self._anomaly(kind="cusum-changepoint", window=7)])
        verdict = auditor.render()
        assert "all invariants hold" in verdict
        assert "1 diagnostic note(s)" in verdict
        assert "cusum-changepoint" in verdict

    def test_other_events_ignored(self):
        auditor = InvariantAuditor(cell="u", checkers=[ObsAnomalyChecker()])
        auditor.feed([event("serve.request.complete", status="ok")])
        assert auditor.diagnostics == []


class TestAuditorMechanics:
    def test_halt_on_violation_detaches_mid_emit(self):
        # The auditor unsubscribes from inside its own emit callback —
        # this is the EventBus snapshot-on-emit guarantee at work.
        bus = EventBus()
        auditor = InvariantAuditor(
            cell="u",
            checkers=[ImmediateFallbackChecker()],
            halt_on_violation=True,
        ).attach(bus)
        for _ in range(5):
            bus.emit("zc.fallback", name="f", waited_cycles=100.0)
        assert len(auditor.violations) == 1
        assert bus._subscribers == ()

    def test_violation_string_includes_window(self):
        violation = Violation(
            checker="c", cell="x", t_cycles=10.0, message="m", window=("1:a", "2:b")
        )
        assert "1:a -> 2:b" in str(violation)

    def test_render_verdicts(self):
        auditor = InvariantAuditor(cell="x")
        assert "all invariants hold" in auditor.render()
        auditor.report("c", 0.0, "broken")
        assert "1 violation" in auditor.render()

    def test_checkers_factory_override(self):
        _, auditor = run_audited(
            broken_zc_backend(), checkers=[ArgminChecker()]
        )
        # Without the fallback checker the double sails through.
        assert auditor.ok
