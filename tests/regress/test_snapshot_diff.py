"""Tests for run snapshots and the statistical regression diff.

The acceptance pair: a self-diff of an unchanged tree exits 0, while a
run with doubled enclave-transition cost (T_es) is flagged with a
per-category cycle delta and a non-zero exit code.
"""

import copy

import pytest

from repro.regress import (
    bootstrap_rel_delta,
    capture_run,
    diff_snapshots,
    load_snapshot,
    save_snapshot,
)
from repro.sgx.costmodel import SgxCostModel
from repro.telemetry.schema import SchemaMismatch

#: One small experiment, scaled down further than --quick: these tests
#: exercise the snapshot/diff machinery, not the figure.
TINY = {"sec3a": {"total_calls": 1_200, "workers": 2, "g_pauses": 200}}


@pytest.fixture(scope="module")
def baseline():
    return capture_run(["sec3a"], overrides=TINY, repeats=2, name="base")


class TestBootstrap:
    def test_identical_samples_give_zero_delta(self):
        assert bootstrap_rel_delta([5.0, 5.0], [5.0, 5.0]) == (0.0, 0.0, 0.0)

    def test_doubling_gives_plus_hundred_percent(self):
        delta, lo, hi = bootstrap_rel_delta([10.0], [20.0])
        assert delta == lo == hi == 1.0

    def test_zero_baseline_reports_inf(self):
        delta, _, _ = bootstrap_rel_delta([0.0], [7.0])
        assert delta == float("inf")

    def test_ci_contains_point_and_is_deterministic(self):
        base = [100.0, 104.0, 96.0, 101.0]
        cur = [110.0, 113.0, 108.0, 109.0]
        first = bootstrap_rel_delta(base, cur)
        second = bootstrap_rel_delta(base, cur)
        assert first == second  # seeded resampling
        delta, lo, hi = first
        assert lo <= delta <= hi
        assert lo < hi  # noisy samples: a real interval


class TestSnapshot:
    def test_structure_and_stamp(self, baseline):
        assert baseline["artifact"] == "run-snapshot"
        assert baseline["repeats"] == 2
        record = baseline["experiments"]["sec3a"]
        assert len(record["violations"]) == 2
        assert set(record["cells"]) == {f"C{i}-w2" for i in range(1, 6)}
        cell = record["cells"]["C1-w2"]
        assert len(cell["now_cycles"]) == 2
        assert len(cell["wall_by_category"]["transition"]) == 2
        assert cell["n_cpus"] > 0
        assert any(key.startswith("repro_") for key in record["metrics"])

    def test_deterministic_repeats(self, baseline):
        # The simulator is deterministic: both repeats must be identical,
        # which is what makes degenerate (zero-width) CIs meaningful.
        cell = baseline["experiments"]["sec3a"]["cells"]["C1-w2"]
        assert cell["now_cycles"][0] == cell["now_cycles"][1]

    def test_save_load_round_trip(self, baseline, tmp_path):
        path = save_snapshot(baseline, str(tmp_path / "b.json"))
        assert load_snapshot(path) == baseline

    def test_load_refuses_tampered_version(self, baseline, tmp_path):
        bad = dict(baseline, schema_version=baseline["schema_version"] + 1)
        path = save_snapshot(bad, str(tmp_path / "bad.json"))
        with pytest.raises(SchemaMismatch):
            load_snapshot(path)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            capture_run(["fig99"])


class TestDiff:
    def test_self_diff_exits_zero(self, baseline):
        current = capture_run(["sec3a"], overrides=TINY, repeats=1, name="cur")
        report = diff_snapshots(baseline, current)
        assert report.ok
        assert report.exit_code() == 0
        assert report.entries == []
        assert report.compared > 50
        assert "PASS" in report.render()

    def test_doubled_t_es_is_flagged(self, baseline, monkeypatch):
        doubled = SgxCostModel(eexit_cycles=13_500.0, eenter_cycles=13_500.0)
        monkeypatch.setattr(
            "repro.workloads.synthetic.SgxCostModel", lambda: doubled
        )
        current = capture_run(["sec3a"], overrides=TINY, repeats=1, name="slow")
        report = diff_snapshots(baseline, current)
        assert not report.ok
        assert report.exit_code() == 1
        transition = [
            entry
            for entry in report.regressions
            if entry.key == "cycles[transition]"
        ]
        assert transition, report.render()
        # T_es doubled, so transition-heavy cells roughly double (the
        # all-switchless C4 cell pays T_es only on its rare crossings).
        assert max(entry.delta for entry in transition) > 0.8
        assert all(entry.delta > 0.05 for entry in transition)
        rendered = report.render()
        assert "FAIL" in rendered and "cycles[transition]" in rendered

    def test_schema_mismatch_refused(self, baseline):
        other = dict(baseline, schema_version=baseline["schema_version"] + 1)
        with pytest.raises(SchemaMismatch):
            diff_snapshots(baseline, other)


def _synthetic_snapshot(**cell_overrides):
    """A minimal hand-built snapshot for severity-rule tests."""
    cell = {
        "n_cpus": 8,
        "backend": "zc-switchless",
        "now_cycles": [1_000_000.0],
        "wall_by_category": {
            "app": [500_000.0],
            "transition": [100_000.0],
            "idle": [400_000.0],
        },
        "work_by_category": {},
    }
    cell.update(cell_overrides)
    return {
        "artifact": "run-snapshot",
        "schema_version": 1,
        "repro_version": "x",
        "name": "synthetic",
        "quick": True,
        "repeats": 1,
        "experiment_ids": ["e"],
        "experiments": {
            "e": {
                "violations": [[]],
                "cells": {"c": cell},
                "metrics": {"repro_sim_time_cycles{cell=c}": [1_000_000.0]},
            }
        },
        "bench_meta": None,
    }


class TestSeverityRules:
    def test_overhead_increase_gates_but_app_drifts(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot(
            wall_by_category={
                "app": [600_000.0],  # +20% useful work: drift
                "transition": [150_000.0],  # +50% overhead: regression
                "idle": [250_000.0],
            }
        )
        report = diff_snapshots(base, cur)
        severities = {entry.key: entry.severity for entry in report.entries}
        assert severities["cycles[transition]"] == "regression"
        assert severities["cycles[app]"] == "drift"
        # Idle is capacity, not cost: never a regression.
        assert severities.get("cycles[idle]", "drift") != "regression"

    def test_improvement_is_a_note_not_a_gate(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot(
            wall_by_category={
                "app": [500_000.0],
                "transition": [50_000.0],  # halved: improvement
                "idle": [450_000.0],
            }
        )
        report = diff_snapshots(base, cur)
        assert report.ok
        entry = next(e for e in report.entries if e.key == "cycles[transition]")
        assert entry.severity == "info"

    def test_new_shape_violation_is_a_regression(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        cur["experiments"]["e"]["violations"] = [["C4 slower than C5"]]
        report = diff_snapshots(base, cur)
        assert not report.ok
        assert any(
            entry.scope == "shape" and entry.severity == "regression"
            for entry in report.entries
        )

    def test_resolved_shape_violation_is_a_note(self):
        base = _synthetic_snapshot()
        base["experiments"]["e"]["violations"] = [["old wart"]]
        cur = _synthetic_snapshot()
        report = diff_snapshots(base, cur)
        assert report.ok
        assert any(entry.severity == "info" for entry in report.entries)

    def test_missing_experiment_is_a_regression(self):
        base = _synthetic_snapshot()
        cur = copy.deepcopy(base)
        cur["experiments"] = {}
        report = diff_snapshots(base, cur)
        assert not report.ok

    def test_gated_metric_regression(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        cur["experiments"]["e"]["metrics"] = {
            "repro_sim_time_cycles{cell=c}": [1_200_000.0]
        }
        report = diff_snapshots(base, cur)
        assert any(
            entry.scope == "metrics" and entry.severity == "regression"
            for entry in report.entries
        )

    def test_cycle_counter_metrics_skipped(self):
        # repro_cycles_total duplicates the ledger walk; one finding per
        # cause, so the metric family is excluded from the diff.
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        for snap, value in ((base, 1.0), (cur, 999.0)):
            snap["experiments"]["e"]["metrics"][
                "repro_cycles_total{category=transition,cell=c}"
            ] = [value]
        report = diff_snapshots(base, cur)
        assert not any("repro_cycles_total" in entry.key for entry in report.entries)

    def test_bench_meta_is_informational(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        base["bench_meta"] = {"throughput": {"regular": {"events_per_s": 100.0}}}
        cur["bench_meta"] = {"throughput": {"regular": {"events_per_s": 50.0}}}
        report = diff_snapshots(base, cur)
        assert report.ok  # halved host throughput: reported, never gates
        assert any(entry.experiment == "bench_meta" for entry in report.entries)


class TestFaultAwareDiffs:
    def test_fault_overhead_growth_gates(self):
        base = _synthetic_snapshot(
            wall_by_category={
                "app": [500_000.0],
                "fault": [100_000.0],
                "idle": [400_000.0],
            }
        )
        cur = _synthetic_snapshot(
            wall_by_category={
                "app": [500_000.0],
                "fault": [200_000.0],  # doubled recovery cost: regression
                "idle": [300_000.0],
            }
        )
        base["fault_plan"] = cur["fault_plan"] = {"name": "crash-heavy", "seed": 0}
        report = diff_snapshots(base, cur)
        severities = {entry.key: entry.severity for entry in report.entries}
        assert severities["cycles[fault]"] == "regression"

    def test_mismatched_fault_plans_refuse_to_compare_quietly(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        base["fault_plan"] = None
        cur["fault_plan"] = {"name": "crash-heavy", "seed": 0}
        report = diff_snapshots(base, cur)
        assert not report.ok
        entry = next(e for e in report.entries if e.scope == "fault_plan")
        assert entry.severity == "regression"
        assert "fault plans differ" in entry.message

    def test_matching_fault_plans_do_not_gate(self):
        base = _synthetic_snapshot()
        cur = _synthetic_snapshot()
        base["fault_plan"] = cur["fault_plan"] = {"name": "stall", "seed": 0}
        report = diff_snapshots(base, cur)
        assert report.ok
        assert not any(entry.scope == "fault_plan" for entry in report.entries)
