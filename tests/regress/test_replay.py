"""Tests for replaying exported JSONL event logs through the auditor.

The replay path is what lets a CI artifact be audited after the fact:
every verdict here must match what the live auditor said when the run
happened — clean backends replay clean, the busy-wait double replays
broken.
"""

import pytest

from repro.regress import ImmediateFallbackChecker, audit_jsonl, read_events_jsonl
from repro.api import make_backend
from repro.switchless import SwitchlessConfig
from repro.telemetry import TelemetrySession

from tests.regress.harness import broken_zc_backend, fast_zc_backend, run_audited


@pytest.fixture(scope="module")
def three_backend_export(tmp_path_factory):
    """One export with a regular, an Intel and a zc cell, plus the live verdicts."""
    tmp = tmp_path_factory.mktemp("replay")
    live = {}
    with TelemetrySession() as session:
        for label, backend in (
            ("regular", None),
            (
                "intel",
                make_backend("intel",
                    SwitchlessConfig(
                        switchless_ocalls=frozenset({"f"}), num_uworkers=2
                    )
                ),
            ),
            ("zc", fast_zc_backend()),
        ):
            _, auditor = run_audited(backend, label=label, session=session)
            live[label] = auditor
        paths = session.export(str(tmp), "threeway")
    return paths["events"], live


class TestReplayAudit:
    def test_all_three_backends_replay_clean(self, three_backend_export):
        path, live = three_backend_export
        replayed = audit_jsonl(path)
        assert set(replayed) == {"regular", "intel", "zc"}
        for label, auditor in replayed.items():
            assert live[label].ok, label
            assert auditor.ok, f"{label}: " + "\n".join(
                map(str, auditor.violations)
            )

    def test_zc_replay_is_non_vacuous(self, three_backend_export):
        path, _ = three_backend_export
        stream = read_events_jsonl(path)["zc"]
        names = [event.name for event in stream.events]
        assert names.count("zc.sched.decision") >= 2
        assert "zc.fallback" in names

    def test_replay_context_comes_from_meta(self, three_backend_export):
        path, _ = three_backend_export
        replayed = audit_jsonl(path)
        zc = replayed["zc"]
        assert zc.n_cpus > 0
        assert zc.workers_cap >= 1
        assert zc.expected_probe_count() == min(zc.n_cpus // 2, zc.workers_cap) + 1

    def test_busy_wait_double_detected_from_artifact(self, tmp_path):
        with TelemetrySession() as session:
            _, live = run_audited(
                broken_zc_backend(), label="broken", session=session
            )
            paths = session.export(str(tmp_path), "broken")
        assert not live.ok
        replayed = audit_jsonl(paths["events"])["broken"]
        assert not replayed.ok
        assert {v.checker for v in replayed.violations} == {
            v.checker for v in live.violations
        }

    def test_checkers_factory(self, three_backend_export):
        path, _ = three_backend_export
        replayed = audit_jsonl(
            path, checkers_factory=lambda: [ImmediateFallbackChecker()]
        )
        assert all(len(a.checkers) == 1 for a in replayed.values())
        assert all(a.ok for a in replayed.values())
