"""Tests for the tlibc memcpy cost models (vanilla vs zc)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sgx import SgxCostModel, VanillaMemcpy, ZcMemcpy
from repro.sgx.memcpy import speedup


class TestVanillaMemcpy:
    def test_zero_bytes_is_free(self):
        assert VanillaMemcpy().cycles(0) == 0.0
        assert VanillaMemcpy().cycles(0, aligned=False) == 0.0

    def test_unaligned_copy_is_slower(self):
        model = VanillaMemcpy()
        assert model.cycles(4096, aligned=False) > model.cycles(4096, aligned=True)

    def test_unaligned_is_byte_by_byte(self):
        """The byte loop is ~5x the word loop per byte, per the SDK source."""
        model = VanillaMemcpy()
        ratio = model.cycles_per_byte_unaligned / model.cycles_per_byte_aligned
        assert ratio > 4

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            VanillaMemcpy().cycles(-1)


class TestZcMemcpy:
    def test_alignment_insensitive_within_penalty(self):
        model = ZcMemcpy()
        aligned = model.cycles(32 * 1024, aligned=True)
        unaligned = model.cycles(32 * 1024, aligned=False)
        assert unaligned / aligned < 1.3  # mild penalty only

    def test_higher_startup_than_software_loop(self):
        """rep movsb pays microcode startup: for tiny copies the software
        loop can win, as Intel's optimisation manual warns."""
        assert ZcMemcpy().startup_cycles > VanillaMemcpy().startup_cycles


class TestCalibration:
    """The constants must reproduce the paper's Fig. 7 / Fig. 13 shape."""

    def test_unaligned_vanilla_write_plateaus_near_04_gbps(self):
        """Fig. 7: unaligned write throughput plateaus around 0.4 GB/s."""
        cost = SgxCostModel()
        model = VanillaMemcpy()
        size = 32 * 1024
        per_op = cost.t_es + cost.syscall_cycles + model.cycles(size, aligned=False)
        gbps = size * 3.8e9 / per_op / 1e9
        assert 0.3 < gbps < 0.5

    def test_aligned_speedup_near_paper_3_6x(self):
        """Fig. 13: zc-memcpy speeds aligned 32 kB writes up ~3.6x."""
        overhead = SgxCostModel().t_es + SgxCostModel().syscall_cycles
        s = speedup(VanillaMemcpy(), ZcMemcpy(), 32 * 1024, True, overhead)
        assert 3.0 < s < 4.2

    def test_unaligned_speedup_near_paper_15x(self):
        """Fig. 13: zc-memcpy speeds unaligned 32 kB writes up ~15.1x."""
        overhead = SgxCostModel().t_es + SgxCostModel().syscall_cycles
        s = speedup(VanillaMemcpy(), ZcMemcpy(), 32 * 1024, False, overhead)
        assert 12.0 < s < 18.0

    def test_speedup_grows_with_buffer_size(self):
        overhead = SgxCostModel().t_es
        sizes = [512, 2048, 8192, 32 * 1024]
        speedups = [
            speedup(VanillaMemcpy(), ZcMemcpy(), n, False, overhead) for n in sizes
        ]
        assert speedups == sorted(speedups)


@given(nbytes=st.integers(min_value=1, max_value=1 << 20))
def test_zc_always_beats_vanilla_above_startup_crossover(nbytes):
    """For any non-trivial size, rep movsb is at least as fast as the byte
    loop; for sizes past the startup crossover it also beats the word loop."""
    vanilla = VanillaMemcpy()
    zc = ZcMemcpy()
    assert zc.cycles(nbytes, aligned=False) <= vanilla.cycles(nbytes, aligned=False) or nbytes < 8
    if nbytes >= 64:
        assert zc.cycles(nbytes, aligned=True) < vanilla.cycles(nbytes, aligned=True)


@given(
    nbytes=st.integers(min_value=0, max_value=1 << 20),
    aligned=st.booleans(),
)
def test_costs_are_monotone_in_size(nbytes, aligned):
    vanilla = VanillaMemcpy()
    zc = ZcMemcpy()
    assert vanilla.cycles(nbytes + 1, aligned) > vanilla.cycles(nbytes, aligned) or nbytes == 0
    assert zc.cycles(nbytes + 8, aligned) > zc.cycles(nbytes, aligned)
