"""Property test: regular-ocall latency decomposes analytically.

For the regular (always-transition) path, a call's latency must equal
exactly::

    bookkeeping + memcpy(in) + T_es + host_work + memcpy(out)

for any sizes, alignment and handler duration — no hidden costs, no lost
cycles.  This pins the whole marshalling/transition pipeline against the
cost model it claims to implement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime, VanillaMemcpy, ZcMemcpy
from repro.sim import Compute, Kernel, MachineSpec


@settings(max_examples=40, deadline=None)
@given(
    in_bytes=st.integers(min_value=0, max_value=64 * 1024),
    out_bytes=st.integers(min_value=0, max_value=64 * 1024),
    aligned=st.booleans(),
    host_work=st.floats(min_value=0, max_value=1e6),
    use_zc_memcpy=st.booleans(),
)
def test_regular_ocall_latency_is_exactly_the_model(
    in_bytes, out_bytes, aligned, host_work, use_zc_memcpy
):
    memcpy = ZcMemcpy() if use_zc_memcpy else VanillaMemcpy()
    kernel = Kernel(MachineSpec(n_cores=2, smt=1))
    urts = UntrustedRuntime()
    cost = SgxCostModel()
    enclave = Enclave(kernel, urts, cost=cost, memcpy_model=memcpy)

    def handler():
        if host_work > 0:
            yield Compute(host_work)
        return None
        yield  # pragma: no cover

    urts.register("f", handler)

    def app():
        yield from enclave.ocall(
            "f", in_bytes=in_bytes, out_bytes=out_bytes, aligned=aligned
        )

    kernel.join(kernel.spawn(app()))
    expected = (
        cost.ocall_bookkeeping_cycles
        + (memcpy.cycles(in_bytes, aligned) if in_bytes else 0.0)
        + cost.t_es
        + host_work
        + (memcpy.cycles(out_bytes, aligned) if out_bytes else 0.0)
    )
    latency = enclave.stats.by_name["f"].mean_latency_cycles
    assert latency == pytest.approx(expected, rel=1e-12, abs=1e-6)
    assert kernel.now == pytest.approx(expected, rel=1e-12, abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(host_work=st.floats(min_value=0, max_value=1e5))
def test_uncontended_switchless_latency_bounds(host_work):
    """A switchless call with a free worker costs strictly less than the
    regular path whenever the handler is shorter than the transition
    saving, and always at least the handler duration."""
    from repro.api import make_backend
    from repro.core import ZcConfig

    kernel = Kernel(MachineSpec(n_cores=4, smt=1))
    urts = UntrustedRuntime()
    cost = SgxCostModel()
    enclave = Enclave(kernel, urts, cost=cost)
    enclave.set_backend(
        make_backend("zc", ZcConfig(enable_scheduler=False, max_workers=1))
    )

    def handler():
        if host_work > 0:
            yield Compute(host_work)
        return None
        yield  # pragma: no cover

    urts.register("f", handler)

    def app():
        yield from enclave.ocall("f")

    kernel.join(kernel.spawn(app()))
    latency = enclave.stats.by_name["f"].mean_latency_cycles
    regular_path = cost.ocall_bookkeeping_cycles + cost.t_es + host_work
    assert latency >= host_work
    assert latency < regular_path
