"""Tests for the enclave call statistics."""

import pytest

from repro.sgx.enclave import CallStats, OcallRequest


def make_request(name="f", mode="regular", issued_at=0.0):
    request = OcallRequest(name=name, issued_at=issued_at)
    request.mode = mode
    return request


class TestCallStats:
    def test_record_by_mode(self):
        stats = CallStats()
        stats.record(make_request(mode="regular"), 100.0)
        stats.record(make_request(mode="switchless"), 50.0)
        stats.record(make_request(mode="fallback"), 200.0)
        site = stats.by_name["f"]
        assert site.calls == 3
        assert (site.regular, site.switchless, site.fallback) == (1, 1, 1)
        assert stats.total_calls == 3

    def test_latency_aggregation(self):
        stats = CallStats()
        stats.record(make_request(issued_at=0.0), 100.0)
        stats.record(make_request(issued_at=100.0), 400.0)
        site = stats.by_name["f"]
        assert site.mean_latency_cycles == pytest.approx(200.0)
        assert site.max_latency_cycles == pytest.approx(300.0)

    def test_unset_mode_rejected(self):
        stats = CallStats()
        with pytest.raises(ValueError):
            stats.record(OcallRequest(name="f"), 10.0)

    def test_switchless_fraction(self):
        stats = CallStats()
        for _ in range(3):
            stats.record(make_request(mode="switchless"), 1.0)
        stats.record(make_request(mode="regular"), 1.0)
        assert stats.switchless_fraction() == pytest.approx(0.75)
        assert CallStats().switchless_fraction() == 0.0

    def test_summary_structure(self):
        stats = CallStats()
        stats.record(make_request(name="write", mode="switchless"), 5.0)
        stats.record(make_request(name="read", mode="regular"), 7.0)
        summary = stats.summary()
        assert list(summary) == ["read", "write"]  # sorted
        assert summary["write"]["switchless"] == 1
        assert summary["read"]["regular"] == 1
        assert summary["read"]["mean_latency_cycles"] == pytest.approx(7.0)

    def test_empty_site_mean(self):
        from repro.sgx.enclave import CallSiteStats

        assert CallSiteStats().mean_latency_cycles == 0.0
