"""Tests for the enclave lifecycle cost model."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.epc import PAGE_SIZE, EpcModel
from repro.sgx.lifecycle import (
    create_enclave,
    creation_cycles,
    destroy_enclave,
    destruction_cycles,
    pooled_acquire_cycles,
)
from repro.sim import Kernel, MachineSpec


class TestCostModel:
    def test_creation_scales_with_heap(self):
        small = creation_cycles(1 * 1024 * 1024)
        large = creation_cycles(64 * 1024 * 1024)
        assert large > 50 * small / 2  # roughly linear in pages

    def test_creation_is_milliseconds_scale(self):
        """[13]'s motivation: creating a 64 MB enclave takes tens of ms."""
        cycles = creation_cycles(64 * 1024 * 1024)
        seconds = cycles / 3.8e9
        assert 0.01 < seconds < 0.2

    def test_pooled_acquire_is_orders_cheaper(self):
        assert pooled_acquire_cycles() < creation_cycles(1024) / 10

    def test_destruction_cheaper_than_creation(self):
        heap = 8 * 1024 * 1024
        assert destruction_cycles(heap) < creation_cycles(heap) / 2

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            creation_cycles(-1)
        with pytest.raises(ValueError):
            destruction_cycles(-1)


class TestLifecyclePrograms:
    def test_create_charges_time(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        enclave = Enclave(kernel, UntrustedRuntime(), heap_bytes=4 * PAGE_SIZE)

        def launcher():
            yield from create_enclave(enclave)

        kernel.join(kernel.spawn(launcher()))
        assert kernel.now == pytest.approx(creation_cycles(4 * PAGE_SIZE))

    def test_destroy_frees_epc(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        epc = EpcModel()
        enclave = Enclave(
            kernel, UntrustedRuntime(), epc=epc, heap_bytes=8 * PAGE_SIZE
        )
        assert epc.allocated_bytes == 8 * PAGE_SIZE

        def teardown():
            yield from destroy_enclave(enclave)

        kernel.join(kernel.spawn(teardown()))
        assert epc.allocated_bytes == 0

    def test_create_includes_paging_penalty(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        epc = EpcModel(usable_bytes=2 * PAGE_SIZE, page_fault_cycles=50_000)
        enclave = Enclave(
            kernel, UntrustedRuntime(), epc=epc, heap_bytes=4 * PAGE_SIZE
        )

        def launcher():
            yield from create_enclave(enclave)

        kernel.join(kernel.spawn(launcher()))
        assert kernel.now == pytest.approx(
            creation_cycles(4 * PAGE_SIZE) + 2 * 50_000
        )
