"""Tests for the SGX cycle-cost model."""

import pytest

from repro.sgx import SgxCostModel


class TestSgxCostModel:
    def test_t_es_matches_paper_calibration(self):
        cost = SgxCostModel()
        # The paper measures ~13,500 cycles for a full enclave switch.
        assert cost.t_es == pytest.approx(13_500)

    def test_pause_loop_reproduces_rbf_worst_case(self):
        cost = SgxCostModel()
        # 20,000 retries at 140 cycles each: the 2.8M-cycle wait of §III-C.
        assert cost.pause_loop_cycles(20_000) == pytest.approx(2.8e6)

    def test_rbf_wait_dwarfs_transition(self):
        """The paper's headline: the default rbf busy-wait is ~200x the
        cost of just doing the regular ocall transition."""
        cost = SgxCostModel()
        assert cost.pause_loop_cycles(20_000) / cost.t_es > 200

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SgxCostModel().pause_loop_cycles(-1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            SgxCostModel(eexit_cycles=-1)

    def test_custom_transition_cost(self):
        cost = SgxCostModel(eexit_cycles=5000, eenter_cycles=5000)
        assert cost.t_es == pytest.approx(10_000)
