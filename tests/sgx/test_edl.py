"""Tests for the EDL-style interface builder."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.edl import EdlError, EnclaveInterface
from repro.sim import Compute, Kernel, MachineSpec
from repro.api import make_backend


def handler_returning(value):
    def handler():
        yield Compute(100)
        return value

    return handler


class TestDeclaration:
    def test_chaining_and_names(self):
        interface = (
            EnclaveInterface(name="demo")
            .untrusted("fwrite", handler_returning(1), switchless=True)
            .untrusted("fopen", handler_returning(2))
            .trusted("seal", handler_returning(3), switchless=True)
        )
        assert interface.names() == {"fwrite", "fopen", "seal"}

    def test_duplicate_rejected_across_directions(self):
        interface = EnclaveInterface(name="demo")
        interface.untrusted("f", handler_returning(1))
        with pytest.raises(EdlError):
            interface.trusted("f", handler_returning(2))

    def test_invalid_identifier_rejected(self):
        interface = EnclaveInterface(name="demo")
        with pytest.raises(EdlError):
            interface.untrusted("not a name", handler_returning(1))
        with pytest.raises(EdlError):
            interface.untrusted("", handler_returning(1))

    def test_describe_renders_edl_syntax(self):
        interface = (
            EnclaveInterface(name="storage")
            .untrusted("fwrite", handler_returning(1), switchless=True)
            .trusted("seal", handler_returning(2))
        )
        text = interface.describe()
        assert "enclave storage {" in text
        assert "void fwrite() transition_using_threads;" in text
        assert "public void seal();" in text


class TestBridgeGeneration:
    def test_bind_registers_both_directions(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        urts = UntrustedRuntime()
        enclave = Enclave(kernel, urts)
        (
            EnclaveInterface(name="demo")
            .untrusted("host_fn", handler_returning("host"))
            .trusted("enclave_fn", handler_returning("enclave"))
            .bind(enclave)
        )

        def app():
            a = yield from enclave.ocall("host_fn")
            b = yield from enclave.ecall_named("enclave_fn")
            return a, b

        thread = kernel.spawn(app())
        kernel.join(thread)
        assert thread.result == ("host", "enclave")

    def test_switchless_config_derivation(self):
        interface = (
            EnclaveInterface(name="demo")
            .untrusted("hot", handler_returning(1), switchless=True)
            .untrusted("cold", handler_returning(2))
            .trusted("hot_ecall", handler_returning(3), switchless=True)
        )
        config = interface.switchless_config(num_uworkers=3)
        assert config.is_switchless("hot")
        assert not config.is_switchless("cold")
        assert config.is_switchless_ecall("hot_ecall")
        assert config.num_uworkers == 3

    def test_full_stack_from_interface(self):
        """The whole SDK workflow: declare, bind, configure, run."""
        kernel = Kernel(MachineSpec(n_cores=4, smt=2))
        urts = UntrustedRuntime()
        enclave = Enclave(kernel, urts)
        interface = (
            EnclaveInterface(name="demo")
            .untrusted("hot", handler_returning("fast"), switchless=True)
            .bind(enclave)
        )
        enclave.set_backend(make_backend("intel", interface.switchless_config()))

        def app():
            result = yield from enclave.ocall("hot")
            return result

        thread = kernel.spawn(app())
        kernel.join(thread)
        assert thread.result == "fast"
        assert enclave.stats.by_name["hot"].switchless == 1
