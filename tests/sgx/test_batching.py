"""Tests for ocall batching."""

import pytest

from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.batching import BATCH_OCALL, OcallBatcher
from repro.sim import Compute, Kernel, MachineSpec


def build():
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)

    def double(value):
        yield Compute(200, tag="host-double")
        return value * 2

    urts.register("double", double)
    return kernel, enclave


class TestOcallBatcher:
    def test_flush_returns_results_in_order(self):
        kernel, enclave = build()
        batcher = OcallBatcher(enclave, max_batch=10)

        def app():
            for i in range(5):
                yield from batcher.add("double", i)
            results = yield from batcher.flush()
            return results

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == [0, 2, 4, 6, 8]
        assert batcher.batches_flushed == 1
        assert batcher.ops_batched == 5

    def test_auto_flush_at_max_batch(self):
        kernel, enclave = build()
        batcher = OcallBatcher(enclave, max_batch=3)

        def app():
            collected = None
            for i in range(3):
                maybe = yield from batcher.add("double", i)
                if maybe is not None:
                    collected = maybe
            return collected

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == [0, 2, 4]
        assert batcher.pending == 0

    def test_one_transition_for_n_ops(self):
        """The whole point: N batched ops cost one transition."""
        kernel, enclave = build()
        batcher = OcallBatcher(enclave, max_batch=100)
        n = 20

        def app():
            for i in range(n):
                yield from batcher.add("double", i)
            yield from batcher.flush()

        kernel.join(kernel.spawn(app()))
        assert enclave.stats.by_name[BATCH_OCALL].calls == 1
        # Far cheaper than n regular ocalls (n * ~14.5k cycles).
        assert kernel.now < enclave.cost.t_es + n * 1000

    def test_empty_flush_is_free(self):
        kernel, enclave = build()
        batcher = OcallBatcher(enclave)

        def app():
            results = yield from batcher.flush()
            return results

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == []
        assert kernel.now == 0

    def test_per_op_fault_reraised_after_batch_completes(self):
        kernel, enclave = build()

        def flaky(fail):
            yield Compute(10)
            if fail:
                raise RuntimeError("op failed")
            return "ok"

        enclave.urts.register("flaky", flaky)
        batcher = OcallBatcher(enclave)
        executed = []

        def counting(value):
            yield Compute(10)
            executed.append(value)
            return value

        enclave.urts.register("counting", counting)

        def app():
            yield from batcher.add("counting", 1)
            yield from batcher.add("flaky", True)
            yield from batcher.add("counting", 2)
            try:
                yield from batcher.flush()
            except RuntimeError as exc:
                return str(exc), executed

        t = kernel.spawn(app())
        kernel.join(t)
        message, executed_ops = t.result
        assert message == "op failed"
        assert executed_ops == [1, 2]  # the batch ran to completion

    def test_batch_goes_through_switchless_backend(self):
        from repro.api import make_backend
        from repro.core import ZcConfig

        kernel, enclave = build()
        backend = make_backend("zc", ZcConfig(enable_scheduler=False))
        enclave.set_backend(backend)
        batcher = OcallBatcher(enclave, max_batch=50)

        def app():
            for i in range(10):
                yield from batcher.add("double", i)
            results = yield from batcher.flush()
            return results

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == [2 * i for i in range(10)]
        assert backend.stats.switchless_count == 1  # the batch itself

    def test_invalid_max_batch(self):
        kernel, enclave = build()
        with pytest.raises(ValueError):
            OcallBatcher(enclave, max_batch=0)
