"""Tests for the enclave ocall path with the regular backend."""

import pytest

from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime, VanillaMemcpy, ZcMemcpy
from repro.sgx.urts import UnknownOcallError
from repro.sim import Compute, Kernel, MachineSpec


def build(memcpy_model=None):
    kernel = Kernel(MachineSpec(n_cores=4, smt=2))
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts, memcpy_model=memcpy_model)
    return kernel, urts, enclave


def echo_handler(value):
    yield Compute(1000, tag="host-echo")
    return value


class TestRegularOcall:
    def test_ocall_returns_handler_result(self):
        kernel, urts, enclave = build()
        urts.register("echo", echo_handler)

        def app():
            result = yield from enclave.ocall("echo", "hello")
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "hello"

    def test_regular_ocall_costs_transition_plus_work(self):
        kernel, urts, enclave = build()
        urts.register("echo", echo_handler)

        def app():
            yield from enclave.ocall("echo", 1)

        t = kernel.spawn(app())
        kernel.join(t)
        cost = enclave.cost
        expected = cost.ocall_bookkeeping_cycles + cost.t_es + 1000
        assert kernel.now == pytest.approx(expected)

    def test_marshalling_charged_with_memcpy_model(self):
        kernel, urts, enclave = build()
        urts.register("echo", echo_handler)
        memcpy = VanillaMemcpy()

        def app():
            yield from enclave.ocall("echo", 2, in_bytes=4096, out_bytes=512)

        t = kernel.spawn(app())
        kernel.join(t)
        cost = enclave.cost
        expected = (
            cost.ocall_bookkeeping_cycles
            + memcpy.cycles(4096, True)
            + cost.t_es
            + 1000
            + memcpy.cycles(512, True)
        )
        assert kernel.now == pytest.approx(expected)

    def test_zc_memcpy_makes_large_marshalling_cheaper(self):
        def run(model):
            kernel, urts, enclave = build(memcpy_model=model)
            urts.register("echo", echo_handler)

            def app():
                yield from enclave.ocall("echo", 0, in_bytes=32 * 1024, aligned=False)

            kernel.join(kernel.spawn(app()))
            return kernel.now

        assert run(ZcMemcpy()) < run(VanillaMemcpy()) / 3

    def test_unknown_ocall_raises(self):
        kernel, urts, enclave = build()

        def app():
            yield from enclave.ocall("nope")

        kernel.spawn(app())
        with pytest.raises(UnknownOcallError):
            kernel.run()

    def test_stats_record_mode_and_latency(self):
        kernel, urts, enclave = build()
        urts.register("echo", echo_handler)

        def app():
            for _ in range(5):
                yield from enclave.ocall("echo", 0)

        kernel.join(kernel.spawn(app()))
        site = enclave.stats.by_name["echo"]
        assert site.calls == 5
        assert site.regular == 5
        assert site.switchless == 0
        assert site.mean_latency_cycles > enclave.cost.t_es

    def test_ecall_charges_entry_and_exit(self):
        kernel, urts, enclave = build()

        def trusted():
            yield Compute(100)
            return "inside"

        def app():
            result = yield from enclave.ecall(trusted())
            return result

        t = kernel.spawn(app())
        kernel.join(t)
        assert t.result == "inside"
        cost = enclave.cost
        assert kernel.now == pytest.approx(
            cost.ecall_entry_cycles + 100 + cost.ecall_exit_cycles
        )

    def test_replacing_a_backend_stops_its_workers(self):
        from repro.api import make_backend
        from repro.core import ZcConfig

        kernel, urts, enclave = build()
        first = make_backend("zc", ZcConfig(enable_scheduler=False))
        enclave.set_backend(first)
        kernel.run(until_time=100_000)
        second = make_backend("zc", ZcConfig(enable_scheduler=False))
        enclave.set_backend(second)
        kernel.run(until_time=kernel.now + 1_000_000)
        assert all(t.done for t in first.worker_threads)
        assert not any(t.done for t in second.worker_threads)

    def test_concurrent_callers_issue_independent_ocalls(self):
        kernel, urts, enclave = build()
        urts.register("echo", echo_handler)

        def app(n):
            total = 0
            for i in range(n):
                result = yield from enclave.ocall("echo", i)
                total += result
            return total

        threads = [kernel.spawn(app(10)) for _ in range(4)]
        kernel.join(*threads)
        assert all(t.result == sum(range(10)) for t in threads)
        assert enclave.stats.total_calls == 40
        assert enclave.stats.total_regular == 40
