"""Tests for EPC bookkeeping."""

import pytest

from repro.sgx import EpcModel
from repro.sgx.epc import PAGE_SIZE


class TestEpcModel:
    def test_allocation_rounds_to_pages(self):
        epc = EpcModel()
        epc.allocate("e1", 1)
        assert epc.allocated_bytes == PAGE_SIZE

    def test_no_fault_within_capacity(self):
        epc = EpcModel(usable_bytes=10 * PAGE_SIZE)
        penalty = epc.allocate("e1", 5 * PAGE_SIZE)
        assert penalty == 0.0
        assert epc.faults == 0

    def test_overflow_charges_page_faults(self):
        epc = EpcModel(usable_bytes=4 * PAGE_SIZE, page_fault_cycles=1000)
        epc.allocate("e1", 4 * PAGE_SIZE)
        penalty = epc.allocate("e1", 2 * PAGE_SIZE)
        assert penalty == pytest.approx(2000)
        assert epc.faults == 2

    def test_free_restores_capacity(self):
        epc = EpcModel(usable_bytes=4 * PAGE_SIZE)
        epc.allocate("e1", 3 * PAGE_SIZE)
        epc.free("e1", 2 * PAGE_SIZE)
        assert epc.allocated_bytes == PAGE_SIZE

    def test_cannot_free_more_than_held(self):
        epc = EpcModel()
        epc.allocate("e1", PAGE_SIZE)
        with pytest.raises(ValueError):
            epc.free("e1", 2 * PAGE_SIZE)

    def test_usage_fraction(self):
        epc = EpcModel(usable_bytes=10 * PAGE_SIZE)
        epc.allocate("e1", 5 * PAGE_SIZE)
        assert epc.usage_fraction() == pytest.approx(0.5)

    def test_peak_tracking(self):
        epc = EpcModel()
        epc.allocate("e1", 4 * PAGE_SIZE)
        epc.free("e1", 4 * PAGE_SIZE)
        assert epc.peak_bytes == 4 * PAGE_SIZE
        assert epc.allocated_bytes == 0


class TestEnclaveEpcIntegration:
    def test_enclave_heap_reserved_in_epc(self):
        from repro.sgx import Enclave, UntrustedRuntime
        from repro.sim import Kernel, MachineSpec

        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        epc = EpcModel()
        Enclave(kernel, UntrustedRuntime(), epc=epc, heap_bytes=16 * 1024 * 1024)
        assert epc.allocated_bytes == 16 * 1024 * 1024

    def test_multiple_enclaves_share_the_epc(self):
        from repro.sgx import Enclave, UntrustedRuntime
        from repro.sim import Kernel, MachineSpec

        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        epc = EpcModel(usable_bytes=16 * PAGE_SIZE)
        Enclave(
            kernel, UntrustedRuntime(), epc=epc, heap_bytes=10 * PAGE_SIZE, name="a"
        )
        second = Enclave(
            kernel, UntrustedRuntime(), epc=epc, heap_bytes=10 * PAGE_SIZE, name="b"
        )
        # The second enclave overflowed the shared EPC: paging penalty.
        assert epc.faults == 4
        assert second._epc_penalty_cycles > 0
