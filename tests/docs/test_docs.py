"""The documentation is executable evidence, not prose.

Two guards keep ``docs/`` honest as the tree moves:

- every fenced ``>>>`` example in the docs runs under doctest against
  the real library, so a renamed function or changed output breaks CI
  instead of silently rotting the guide;
- every relative link between markdown files resolves, so the docs
  index never points at a moved or deleted page.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

#: Markdown files whose fenced ``>>>`` blocks must execute.
DOCTESTED = sorted(DOCS.glob("*.md"))

#: Markdown files whose relative links must resolve.
LINKED = [REPO / "README.md", *sorted(DOCS.glob("*.md"))]

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — excluding images and in-page anchors.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(?:#[^)]*)?\)")


def doctest_blocks(path):
    """The fenced python blocks of ``path`` that contain a ``>>>`` prompt."""
    return [
        block
        for block in FENCE.findall(path.read_text(encoding="utf-8"))
        if ">>>" in block
    ]


@pytest.mark.parametrize("path", DOCTESTED, ids=lambda p: p.name)
def test_fenced_examples_execute(path):
    blocks = doctest_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no >>> examples")
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS, verbose=False)
    parser = doctest.DocTestParser()
    globs = {}  # blocks in one file share a namespace, like a REPL session
    for index, block in enumerate(blocks):
        test = doctest.DocTest(
            examples=parser.get_examples(block),
            globs=globs,
            name=f"{path.name}[block {index}]",
            filename=str(path),
            lineno=0,
            docstring=block,
        )
        runner.run(test, clear_globs=False)
        globs.update(test.globs)  # DocTest copies globs; carry names forward
    assert runner.failures == 0, (
        f"{runner.failures} doctest failure(s) in {path.name} — "
        "run `python -m doctest` style output above for details"
    )


@pytest.mark.parametrize("path", LINKED, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue  # external; availability is not this repo's contract
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken relative link(s) in {path.name}: {broken}"


def test_docs_index_lists_every_page():
    index = (DOCS / "README.md").read_text(encoding="utf-8")
    missing = [
        page.name
        for page in DOCS.glob("*.md")
        if page.name != "README.md" and f"({page.name})" not in index
    ]
    assert not missing, f"docs/README.md does not link: {missing}"
