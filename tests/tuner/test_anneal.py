"""Tests for the simulated-annealing tuner."""

import random

import pytest

from repro.tuner import SimulatedAnnealingTuner, TuningSpace
from repro.tuner.space import ConfigGenome


def synthetic_cost(genome: ConfigGenome) -> float:
    """An analytic stand-in for a workload: the optimum is known.

    Best at switchless={'hot1','hot2'}, workers=2, rbf=0; each deviation
    adds cost.
    """
    cost = 1.0
    cost += 0.5 * len({"hot1", "hot2"} - genome.switchless)  # missing hot calls
    cost += 0.8 * len(genome.switchless & {"cold"})  # selecting the long call
    cost += 0.2 * abs(genome.workers - 2)
    cost += 0.3 * (genome.retries_before_fallback / 20_000)
    return cost


CANDIDATES = {"hot1", "hot2", "cold"}


class TestSimulatedAnnealing:
    def make_tuner(self, seed=11):
        space = TuningSpace(CANDIDATES, max_workers=4, rng=random.Random(seed))
        return SimulatedAnnealingTuner(space, rng=random.Random(seed + 1))

    def test_finds_the_known_optimum(self):
        result = self.make_tuner().tune(synthetic_cost, budget=120)
        assert result.best.switchless == {"hot1", "hot2"}
        assert result.best.workers == 2
        assert result.best.retries_before_fallback == 0
        assert result.best_cost == pytest.approx(1.0)

    def test_never_worse_than_default(self):
        tuner = self.make_tuner()
        default_cost = synthetic_cost(tuner.space.default_genome())
        result = tuner.tune(synthetic_cost, budget=40)
        assert result.best_cost <= default_cost

    def test_deterministic_given_seeds(self):
        a = self.make_tuner(seed=5).tune(synthetic_cost, budget=50)
        b = self.make_tuner(seed=5).tune(synthetic_cost, budget=50)
        assert a.best == b.best
        assert a.history == b.history

    def test_memoisation_counts_cache_hits(self):
        tuner = self.make_tuner()
        result = tuner.tune(synthetic_cost, budget=100)
        # The 3-ocall space has only 8 * 4 * 5 = 160 points; with local
        # moves, revisits are inevitable well before 100 evaluations.
        assert result.cache_hits > 0

    def test_history_is_monotonically_improving(self):
        result = self.make_tuner().tune(synthetic_cost, budget=80)
        costs = [cost for _, cost in result.history]
        assert costs == sorted(costs, reverse=True)

    def test_improvement_metric(self):
        result = self.make_tuner().tune(synthetic_cost, budget=120)
        assert result.improvement_over(2.0) == pytest.approx(2.0 / result.best_cost)

    def test_invalid_parameters(self):
        space = TuningSpace({"a"})
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(space, cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(space, initial_temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(space).tune(synthetic_cost, budget=0)

    def test_rejects_non_positive_costs(self):
        tuner = self.make_tuner()
        with pytest.raises(ValueError):
            tuner.tune(lambda genome: 0.0, budget=5)
