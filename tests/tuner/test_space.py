"""Tests for the tuning search space."""

import random

import pytest

from repro.tuner import ConfigGenome, TuningSpace
from repro.tuner.space import RETRY_CHOICES


class TestTuningSpace:
    def test_default_genome_is_the_naive_config(self):
        space = TuningSpace({"fread", "fwrite"})
        default = space.default_genome()
        assert default.switchless == {"fread", "fwrite"}
        assert default.workers == 2
        assert default.retries_before_fallback == 20_000

    def test_mutation_changes_exactly_one_axis(self):
        space = TuningSpace({"a", "b", "c"}, rng=random.Random(7))
        genome = space.default_genome()
        for _ in range(50):
            mutated = space.mutate(genome)
            differences = sum(
                (
                    mutated.switchless != genome.switchless,
                    mutated.workers != genome.workers,
                    mutated.retries_before_fallback != genome.retries_before_fallback,
                )
            )
            assert differences <= 1

    def test_workers_stay_in_bounds(self):
        space = TuningSpace({"a"}, max_workers=3, rng=random.Random(3))
        genome = space.default_genome()
        for _ in range(200):
            genome = space.mutate(genome)
            assert 1 <= genome.workers <= 3
            assert genome.retries_before_fallback in RETRY_CHOICES

    def test_random_genome_is_seed_deterministic(self):
        a = TuningSpace({"x", "y", "z"}, rng=random.Random(42)).random_genome()
        b = TuningSpace({"x", "y", "z"}, rng=random.Random(42)).random_genome()
        assert a == b

    def test_to_config_round_trip(self):
        genome = ConfigGenome(frozenset({"f"}), workers=3, retries_before_fallback=100)
        config = genome.to_config()
        assert config.is_switchless("f")
        assert config.num_uworkers == 3
        assert config.retries_before_fallback == 100

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            TuningSpace(set())
        with pytest.raises(ValueError):
            TuningSpace({"a"}, max_workers=0)

    def test_describe(self):
        genome = ConfigGenome(frozenset({"b", "a"}), 2, 0)
        assert genome.describe() == "[a,b] workers=2 rbf=0"
