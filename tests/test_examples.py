"""Smoke tests for the runnable examples.

Each example must run to completion and print its headline result.  The
heavier scripts (real pure-Python AES, 200k-call square waves) are
exercised here through their fast entry points only.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ZC-SWITCHLESS" in out
        assert "switchless=4004" in out

    def test_secure_counter_service(self):
        out = run_example("secure_counter_service.py")
        assert "switchless ecalls" in out
        assert "faster" in out

    def test_kissdb_store(self):
        out = run_example("kissdb_store.py")
        assert "zc speedup over no_sl" in out
        assert "hash-table pages" in out

    @pytest.mark.slow
    def test_file_encryption(self):
        out = run_example("file_encryption.py")
        assert "bit-exact" in out

    @pytest.mark.slow
    def test_profile_and_advise(self):
        out = run_example("profile_and_advise.py")
        assert "advised EDL switchless set" in out

    @pytest.mark.slow
    def test_adaptive_workers(self):
        out = run_example("adaptive_workers.py", timeout=400)
        assert "lifetime share per worker count" in out
