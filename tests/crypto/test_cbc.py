"""CBC mode tests against NIST SP 800-38A, plus padding properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.crypto.cbc import PaddingError

# NIST SP 800-38A F.2.5 (CBC-AES256.Encrypt)
NIST_KEY = bytes.fromhex(
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
)
NIST_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
NIST_CIPHERTEXT = bytes.fromhex(
    "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
    "9cfc4e967edb808d679f777bc6702c7d"
    "39f23369a9d9bacfa530e26304231461"
    "b2eb05e2c39be9fcda6c19078c6a9d1b"
)


class TestNistVectors:
    def test_cbc_aes256_encrypt(self):
        assert cbc_encrypt(NIST_KEY, NIST_IV, NIST_PLAINTEXT, pad=False) == NIST_CIPHERTEXT

    def test_cbc_aes256_decrypt(self):
        assert cbc_decrypt(NIST_KEY, NIST_IV, NIST_CIPHERTEXT, pad=False) == NIST_PLAINTEXT


class TestPkcs7:
    def test_pad_always_adds_bytes(self):
        assert pkcs7_pad(b"") == bytes([16]) * 16
        assert pkcs7_pad(b"a" * 16)[-16:] == bytes([16]) * 16

    def test_pad_length_multiple_of_block(self):
        for n in range(0, 40):
            assert len(pkcs7_pad(b"x" * n)) % 16 == 0

    def test_unpad_round_trip(self):
        for n in range(0, 40):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"12345")

    def test_unpad_rejects_inconsistent_padding(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 15 + b"\x03")

    def test_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 16)


class TestCbcProperties:
    def test_iv_must_be_block_sized(self):
        with pytest.raises(ValueError):
            cbc_encrypt(NIST_KEY, b"short", b"data")

    def test_ciphertext_differs_per_iv(self):
        c1 = cbc_encrypt(NIST_KEY, bytes(16), b"hello world")
        c2 = cbc_encrypt(NIST_KEY, bytes([1]) + bytes(15), b"hello world")
        assert c1 != c2

    def test_tampered_ciphertext_fails_padding_or_differs(self):
        ciphertext = bytearray(cbc_encrypt(NIST_KEY, NIST_IV, b"secret payload"))
        ciphertext[-1] ^= 0xFF
        try:
            result = cbc_decrypt(NIST_KEY, NIST_IV, bytes(ciphertext))
        except PaddingError:
            return
        assert result != b"secret payload"


@given(
    key=st.binary(min_size=32, max_size=32),
    iv=st.binary(min_size=16, max_size=16),
    plaintext=st.binary(min_size=0, max_size=200),
)
def test_cbc_roundtrip_property(key, iv, plaintext):
    assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, plaintext)) == plaintext


@given(
    key=st.binary(min_size=32, max_size=32),
    iv=st.binary(min_size=16, max_size=16),
    plaintext=st.binary(min_size=0, max_size=100),
)
def test_ciphertext_length_is_padded_length(key, iv, plaintext):
    ciphertext = cbc_encrypt(key, iv, plaintext)
    assert len(ciphertext) == (len(plaintext) // 16 + 1) * 16
