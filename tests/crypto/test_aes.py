"""AES block-cipher tests against the FIPS-197 vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import AES
from repro.crypto.aes import INV_SBOX, SBOX


class TestFips197Vectors:
    """Appendix C of FIPS-197: the canonical example vectors."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes128_appendix_b(self):
        """FIPS-197 Appendix B worked example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plaintext) == expected

    @pytest.mark.parametrize("keylen", [16, 24, 32])
    def test_decrypt_inverts_encrypt_on_vectors(self, keylen):
        key = bytes(range(keylen))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(self.PLAINTEXT)) == self.PLAINTEXT


class TestSbox:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox_is_inverse(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestKeyHandling:
    def test_invalid_key_length_rejected(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_invalid_block_length_rejected(self):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"not-16-bytes")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"xx")

    @pytest.mark.parametrize("keylen,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_counts(self, keylen, rounds):
        assert AES(bytes(keylen)).rounds == rounds


@given(
    key=st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_encryption_changes_data(key, block):
    """AES has no fixed points we should stumble on by chance."""
    encrypted = AES(key).encrypt_block(block)
    assert len(encrypted) == 16
    # Deterministic under the same key.
    assert AES(key).encrypt_block(block) == encrypted
