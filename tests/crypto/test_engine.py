"""Tests for the cipher engines and the crypto cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import CryptoCostModel, FastXorEngine, RealAesCbcEngine


class TestCryptoCostModel:
    def test_costs_scale_with_size(self):
        model = CryptoCostModel()
        assert model.encrypt_cycles(4096) > model.encrypt_cycles(64)

    def test_chunk_cost_comparable_to_transition(self):
        """A 4 kB CBC chunk costs the same order as an enclave transition,
        which is what makes the crypto pipeline ocall-bound."""
        model = CryptoCostModel()
        assert 5_000 < model.encrypt_cycles(4096) < 40_000

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CryptoCostModel().encrypt_cycles(-1)


class TestRealEngine:
    def test_roundtrip(self):
        engine = RealAesCbcEngine(bytes(32), bytes(16))
        data = b"some confidential file contents"
        assert engine.decrypt(engine.encrypt(data)) == data

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            RealAesCbcEngine(bytes(16), bytes(16))


class TestFastEngine:
    def test_roundtrip(self):
        engine = FastXorEngine(b"key-material", bytes(16))
        data = b"x" * 1000
        assert engine.decrypt(engine.encrypt(data)) == data

    def test_ciphertext_length_matches_real_engine(self):
        real = RealAesCbcEngine(bytes(32), bytes(16))
        fast = FastXorEngine(bytes(32), bytes(16))
        for n in (0, 1, 15, 16, 17, 4096):
            data = bytes(n)
            assert len(fast.encrypt(data)) == len(real.encrypt(data))

    def test_different_keys_produce_different_ciphertext(self):
        a = FastXorEngine(b"key-a", bytes(16))
        b = FastXorEngine(b"key-b", bytes(16))
        assert a.encrypt(b"payload") != b.encrypt(b"payload")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            FastXorEngine(b"", bytes(16))


@given(data=st.binary(min_size=0, max_size=10_000))
def test_fast_engine_roundtrip_property(data):
    engine = FastXorEngine(b"prop-key", bytes(16))
    assert engine.decrypt(engine.encrypt(data)) == data
