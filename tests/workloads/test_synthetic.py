"""Tests for the §III synthetic f/g workload."""

import pytest

from repro.workloads.synthetic import (
    SYNTHETIC_CONFIGS,
    SyntheticSpec,
    _call_plan,
    run_synthetic,
)


class TestCallPlan:
    def test_fraction_is_three_to_one(self):
        spec = SyntheticSpec(total_calls=8000, n_threads=8)
        plan = _call_plan(spec, 0)
        f_calls = sum(1 for name in plan if name.startswith("f"))
        g_calls = sum(1 for name in plan if name.startswith("g"))
        assert f_calls == 750
        assert g_calls == 250

    def test_aliases_split_evenly(self):
        spec = SyntheticSpec(total_calls=8000, n_threads=8)
        plan = _call_plan(spec, 0)
        assert plan.count("f") == plan.count("f2")
        assert abs(plan.count("g") - plan.count("g2")) <= 1

    def test_total_calls_across_threads(self):
        spec = SyntheticSpec(total_calls=1003, n_threads=8)
        total = sum(len(_call_plan(spec, i)) for i in range(8))
        assert total == 1003

    def test_all_f_when_fraction_one(self):
        spec = SyntheticSpec(total_calls=100, f_fraction=1.0, n_threads=1)
        plan = _call_plan(spec, 0)
        assert all(name.startswith("f") for name in plan)


class TestConfigs:
    def test_config_semantics(self):
        assert SYNTHETIC_CONFIGS["C1"] == {"f", "f2"}
        assert SYNTHETIC_CONFIGS["C2"] == {"g", "g2"}
        assert SYNTHETIC_CONFIGS["C5"] == frozenset()

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            run_synthetic("C9", workers=2)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(total_calls=0)
        with pytest.raises(ValueError):
            SyntheticSpec(f_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticSpec(g_pauses=-1)


class TestRun:
    # 1600 calls over 8 threads: each thread's plan is exactly 150 f + 50 g.
    SPEC = SyntheticSpec(total_calls=1600, g_pauses=200)

    def test_c1_runs_all_f_switchless(self):
        result = run_synthetic("C1", 2, self.SPEC)
        # All f calls are switchless-eligible; g all regular.
        assert result.regular_calls == 400  # the g calls
        assert result.switchless_calls + result.fallback_calls == 1200

    def test_c5_runs_everything_regular(self):
        result = run_synthetic("C5", 2, self.SPEC)
        assert result.regular_calls == 1600
        assert result.switchless_calls == 0

    def test_c1_beats_c2(self):
        c1 = run_synthetic("C1", 2, self.SPEC)
        c2 = run_synthetic("C2", 2, self.SPEC)
        assert c1.elapsed_seconds < c2.elapsed_seconds

    def test_deterministic(self):
        a = run_synthetic("C3", 3, self.SPEC)
        b = run_synthetic("C3", 3, self.SPEC)
        assert a == b

    def test_cpu_usage_is_percentage(self):
        result = run_synthetic("C4", 2, self.SPEC)
        assert 0 < result.cpu_usage_pct <= 100
