"""Tests for the key-distribution generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.keydist import SequentialKeys, UniformKeys, ZipfKeys


class TestSequentialKeys:
    def test_counts_up(self):
        gen = SequentialKeys()
        assert [gen.next_key() for _ in range(3)] == [
            (0).to_bytes(8, "big"),
            (1).to_bytes(8, "big"),
            (2).to_bytes(8, "big"),
        ]

    def test_key_width(self):
        gen = SequentialKeys(key_size=4)
        assert len(gen.next_key()) == 4


class TestUniformKeys:
    def test_seed_determinism(self):
        a = UniformKeys(1000, seed=7)
        b = UniformKeys(1000, seed=7)
        assert [a.next_key() for _ in range(50)] == [b.next_key() for _ in range(50)]

    def test_keys_within_keyspace(self):
        gen = UniformKeys(16, seed=1)
        for _ in range(200):
            assert int.from_bytes(gen.next_key(), "big") < 16

    def test_roughly_uniform(self):
        gen = UniformKeys(4, seed=3)
        counts = [0] * 4
        for _ in range(4000):
            counts[int.from_bytes(gen.next_key(), "big")] += 1
        assert min(counts) > 800  # each bucket near 1000


class TestZipfKeys:
    def test_hottest_key_dominates(self):
        gen = ZipfKeys(1000, s=0.99, seed=5)
        counts = {}
        for _ in range(5000):
            rank = gen.next_rank()
            counts[rank] = counts.get(rank, 0) + 1
        # Rank 0 must be the most frequent by a wide margin.
        assert counts.get(0, 0) == max(counts.values())
        assert counts.get(0, 0) > 5000 / 1000 * 20

    def test_hot_fraction_analytics(self):
        gen = ZipfKeys(100, s=1.0)
        assert gen.hot_fraction(100) == pytest.approx(1.0)
        assert 0.15 < gen.hot_fraction(1) < 0.25  # 1/H_100 ~ 0.19
        with pytest.raises(ValueError):
            gen.hot_fraction(0)

    def test_s_zero_is_uniform(self):
        gen = ZipfKeys(10, s=0.0, seed=2)
        counts = [0] * 10
        for _ in range(5000):
            counts[gen.next_rank()] += 1
        assert min(counts) > 5000 / 10 * 0.7

    def test_seed_determinism(self):
        a = ZipfKeys(50, seed=9)
        b = ZipfKeys(50, seed=9)
        assert [a.next_rank() for _ in range(100)] == [
            b.next_rank() for _ in range(100)
        ]

    @settings(max_examples=20, deadline=None)
    @given(
        keyspace=st.integers(min_value=1, max_value=200),
        s=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_ranks_always_in_range(self, keyspace, s):
        gen = ZipfKeys(keyspace, s=s, seed=0)
        for _ in range(50):
            assert 0 <= gen.next_rank() < keyspace

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfKeys(0)
        with pytest.raises(ValueError):
            ZipfKeys(10, s=-1)
        with pytest.raises(ValueError):
            UniformKeys(0)
