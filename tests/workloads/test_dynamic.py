"""Tests for the 3-phase dynamic workload driver."""

import pytest

from repro.sim import Compute, Kernel, MachineSpec
from repro.workloads.dynamic import DynamicSpec, build_schedule, paced_thread


class TestSchedule:
    def test_three_phases(self):
        spec = DynamicSpec(tau_seconds=0.5, periods_per_phase=4, base_ops=10, peak_ops=80)
        schedule = build_schedule(spec)
        assert len(schedule) == 12
        assert schedule[:4] == [10, 20, 40, 80]  # doubling
        assert schedule[4:8] == [80] * 4  # constant at peak
        assert schedule[8:] == [80, 40, 20, 10]  # halving

    def test_peak_cap(self):
        spec = DynamicSpec(periods_per_phase=10, base_ops=64, peak_ops=256)
        schedule = build_schedule(spec)
        assert max(schedule) == 256
        assert schedule[3] == 256  # saturates and stays

    def test_decreasing_floor(self):
        spec = DynamicSpec(periods_per_phase=10, base_ops=64, peak_ops=256)
        schedule = build_schedule(spec)
        assert schedule[-1] == 64

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DynamicSpec(tau_seconds=0)
        with pytest.raises(ValueError):
            DynamicSpec(base_ops=0)
        with pytest.raises(ValueError):
            DynamicSpec(base_ops=100, peak_ops=50)


class TestPacedThread:
    def test_unsaturated_thread_completes_targets_and_sleeps(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        results = []

        def op():
            yield Compute(100)

        schedule = [5, 10]
        tau = 10_000.0
        t = kernel.spawn(paced_thread(kernel, op, schedule, tau, results))
        kernel.join(t)
        assert [r.completed_ops for r in results] == [5, 10]
        assert [r.target_ops for r in results] == [5, 10]
        # Two full periods elapsed (thread slept out the slack).
        assert kernel.now == pytest.approx(2 * tau)

    def test_saturated_thread_truncates_at_period_boundary(self):
        kernel = Kernel(MachineSpec(n_cores=2, smt=1))
        results = []

        def op():
            yield Compute(5_000)

        schedule = [10]  # 50k cycles of offered work in a 10k-cycle period
        t = kernel.spawn(paced_thread(kernel, op, schedule, 10_000.0, results))
        kernel.join(t)
        # Only 2 of the 10 offered ops fit: achieved < offered.
        assert results[0].completed_ops == 2
        assert results[0].target_ops == 10
        assert results[0].duration_cycles == pytest.approx(10_000)

    def test_throughput_metrics(self):
        kernel = Kernel(MachineSpec(n_cores=1, smt=1, freq_hz=1e9))
        results = []

        def op():
            yield Compute(1_000)

        t = kernel.spawn(paced_thread(kernel, op, [100], 1e6, results))
        kernel.join(t)
        period = results[0]
        # 100 ops in 100k cycles of work: burst rate 1M ops/s at 1 GHz.
        assert period.throughput_ops_per_s(1e9) == pytest.approx(1e6)
        # Sustained over the full 1 ms period: 100 ops / 1 ms = 100k/s.
        assert period.sustained_ops_per_s(1e9, 1e6) == pytest.approx(1e5)
